"""Read views over the catalog: the shared read API and COW snapshots.

:class:`ReadView` is the query-facing surface of a database — catalog
lookups, document enumeration, ``db2-fn:xmlcolumn``, path-summary
cardinalities.  :class:`repro.storage.catalog.Database` mixes it in and
wraps the query entry points in its reader-writer lock;
:class:`Snapshot` reuses the same methods over *pinned* state.

Snapshot semantics
------------------

Writers copy-on-write every container they change: the ``Database``
catalog dicts are replaced (never mutated) by DDL, and each
``Table.rows`` list is replaced by ingest/delete.  A ``Snapshot``
therefore pins a consistent catalog + row-set view by simply capturing
those references under a read acquisition — O(catalog size), no data
copying — and stays valid indefinitely: later writers swap in new
containers and never touch the captured ones.

What a snapshot does *not* pin is the interior of shared index
structures (B+Trees are mutated in place by writers).  Queries issued
through ``Database.xquery`` / ``Database.sql`` hold the read lock for
their whole execution, so they never observe a half-updated index;
queries issued through ``Snapshot.xquery`` / ``Snapshot.sql`` are
lock-free and intended for use while the caller (for example the
partition-parallel executor) holds the read side itself.
"""

from __future__ import annotations

from ..analysis import sanitizer as _sanitizer
from ..errors import CatalogError, SQLError
from ..obs.metrics import METRICS
from ..xdm.sequence import Item
from .pathsummary import PatternMatcher, get_summary
from .table import StoredDocument

__all__ = ["ReadView", "Snapshot"]


class ReadView:
    """The read-only query API shared by Database and Snapshot.

    Implementors provide ``tables``, ``xml_indexes``, ``rel_indexes``
    and ``schemas`` mappings; everything here derives from those.
    """

    def table(self, name: str):
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------

    def documents(self, table: str, column: str) -> list[StoredDocument]:
        table_obj = self.table(table)
        key = column.lower()
        if not table_obj.column_type(key).is_xml:
            raise CatalogError(f"{table}.{column} is not an XML column")
        return [row.values[key] for row in table_obj.rows
                if isinstance(row.values.get(key), StoredDocument)]

    def xmlcolumn(self, reference: str, stats=None) -> list[Item]:
        """db2-fn:xmlcolumn: the column's documents as a sequence."""
        table, column = self._split_reference(reference)
        stored_docs = self.documents(table, column)
        if stats is not None:
            stats.docs_scanned += len(stored_docs)
        if METRICS.enabled:
            METRICS.inc("docs.scanned", len(stored_docs))
        return [stored.document for stored in stored_docs]

    def _split_reference(self, reference: str) -> tuple[str, str]:
        parts = reference.split(".")
        if len(parts) != 2:
            raise CatalogError(
                f"xmlcolumn reference must be 'TABLE.COLUMN', got "
                f"{reference!r}")
        return parts[0], parts[1]

    def docs_with_path(self, table: str, column: str, pattern) -> int:
        """How many of the column's documents contain ≥1 node matching
        ``pattern`` (an XMLPATTERN string or parsed PathPattern) — the
        structural fraction the cost model folds into probe estimates."""
        matcher = PatternMatcher(self._as_pattern(pattern))
        count = 0
        for stored in self.documents(table, column):
            summary = get_summary(stored.document, build=True)
            if summary is not None and summary.has_matching(matcher):
                count += 1
        return count

    def path_cardinality(self, table: str, column: str, pattern) -> int:
        """Total node count matching ``pattern`` across the column's
        documents, answered from per-document path summaries."""
        matcher = PatternMatcher(self._as_pattern(pattern))
        total = 0
        for stored in self.documents(table, column):
            summary = get_summary(stored.document, build=True)
            if summary is not None:
                total += summary.count_matching(matcher)
        return total

    @staticmethod
    def _as_pattern(pattern):
        if isinstance(pattern, str):
            from ..core.patterns import parse_xmlpattern
            return parse_xmlpattern(pattern)
        return pattern

    def xml_indexes_on(self, table: str, column: str) -> list:
        return [index for index in self.xml_indexes.values()
                if index.table == table.lower()
                and index.column == column.lower()]

    def rel_indexes_on(self, table: str, column: str) -> list:
        return [index for index in self.rel_indexes.values()
                if index.table == table.lower()
                and index.column == column.lower()]

    # ------------------------------------------------------------------
    # Query entry points (lock-free; Database overrides with locking)
    # ------------------------------------------------------------------

    def xquery(self, query: str, use_indexes: bool = True,
               cost_based: bool = False,
               prefilter_threshold: float = 0.9,
               rewrite_views: bool = False,
               tracer=None, variables: dict | None = None):
        from ..planner.plan import execute_xquery
        return execute_xquery(self, query, use_indexes=use_indexes,
                              cost_based=cost_based,
                              prefilter_threshold=prefilter_threshold,
                              rewrite_views=rewrite_views,
                              tracer=tracer, variables=variables)

    def sql(self, statement: str, use_indexes: bool = True, tracer=None):
        from ..sql.executor import execute_sql
        return execute_sql(self, statement, use_indexes=use_indexes,
                           tracer=tracer)

    def sqlquery_items(self, statement: str) -> list[Item]:
        """db2-fn:sqlquery: run SQL, concatenate its XML column values."""
        result = self.sql(statement)
        from ..sql.values import XMLValue
        items: list[Item] = []
        for row in result.rows:
            for value in row:
                if isinstance(value, XMLValue):
                    items.extend(value.items)
        return items

    def describe(self) -> str:
        """A human-readable catalog summary: tables, columns, indexes."""
        lines = ["catalog:"]
        for table in self.tables.values():
            columns = ", ".join(f"{name} {sql_type}"
                                for name, sql_type in
                                table.columns.items())
            lines.append(f"  table {table.name} ({columns}) "
                         f"[{len(table.rows)} rows]")
            for index in self.xml_indexes.values():
                if index.table == table.name:
                    lines.append(
                        f"    xml index {index.name} ON "
                        f"{index.column} USING XMLPATTERN "
                        f"'{index.pattern}' AS {index.index_type} "
                        f"[{len(index)} entries, "
                        f"{index.skipped_nodes} skipped]")
            for index in self.rel_indexes.values():
                if index.table == table.name:
                    lines.append(f"    rel index {index.name} ON "
                                 f"{index.column} [{len(index)} entries]")
        for schema in self.schemas.values():
            lines.append(f"  schema {schema.name} "
                         f"[{len(schema.declarations)} declarations]")
        return "\n".join(lines)


class _TableSnapshot:
    """A Table view with the row list pinned at snapshot time.

    ``Table.rows`` is copy-on-write (writers replace the list), so
    holding the reference is enough to freeze the row set; column
    metadata is delegated to the live table (DDL cannot alter columns
    of an existing table, so that surface is immutable).
    """

    __slots__ = ("_table", "rows")

    def __init__(self, table):
        self._table = table
        self.rows = table.rows

    def __getattr__(self, name):
        return getattr(self._table, name)

    def __len__(self) -> int:
        return len(self.rows)


_READ_ONLY_HEADS = ("SELECT", "VALUES")


class Snapshot(ReadView):
    """A consistent, immutable view of a Database at one version.

    Obtained from :meth:`repro.storage.catalog.Database.snapshot`.
    Supports the whole read API — ``xquery``, ``sql`` (SELECT/VALUES
    only), ``describe``, document enumeration — without taking the
    database lock.
    """

    def __init__(self, database):
        self.version = database.version
        self.index_order = database.index_order
        self.tables = {name: _TableSnapshot(table)
                       for name, table in database.tables.items()}
        self.xml_indexes = dict(database.xml_indexes)
        self.rel_indexes = dict(database.rel_indexes)
        self.schemas = dict(database.schemas)
        # Shared observation channel, not versioned state: queries run
        # against a pinned snapshot (e.g. server sessions) must still
        # feed the live database's workload profiler or the autopilot
        # would be blind to exactly the workload it should serve.
        self.workload_profiler = database.workload_profiler
        if _sanitizer.ACTIVE is not None:
            # Record (id, len) of every pinned row list: an in-place
            # mutation — same list object, different length — is the
            # COW violation snapshots exist to rule out.
            _sanitizer.ACTIVE.fingerprint_snapshot(self)

    def xquery(self, query: str, use_indexes: bool = True,
               cost_based: bool = False,
               prefilter_threshold: float = 0.9,
               rewrite_views: bool = False,
               tracer=None, variables: dict | None = None):
        if _sanitizer.ACTIVE is not None:
            _sanitizer.ACTIVE.verify_snapshot(self)
        return super().xquery(
            query, use_indexes=use_indexes, cost_based=cost_based,
            prefilter_threshold=prefilter_threshold,
            rewrite_views=rewrite_views, tracer=tracer,
            variables=variables)

    def sql(self, statement: str, use_indexes: bool = True, tracer=None):
        head = statement.lstrip().upper()
        if not head.startswith(_READ_ONLY_HEADS):
            raise SQLError(
                "snapshots are read-only: only SELECT/VALUES may run "
                "against a Snapshot", "25006")
        if _sanitizer.ACTIVE is not None:
            _sanitizer.ACTIVE.verify_snapshot(self)
        return super().sql(statement, use_indexes=use_indexes,
                           tracer=tracer)

    def __repr__(self) -> str:
        return (f"<Snapshot version={self.version} "
                f"tables={len(self.tables)}>")
