"""Storage: B+Trees, tables, XML value indexes, relational indexes."""

from .btree import BPlusTree
from .catalog import Database
from .relindex import RelationalIndex
from .table import Row, StoredDocument, Table
from .xmlindex import IndexEntry, XmlIndex

__all__ = ["BPlusTree", "Database", "IndexEntry", "RelationalIndex",
           "Row", "StoredDocument", "Table", "XmlIndex"]
