"""Storage: B+Trees, tables, columnar node stores, the buffer pool,
path summaries, XML and relational indexes."""

from .btree import BPlusTree
from .bufferpool import BufferPool
from .catalog import Database
from .columnar import ColumnStore, get_store, ingest_document
from .pathsummary import PathSummary, build_summary, get_summary
from .relindex import RelationalIndex
from .table import Row, StoredDocument, Table
from .xmlindex import IndexEntry, XmlIndex

__all__ = ["BPlusTree", "BufferPool", "ColumnStore", "Database",
           "IndexEntry", "PathSummary", "RelationalIndex", "Row",
           "StoredDocument", "Table", "XmlIndex", "build_summary",
           "get_store", "get_summary", "ingest_document"]
