"""Storage: B+Trees, tables, path summaries, XML and relational indexes."""

from .btree import BPlusTree
from .catalog import Database
from .pathsummary import PathSummary, build_summary, get_summary
from .relindex import RelationalIndex
from .table import Row, StoredDocument, Table
from .xmlindex import IndexEntry, XmlIndex

__all__ = ["BPlusTree", "Database", "IndexEntry", "PathSummary",
           "RelationalIndex", "Row", "StoredDocument", "Table",
           "XmlIndex", "build_summary", "get_summary"]
