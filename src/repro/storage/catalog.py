"""The Database facade: catalog, DML, and query entry points.

This is the component a user of the library touches: create tables
with XML columns, insert documents (optionally validated against a
per-document schema), create XML value indexes with the paper's
``CREATE INDEX … USING XMLPATTERN`` DDL, and run XQuery or SQL/XML.
"""

from __future__ import annotations

import re

from ..errors import CatalogError, SQLError
from ..obs.metrics import METRICS
from ..schema.schema import Schema
from ..schema.validator import validate
from ..xdm.nodes import DocumentNode
from ..xdm.sequence import Item
from ..xmlio.parser import parse_document
from .pathsummary import PatternMatcher, build_summary, get_summary
from .relindex import RelationalIndex
from .table import Row, StoredDocument, Table, next_doc_id
from .xmlindex import XmlIndex

_CREATE_XML_INDEX_RE = re.compile(
    r"^\s*CREATE\s+INDEX\s+(?P<name>\w+)\s+ON\s+(?P<table>\w+)\s*"
    r"\(\s*(?P<column>\w+)\s*\)\s*USING\s+XMLPATTERN\s+"
    r"'(?P<pattern>(?:[^']|'')*)'\s+AS\s+"
    r"(?:SQL\s+)?(?P<type>VARCHAR(?:\s*\(\s*\d+\s*\))?|DOUBLE|DATE"
    r"|TIMESTAMP)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL)

_CREATE_REL_INDEX_RE = re.compile(
    r"^\s*CREATE\s+INDEX\s+(?P<name>\w+)\s+ON\s+(?P<table>\w+)\s*"
    r"\(\s*(?P<column>\w+)\s*\)\s*;?\s*$",
    re.IGNORECASE)

_CREATE_TABLE_RE = re.compile(
    r"^\s*CREATE\s+TABLE\s+(?P<name>\w+)\s*\((?P<columns>.*)\)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL)


class Database:
    """An in-memory XML database in the mould of DB2 Viper."""

    def __init__(self, index_order: int = 64):
        self.index_order = index_order
        self.tables: dict[str, Table] = {}
        self.xml_indexes: dict[str, XmlIndex] = {}
        self.rel_indexes: dict[str, RelationalIndex] = {}
        self.schemas: dict[str, Schema] = {}

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(self, name: str,
                     columns: list[tuple[str, str]]) -> Table:
        key = name.lower()
        if key in self.tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, columns)
        self.tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        table = self.table(name)
        for index in list(self.xml_indexes.values()):
            if index.table == table.name:
                del self.xml_indexes[index.name]
        for index in list(self.rel_indexes.values()):
            if index.table == table.name:
                del self.rel_indexes[index.name]
        del self.tables[table.name]

    def table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def register_schema(self, schema: Schema) -> None:
        self.schemas[schema.name] = schema

    def create_xml_index(self, name: str, table: str, column: str,
                         pattern: str, index_type: str) -> XmlIndex:
        key = name.lower()
        if key in self.xml_indexes or key in self.rel_indexes:
            raise CatalogError(f"index {name!r} already exists")
        table_obj = self.table(table)
        if not table_obj.column_type(column).is_xml:
            raise CatalogError(
                f"{table}.{column} is not an XML column")
        index = XmlIndex(key, table_obj.name, column.lower(), pattern,
                         index_type, order=self.index_order)
        # Build: index existing documents.
        for stored in self.documents(table, column):
            index.index_document(stored.doc_id, stored.document)
        self.xml_indexes[key] = index
        return index

    def create_relational_index(self, name: str, table: str,
                                column: str) -> RelationalIndex:
        key = name.lower()
        if key in self.xml_indexes or key in self.rel_indexes:
            raise CatalogError(f"index {name!r} already exists")
        table_obj = self.table(table)
        if table_obj.column_type(column).is_xml:
            raise CatalogError(
                f"{table}.{column} is an XML column; use XMLPATTERN DDL")
        index = RelationalIndex(key, table_obj.name, column.lower(),
                                order=self.index_order)
        for row in table_obj.rows:
            index.insert_row(row.row_id, row.values[column.lower()])
        self.rel_indexes[key] = index
        return index

    def drop_index(self, name: str) -> None:
        key = name.lower()
        if key in self.xml_indexes:
            del self.xml_indexes[key]
        elif key in self.rel_indexes:
            del self.rel_indexes[key]
        else:
            raise CatalogError(f"unknown index {name!r}")

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def insert(self, table: str, values: dict[str, object],
               schema: str | Schema | dict[str, str | Schema] | None = None
               ) -> Row:
        """Insert a row.  XML column values may be XML text or a
        DocumentNode; ``schema`` optionally names a registered schema
        (or maps column name -> schema) for per-document validation."""
        table_obj = self.table(table)
        prepared: dict[str, object] = {}
        stored_docs: list[StoredDocument] = []
        for column_name, value in values.items():
            key = column_name.lower()
            sql_type = table_obj.column_type(key)
            if sql_type.is_xml and value is not None:
                document = (value if isinstance(value, DocumentNode)
                            else parse_document(str(value)))
                doc_schema = self._schema_for(schema, key)
                if doc_schema is not None:
                    validate(document, doc_schema)
                stored = StoredDocument(
                    next_doc_id(), document,
                    doc_schema.name if doc_schema else None)
                # Build the structural path summary at ingest: it backs
                # the evaluator's `//tag` fast path, index builds, and
                # the planner's cardinality estimates.
                build_summary(document)
                stored_docs.append(stored)
                prepared[key] = stored
            else:
                prepared[key] = value
        row = table_obj.new_row(prepared)
        try:
            self._index_row(table_obj, row)
        except Exception:
            table_obj.remove_row(row)
            raise
        return row

    def _schema_for(self, schema, column: str) -> Schema | None:
        if schema is None:
            return None
        if isinstance(schema, dict):
            schema = schema.get(column)
            if schema is None:
                return None
        if isinstance(schema, Schema):
            return schema
        try:
            return self.schemas[schema]
        except KeyError:
            raise CatalogError(f"unknown schema {schema!r}") from None

    def _index_row(self, table: Table, row: Row) -> None:
        indexed: list[tuple[XmlIndex, StoredDocument]] = []
        try:
            for index in self.xml_indexes.values():
                if index.table != table.name:
                    continue
                stored = row.values.get(index.column)
                if isinstance(stored, StoredDocument):
                    index.index_document(stored.doc_id, stored.document)
                    indexed.append((index, stored))
        except Exception:
            for index, stored in indexed:
                index.remove_document(stored.doc_id, stored.document)
            raise
        for index in self.rel_indexes.values():
            if index.table == table.name:
                index.insert_row(row.row_id, row.values[index.column])

    def delete_rows(self, table: str, predicate=None) -> int:
        """Delete rows matching ``predicate(row_values_dict)`` (all rows
        if None); maintains every index.  Returns the count removed."""
        table_obj = self.table(table)
        victims = [row for row in table_obj.rows
                   if predicate is None or predicate(row.values)]
        for row in victims:
            for index in self.xml_indexes.values():
                if index.table != table_obj.name:
                    continue
                stored = row.values.get(index.column)
                if isinstance(stored, StoredDocument):
                    index.remove_document(stored.doc_id, stored.document)
            for index in self.rel_indexes.values():
                if index.table == table_obj.name:
                    index.remove_row(row.row_id,
                                     row.values[index.column])
            table_obj.remove_row(row)
        return len(victims)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------

    def documents(self, table: str, column: str) -> list[StoredDocument]:
        table_obj = self.table(table)
        key = column.lower()
        if not table_obj.column_type(key).is_xml:
            raise CatalogError(f"{table}.{column} is not an XML column")
        return [row.values[key] for row in table_obj.rows
                if isinstance(row.values.get(key), StoredDocument)]

    def xmlcolumn(self, reference: str, stats=None) -> list[Item]:
        """db2-fn:xmlcolumn: the column's documents as a sequence."""
        table, column = self._split_reference(reference)
        stored_docs = self.documents(table, column)
        if stats is not None:
            stats.docs_scanned += len(stored_docs)
        if METRICS.enabled:
            METRICS.inc("docs.scanned", len(stored_docs))
        return [stored.document for stored in stored_docs]

    def _split_reference(self, reference: str) -> tuple[str, str]:
        parts = reference.split(".")
        if len(parts) != 2:
            raise CatalogError(
                f"xmlcolumn reference must be 'TABLE.COLUMN', got "
                f"{reference!r}")
        return parts[0], parts[1]

    def docs_with_path(self, table: str, column: str, pattern) -> int:
        """How many of the column's documents contain ≥1 node matching
        ``pattern`` (an XMLPATTERN string or parsed PathPattern) — the
        structural fraction the cost model folds into probe estimates."""
        matcher = PatternMatcher(self._as_pattern(pattern))
        count = 0
        for stored in self.documents(table, column):
            summary = get_summary(stored.document, build=True)
            if summary is not None and summary.has_matching(matcher):
                count += 1
        return count

    def path_cardinality(self, table: str, column: str, pattern) -> int:
        """Total node count matching ``pattern`` across the column's
        documents, answered from per-document path summaries."""
        matcher = PatternMatcher(self._as_pattern(pattern))
        total = 0
        for stored in self.documents(table, column):
            summary = get_summary(stored.document, build=True)
            if summary is not None:
                total += summary.count_matching(matcher)
        return total

    @staticmethod
    def _as_pattern(pattern):
        if isinstance(pattern, str):
            from ..core.patterns import parse_xmlpattern
            return parse_xmlpattern(pattern)
        return pattern

    def xml_indexes_on(self, table: str, column: str) -> list[XmlIndex]:
        return [index for index in self.xml_indexes.values()
                if index.table == table.lower()
                and index.column == column.lower()]

    def rel_indexes_on(self, table: str, column: str
                       ) -> list[RelationalIndex]:
        return [index for index in self.rel_indexes.values()
                if index.table == table.lower()
                and index.column == column.lower()]

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------

    def xquery(self, query: str, use_indexes: bool = True,
               cost_based: bool = False,
               prefilter_threshold: float = 0.9,
               rewrite_views: bool = False,
               tracer=None):
        """Run a standalone XQuery; returns a planner QueryResult.

        ``cost_based=True`` turns on selectivity-based probe pruning
        (DB2-style cost-based optimization); the default rule-based
        mode uses every eligible index.  ``rewrite_views=True`` enables
        the §3.6 view-flattening rewrite.  ``tracer`` (a
        :class:`repro.obs.trace.Tracer`) records per-stage spans.
        """
        from ..planner.plan import execute_xquery
        return execute_xquery(self, query, use_indexes=use_indexes,
                              cost_based=cost_based,
                              prefilter_threshold=prefilter_threshold,
                              rewrite_views=rewrite_views,
                              tracer=tracer)

    def sql(self, statement: str, use_indexes: bool = True, tracer=None):
        """Run an SQL/XML SELECT or VALUES statement."""
        from ..sql.executor import execute_sql
        return execute_sql(self, statement, use_indexes=use_indexes,
                           tracer=tracer)

    def explain_analyze(self, statement: str, use_indexes: bool = True):
        """Execute ``statement`` with full instrumentation and return an
        :class:`repro.obs.explain.AnalyzedStatement` — the operator tree
        with actual cardinalities, timings and estimation error."""
        from ..obs.explain import explain_analyze
        return explain_analyze(self, statement, use_indexes=use_indexes)

    def describe(self) -> str:
        """A human-readable catalog summary: tables, columns, indexes."""
        lines = ["catalog:"]
        for table in self.tables.values():
            columns = ", ".join(f"{name} {sql_type}"
                                for name, sql_type in
                                table.columns.items())
            lines.append(f"  table {table.name} ({columns}) "
                         f"[{len(table.rows)} rows]")
            for index in self.xml_indexes.values():
                if index.table == table.name:
                    lines.append(
                        f"    xml index {index.name} ON "
                        f"{index.column} USING XMLPATTERN "
                        f"'{index.pattern}' AS {index.index_type} "
                        f"[{len(index)} entries, "
                        f"{index.skipped_nodes} skipped]")
            for index in self.rel_indexes.values():
                if index.table == table.name:
                    lines.append(f"    rel index {index.name} ON "
                                 f"{index.column} [{len(index)} entries]")
        for schema in self.schemas.values():
            lines.append(f"  schema {schema.name} "
                         f"[{len(schema.declarations)} declarations]")
        return "\n".join(lines)

    def explain(self, query: str) -> str:
        """Eligibility report + access plan for an SQL or XQuery text."""
        head = query.lstrip().upper()
        if head.startswith(("SELECT", "VALUES")):
            from ..sql.executor import explain_sql
            return explain_sql(self, query)
        from ..planner.plan import explain_xquery
        return explain_xquery(self, query)

    def sqlquery_items(self, statement: str) -> list[Item]:
        """db2-fn:sqlquery: run SQL, concatenate its XML column values."""
        result = self.sql(statement)
        from ..sql.values import XMLValue
        items: list[Item] = []
        for row in result.rows:
            for value in row:
                if isinstance(value, XMLValue):
                    items.extend(value.items)
        return items

    def execute(self, statement: str):
        """Dispatch a DDL or query statement given as text."""
        match = _CREATE_XML_INDEX_RE.match(statement)
        if match:
            return self.create_xml_index(
                match.group("name"), match.group("table"),
                match.group("column"),
                match.group("pattern").replace("''", "'"),
                re.sub(r"\s*\(.*\)", "", match.group("type")).upper())
        match = _CREATE_REL_INDEX_RE.match(statement)
        if match:
            return self.create_relational_index(
                match.group("name"), match.group("table"),
                match.group("column"))
        match = _CREATE_TABLE_RE.match(statement)
        if match:
            columns = _parse_column_list(match.group("columns"))
            return self.create_table(match.group("name"), columns)
        stripped = statement.lstrip().upper()
        if stripped.startswith(("SELECT", "VALUES", "INSERT", "DELETE")):
            return self.sql(statement)
        raise SQLError(f"cannot execute statement: {statement[:60]!r}",
                       "42601")


def _parse_column_list(text: str) -> list[tuple[str, str]]:
    columns: list[tuple[str, str]] = []
    depth = 0
    current: list[str] = []
    pieces: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        pieces.append("".join(current))
    for piece in pieces:
        piece = piece.strip()
        if not piece:
            continue
        name, _sep, type_text = piece.partition(" ")
        if not type_text:
            raise SQLError(f"malformed column definition {piece!r}",
                           "42601")
        columns.append((name, type_text.strip()))
    return columns
