"""The Database facade: catalog, DML, and query entry points.

This is the component a user of the library touches: create tables
with XML columns, insert documents (optionally validated against a
per-document schema), create XML value indexes with the paper's
``CREATE INDEX … USING XMLPATTERN`` DDL, and run XQuery or SQL/XML.

Concurrency model (see README "Concurrency model"): every public
entry point classifies itself as a *reader* (queries, snapshots,
explains) or a *writer* (DDL, ingest, delete) and takes the matching
side of one :class:`repro.core.rwlock.RWLock`.  Readers share; writers
exclude everything and bump :attr:`Database.version`.  Writers apply
copy-on-write to each container they change — catalog dicts here,
per-table row lists in :mod:`repro.storage.table` — so a
:class:`~repro.storage.snapshot.Snapshot` captured by a reader stays
internally consistent forever.
"""

from __future__ import annotations

import os
import re

from ..core.rwlock import RWLock
from ..errors import CatalogError, SQLError
from ..schema.schema import Schema
from ..schema.validator import validate
from ..xdm.nodes import DocumentNode
from ..xmlio.parser import parse_document
from .bufferpool import BufferPool
from .columnar import ingest_document
from .relindex import RelationalIndex
from .snapshot import ReadView, Snapshot
from .table import Row, StoredDocument, Table, next_doc_id
from .xmlindex import XmlIndex

_CREATE_XML_INDEX_RE = re.compile(
    r"^\s*CREATE\s+INDEX\s+(?P<name>\w+)\s+ON\s+(?P<table>\w+)\s*"
    r"\(\s*(?P<column>\w+)\s*\)\s*USING\s+XMLPATTERN\s+"
    r"'(?P<pattern>(?:[^']|'')*)'\s+AS\s+"
    r"(?:SQL\s+)?(?P<type>VARCHAR(?:\s*\(\s*\d+\s*\))?|DOUBLE|DATE"
    r"|TIMESTAMP)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL)

_CREATE_REL_INDEX_RE = re.compile(
    r"^\s*CREATE\s+INDEX\s+(?P<name>\w+)\s+ON\s+(?P<table>\w+)\s*"
    r"\(\s*(?P<column>\w+)\s*\)\s*;?\s*$",
    re.IGNORECASE)

_CREATE_TABLE_RE = re.compile(
    r"^\s*CREATE\s+TABLE\s+(?P<name>\w+)\s*\((?P<columns>.*)\)\s*;?\s*$",
    re.IGNORECASE | re.DOTALL)

#: Statement heads the text dispatchers treat as writes (exclusive lock).
_WRITE_HEADS = ("INSERT", "DELETE", "CREATE")


class Database(ReadView):
    """An in-memory XML database in the mould of DB2 Viper."""

    def __init__(self, index_order: int = 64,
                 buffer_pool_bytes: int | None = None,
                 buffer_pool_spill_dir=None):
        self.index_order = index_order
        self.tables: dict[str, Table] = {}
        self.xml_indexes: dict[str, XmlIndex] = {}
        self.rel_indexes: dict[str, RelationalIndex] = {}
        self.schemas: dict[str, Schema] = {}
        #: Monotone write counter: every committed DDL/DML bumps it.
        self.version = 0
        self._rwlock = RWLock()
        if buffer_pool_bytes is None:
            env_budget = os.environ.get("REPRO_BUFFER_POOL_BYTES")
            if env_budget:
                buffer_pool_bytes = int(env_budget)
        #: Byte-budgeted LRU over materialized documents; budget None
        #: (the default) leaves it fully inactive — documents are then
        #: never registered and never evicted.
        self.buffer_pool = BufferPool(buffer_pool_bytes,
                                      spill_dir=buffer_pool_spill_dir)
        #: Workload profiler installed by :meth:`autopilot` (None keeps
        #: the query path's observation hook a no-op attribute read).
        self.workload_profiler = None
        #: Cost-model calibration (see :mod:`repro.autopilot.calibrate`);
        #: DurableDatabase loads/persists it under the data directory.
        self.cost_calibration = None
        self._autopilot = None

    # ------------------------------------------------------------------
    # DDL (writers: exclusive lock + copy-on-write catalog updates)
    # ------------------------------------------------------------------

    def create_table(self, name: str,
                     columns: list[tuple[str, str]]) -> Table:
        with self._rwlock.write():
            key = name.lower()
            if key in self.tables:
                raise CatalogError(f"table {name!r} already exists")
            table = Table(name, columns)
            tables = dict(self.tables)
            tables[key] = table
            self.tables = tables
            self.version += 1
            return table

    def drop_table(self, name: str) -> None:
        with self._rwlock.write():
            table = self.table(name)
            self.xml_indexes = {
                index_name: index
                for index_name, index in self.xml_indexes.items()
                if index.table != table.name}
            self.rel_indexes = {
                index_name: index
                for index_name, index in self.rel_indexes.items()
                if index.table != table.name}
            tables = dict(self.tables)
            del tables[table.name]
            self.tables = tables
            # The rows leave with the table, so their documents leave
            # the buffer pool — and their spill files leave the disk.
            for row in table.rows:
                for value in row.values.values():
                    if isinstance(value, StoredDocument):
                        self.buffer_pool.discard(value)
            self.version += 1

    def register_schema(self, schema: Schema) -> None:
        with self._rwlock.write():
            schemas = dict(self.schemas)
            schemas[schema.name] = schema
            self.schemas = schemas
            self.version += 1

    def create_xml_index(self, name: str, table: str, column: str,
                         pattern: str, index_type: str) -> XmlIndex:
        with self._rwlock.write():
            key = name.lower()
            if key in self.xml_indexes or key in self.rel_indexes:
                raise CatalogError(f"index {name!r} already exists")
            table_obj = self.table(table)
            if not table_obj.column_type(column).is_xml:
                raise CatalogError(
                    f"{table}.{column} is not an XML column")
            index = XmlIndex(key, table_obj.name, column.lower(), pattern,
                             index_type, order=self.index_order)
            # Build: index existing documents.  Each document is
            # released back to the buffer pool as soon as it has been
            # indexed — a bulk build touches every document once, and
            # without the release the materialized trees stack up past
            # the pool budget and evict the real working set.
            for stored in self.documents(table, column):
                index.index_document(stored.doc_id, stored.document)
                self.buffer_pool.release(stored)
            xml_indexes = dict(self.xml_indexes)
            xml_indexes[key] = index
            self.xml_indexes = xml_indexes
            self.version += 1
            return index

    def create_xml_index_online(self, name: str, table: str, column: str,
                                pattern: str, index_type: str) -> XmlIndex:
        """Build an XML index without excluding writers for the build.

        The offline :meth:`create_xml_index` holds the exclusive lock
        for the whole build — O(collection) with every writer stalled.
        This variant is the autopilot's builder:

        1. **Snapshot scan (no lock):** pin a COW snapshot and index
           its documents while writers proceed.  Each document is
           released back to the buffer pool once indexed, so the build
           charges — and stays within — the pool budget.
        2. **Catch-up (short write lock):** diff the snapshot's doc-id
           set against the live table and index/unindex the delta —
           the rows the WAL recorded while the scan ran.  Writers are
           excluded only for this window, which is proportional to the
           write rate during the scan, not to the collection.
        3. **Publish:** install the index in the catalog (COW swap).
           :class:`~repro.durability.engine.DurableDatabase` overrides
           :meth:`_publish_xml_index` to WAL-log the DDL at this point,
           so recovery replays it as an ordinary offline build —
           a crash anywhere before publish leaves no trace, and a
           crash after it leaves a complete, queryable index.

        Named ``index.build.*`` crash points instrument steps 1–3 for
        the fault-injection crash matrix.
        """
        faults = getattr(self, "_faults", None)
        key = name.lower()
        with self._rwlock.read():
            if key in self.xml_indexes or key in self.rel_indexes:
                raise CatalogError(f"index {name!r} already exists")
            table_obj = self.table(table)
            if not table_obj.column_type(column).is_xml:
                raise CatalogError(
                    f"{table}.{column} is not an XML column")
            snapshot = Snapshot(self)
        index = XmlIndex(key, table_obj.name, column.lower(), pattern,
                         index_type, order=self.index_order)
        built: dict[int, StoredDocument] = {}
        for stored in snapshot.documents(table, column):
            index.index_document(stored.doc_id, stored.document)
            built[stored.doc_id] = stored
            self.buffer_pool.release(stored)
        if faults is not None:
            faults.crash_point("index.build.after_scan")
        with self._rwlock.write():
            if key in self.xml_indexes or key in self.rel_indexes:
                raise CatalogError(
                    f"index {name!r} was created concurrently")
            if faults is not None:
                faults.crash_point("index.build.before_catchup")
            live = {stored.doc_id: stored
                    for stored in self.documents(table, column)}
            for doc_id, stored in live.items():
                if doc_id not in built:
                    index.index_document(doc_id, stored.document)
                    self.buffer_pool.release(stored)
            for doc_id, stored in built.items():
                if doc_id not in live:
                    # The snapshot pins the deleted row's document, so
                    # its postings can be removed exactly.
                    index.remove_document(doc_id, stored.document)
            if faults is not None:
                faults.crash_point("index.build.before_publish")
            self._publish_xml_index(index)
            if faults is not None:
                faults.crash_point("index.build.after_publish")
            return index

    def _publish_xml_index(self, index: XmlIndex) -> None:
        """Install a fully built index in the catalog (COW swap).

        The online builder's commit point; DurableDatabase overrides
        this to append the defining DDL to the WAL in the same
        exclusive section."""
        with self._rwlock.write():
            xml_indexes = dict(self.xml_indexes)
            xml_indexes[index.name] = index
            self.xml_indexes = xml_indexes
            self.version += 1

    def autopilot(self, **options):
        """This database's self-driving-indexing facade (lazily built).

        Attaching the autopilot installs its workload profiler, so
        subsequent queries are observed; see
        :class:`repro.autopilot.Autopilot`."""
        with self._rwlock.write():
            if self._autopilot is None:
                from ..autopilot import Autopilot
                self._autopilot = Autopilot(self, **options)
            return self._autopilot

    def create_relational_index(self, name: str, table: str,
                                column: str) -> RelationalIndex:
        with self._rwlock.write():
            key = name.lower()
            if key in self.xml_indexes or key in self.rel_indexes:
                raise CatalogError(f"index {name!r} already exists")
            table_obj = self.table(table)
            if table_obj.column_type(column).is_xml:
                raise CatalogError(
                    f"{table}.{column} is an XML column; use XMLPATTERN "
                    f"DDL")
            index = RelationalIndex(key, table_obj.name, column.lower(),
                                    order=self.index_order)
            for row in table_obj.rows:
                index.insert_row(row.row_id, row.values[column.lower()])
            rel_indexes = dict(self.rel_indexes)
            rel_indexes[key] = index
            self.rel_indexes = rel_indexes
            self.version += 1
            return index

    def drop_index(self, name: str) -> None:
        with self._rwlock.write():
            key = name.lower()
            if key in self.xml_indexes:
                xml_indexes = dict(self.xml_indexes)
                del xml_indexes[key]
                self.xml_indexes = xml_indexes
            elif key in self.rel_indexes:
                rel_indexes = dict(self.rel_indexes)
                del rel_indexes[key]
                self.rel_indexes = rel_indexes
            else:
                raise CatalogError(f"unknown index {name!r}")
            self.version += 1

    # ------------------------------------------------------------------
    # DML (writers)
    # ------------------------------------------------------------------

    def insert(self, table: str, values: dict[str, object],
               schema: str | Schema | dict[str, str | Schema] | None = None
               ) -> Row:
        """Insert a row.  XML column values may be XML text or a
        DocumentNode; ``schema`` optionally names a registered schema
        (or maps column name -> schema) for per-document validation.

        The whole insert — parse, validate, row append, index
        maintenance — is one write-side critical section: concurrent
        readers see either none or all of it."""
        with self._rwlock.write():
            table_obj = self.table(table)
            prepared: dict[str, object] = {}
            stored_docs: list[StoredDocument] = []
            for column_name, value in values.items():
                key = column_name.lower()
                sql_type = table_obj.column_type(key)
                if sql_type.is_xml and value is not None:
                    document = (value if isinstance(value, DocumentNode)
                                else parse_document(str(value)))
                    doc_schema = self._schema_for(schema, key)
                    if doc_schema is not None:
                        validate(document, doc_schema)
                    stored = StoredDocument(
                        next_doc_id(), document,
                        doc_schema.name if doc_schema else None)
                    # Capture the columnar accelerator table at ingest:
                    # one walk builds the (pre, post, level, …) columns,
                    # the path partitions, and the path summary that
                    # back the evaluator's fast paths, index builds, and
                    # the planner's cardinality estimates.
                    stored._store = ingest_document(document)
                    stored._schema = doc_schema
                    if self.buffer_pool.enabled:
                        stored._pool = self.buffer_pool
                    stored_docs.append(stored)
                    prepared[key] = stored
                else:
                    prepared[key] = value
            row = table_obj.new_row(prepared)
            try:
                self._index_row(table_obj, row)
            except Exception:  # lint: broad-except-ok (row rollback must fire for any indexing failure before the error propagates)
                table_obj.remove_row(row)
                raise
            for stored in stored_docs:
                self.buffer_pool.admit(stored)
            self.version += 1
            if self.workload_profiler is not None:
                self.workload_profiler.observe_write(table_obj.name)
            return row

    def _schema_for(self, schema, column: str) -> Schema | None:
        if schema is None:
            return None
        if isinstance(schema, dict):
            schema = schema.get(column)
            if schema is None:
                return None
        if isinstance(schema, Schema):
            return schema
        try:
            return self.schemas[schema]
        except KeyError:
            raise CatalogError(f"unknown schema {schema!r}") from None

    def _index_row(self, table: Table, row: Row) -> None:
        """Add one row to every index on its table, all-or-nothing.

        Both index families sit inside one rollback scope: a failure at
        *any* insert site — an xml-index cast/list-type error or a
        rel-index insert — unwinds every entry this call already added
        (xml postings and earlier rel entries alike) before re-raising,
        so the caller's row rollback leaves no orphaned postings
        behind.  Historically the rel-index loop ran outside the scope,
        leaving xml postings and earlier rel entries dangling; the
        fault-injection tests in ``tests/unit/test_index_atomicity.py``
        pin the fixed behaviour.
        """
        with self._rwlock.write():  # reentrant: insert() already holds it
            indexed_docs: list[tuple[XmlIndex, StoredDocument]] = []
            indexed_values: list[tuple[RelationalIndex, object]] = []
            try:
                for index in self.xml_indexes.values():
                    if index.table != table.name:
                        continue
                    stored = row.values.get(index.column)
                    if isinstance(stored, StoredDocument):
                        index.index_document(stored.doc_id,
                                             stored.document)
                        indexed_docs.append((index, stored))
                for index in self.rel_indexes.values():
                    if index.table == table.name:
                        value = self._indexed_value(index, row)
                        index.insert_row(row.row_id, value)
                        indexed_values.append((index, value))
            except Exception:  # lint: broad-except-ok (atomicity: unwind every entry added above whatever the failure, then re-raise)
                for index, stored in indexed_docs:
                    index.remove_document(stored.doc_id, stored.document)
                for index, value in indexed_values:
                    index.remove_row(row.row_id, value)
                raise

    @staticmethod
    def _indexed_value(index: RelationalIndex, row: Row):
        """The row's value for a relationally indexed column, surfacing
        a missing column as a typed :class:`CatalogError` (SQLSTATE
        42703, undefined column) instead of a raw ``KeyError``."""
        try:
            return row.values[index.column]
        except KeyError:
            raise CatalogError(
                f"row {row.row_id} has no value for indexed column "
                f"{index.table}.{index.column}",
                sqlstate="42703") from None

    def delete_rows(self, table: str, predicate=None) -> int:
        """Delete rows matching ``predicate(row_values_dict)`` (all rows
        if None); maintains every index.  Returns the count removed."""
        with self._rwlock.write():
            table_obj = self.table(table)
            victims = [row for row in table_obj.rows
                       if predicate is None or predicate(row.values)]
            return self._remove_rows(table_obj, victims)

    def _delete_positions(self, table: str, positions: list[int]) -> int:
        """Delete rows addressed by position in the table's row list.

        The replay arm of ``delete_rows``: a WAL record (and the
        shipped copy a read replica applies) stores victim *positions*
        because an arbitrary Python predicate is not serializable.
        Rows are reconstructed in original order during replay, so
        positions are deterministic on primary and follower alike."""
        with self._rwlock.write():
            table_obj = self.table(table)
            victims = []
            for position in positions:
                if position >= len(table_obj.rows):
                    from ..errors import DurabilityError
                    raise DurabilityError(
                        f"delete_rows replay: position {position} out "
                        f"of range for table {table_obj.name!r} with "
                        f"{len(table_obj.rows)} row(s)")
                victims.append(table_obj.rows[position])
            return self._remove_rows(table_obj, victims)

    def _remove_rows(self, table_obj: Table, victims: list[Row]) -> int:
        """Remove already-selected rows with index maintenance.

        Split out of :meth:`delete_rows` so the durability layer can
        delete by logged row position on replay (a Python predicate is
        not representable in a WAL record)."""
        with self._rwlock.write():
            for row in victims:
                for index in self.xml_indexes.values():
                    if index.table != table_obj.name:
                        continue
                    stored = row.values.get(index.column)
                    if isinstance(stored, StoredDocument):
                        index.remove_document(stored.doc_id,
                                              stored.document)
                for index in self.rel_indexes.values():
                    if index.table == table_obj.name:
                        index.remove_row(row.row_id,
                                         self._indexed_value(index, row))
                table_obj.remove_row(row)
                for value in row.values.values():
                    if isinstance(value, StoredDocument):
                        self.buffer_pool.discard(value)
            if victims:
                self.version += 1
                if self.workload_profiler is not None:
                    self.workload_profiler.observe_write(
                        table_obj.name, count=len(victims))
            return len(victims)

    # ------------------------------------------------------------------
    # Query entry points (readers: shared lock)
    # ------------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """A consistent COW view of catalog + rows at this instant."""
        with self._rwlock.read():
            return Snapshot(self)

    def xquery(self, query: str, use_indexes: bool = True,
               cost_based: bool = False,
               prefilter_threshold: float = 0.9,
               rewrite_views: bool = False,
               tracer=None, variables: dict | None = None):
        """Run a standalone XQuery; returns a planner QueryResult.

        ``cost_based=True`` turns on selectivity-based probe pruning
        (DB2-style cost-based optimization); the default rule-based
        mode uses every eligible index.  ``rewrite_views=True`` enables
        the §3.6 view-flattening rewrite.  ``tracer`` (a
        :class:`repro.obs.trace.Tracer`) records per-stage spans.

        Runs under the shared read lock: any number of queries proceed
        in parallel; DDL/ingest writers are excluded for the duration.
        """
        with self._rwlock.read():
            return super().xquery(
                query, use_indexes=use_indexes, cost_based=cost_based,
                prefilter_threshold=prefilter_threshold,
                rewrite_views=rewrite_views, tracer=tracer,
                variables=variables)

    def xquery_parallel(self, query: str, max_workers: int = 4,
                        use_indexes: bool = True, tracer=None):
        """Run one XQuery fanned across document partitions.

        Falls back to serial :meth:`xquery` when the query is not
        provably partitionable (see :mod:`repro.planner.parallel`).
        Results are merged in document order and are identical to the
        serial answer."""
        from ..planner.parallel import execute_xquery_parallel
        return execute_xquery_parallel(self, query,
                                       max_workers=max_workers,
                                       use_indexes=use_indexes,
                                       tracer=tracer)

    def process_pool(self, processes: int = 2, **options):
        """A :class:`repro.parallel.pool.ProcessPool` of read replicas.

        Spawns ``processes`` worker processes, each bootstrapped from a
        shipped checkpoint of this database's current state; when the
        database is durable, subsequent WAL records stream to the
        followers so they stay fresh.  Use as a context manager (or
        call ``close()``) so workers shut down gracefully::

            with db.process_pool(processes=4) as pool:
                result = pool.xquery(query)
        """
        from ..parallel.pool import ProcessPool
        return ProcessPool(self, processes=processes, **options)

    def sql(self, statement: str, use_indexes: bool = True, tracer=None):
        """Run an SQL/XML statement.

        SELECT/VALUES run under the shared read lock; INSERT/DELETE
        statements take the exclusive write side up front (the lock
        does not support read→write upgrades)."""
        head = statement.lstrip().upper()
        if head.startswith(("INSERT", "DELETE")):
            guard = self._rwlock.write()
        else:
            guard = self._rwlock.read()
        with guard:
            return super().sql(statement, use_indexes=use_indexes,
                               tracer=tracer)

    def execute_many(self, statements, max_workers: int | None = None
                     ) -> list:
        """Execute a batch of statements, fanning across a thread pool.

        ``statements`` is an iterable of XQuery or SQL/DDL texts; the
        result list is in input order, each entry whatever the matching
        single-statement entry point returns.  Read statements share
        the lock and run concurrently; write statements serialize
        through the exclusive side whenever the pool schedules them —
        each statement is one atomic critical section, so a batch mixed
        with writes is linearizable but its internal order is whatever
        the pool produces.  ``max_workers=None`` picks
        ``min(8, len(statements))``; ``1`` degrades to a serial loop.
        """
        statements = list(statements)
        if max_workers is None:
            max_workers = min(8, len(statements)) or 1
        if max_workers <= 1 or len(statements) <= 1:
            return [self.execute_any(statement)
                    for statement in statements]
        from concurrent.futures import ThreadPoolExecutor
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(self.execute_any, statements))

    def execute_any(self, statement: str):
        """Dispatch one statement text: SQL/DDL heads go through
        :meth:`execute`, anything else is treated as XQuery."""
        head = statement.lstrip().upper()
        if head.startswith(("SELECT", "VALUES") + _WRITE_HEADS):
            return self.execute(statement)
        return self.xquery(statement)

    def explain_analyze(self, statement: str, use_indexes: bool = True):
        """Execute ``statement`` with full instrumentation and return an
        :class:`repro.obs.explain.AnalyzedStatement` — the operator tree
        with actual cardinalities, timings and estimation error."""
        from ..obs.explain import explain_analyze
        return explain_analyze(self, statement, use_indexes=use_indexes)

    def explain(self, query: str) -> str:
        """Eligibility report + access plan for an SQL or XQuery text."""
        head = query.lstrip().upper()
        with self._rwlock.read():
            if head.startswith(("SELECT", "VALUES")):
                from ..sql.executor import explain_sql
                return explain_sql(self, query)
            from ..planner.plan import explain_xquery
            return explain_xquery(self, query)

    def execute(self, statement: str):
        """Dispatch a DDL or query statement given as text."""
        match = _CREATE_XML_INDEX_RE.match(statement)
        if match:
            return self.create_xml_index(
                match.group("name"), match.group("table"),
                match.group("column"),
                match.group("pattern").replace("''", "'"),
                re.sub(r"\s*\(.*\)", "", match.group("type")).upper())
        match = _CREATE_REL_INDEX_RE.match(statement)
        if match:
            return self.create_relational_index(
                match.group("name"), match.group("table"),
                match.group("column"))
        match = _CREATE_TABLE_RE.match(statement)
        if match:
            columns = _parse_column_list(match.group("columns"))
            return self.create_table(match.group("name"), columns)
        stripped = statement.lstrip().upper()
        if stripped.startswith(("SELECT", "VALUES", "INSERT", "DELETE")):
            return self.sql(statement)
        raise SQLError(f"cannot execute statement: {statement[:60]!r}",
                       "42601")


def _parse_column_list(text: str) -> list[tuple[str, str]]:
    columns: list[tuple[str, str]] = []
    depth = 0
    current: list[str] = []
    pieces: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        pieces.append("".join(current))
    for piece in pieces:
        piece = piece.strip()
        if not piece:
            continue
        name, _sep, type_text = piece.partition(" ")
        if not type_text:
            raise SQLError(f"malformed column definition {piece!r}",
                           "42601")
        columns.append((name, type_text.strip()))
    return columns
