"""Relational (non-XML) column indexes.

These exist so that Section 3.3's comparison holds in this engine too:
a join expressed with SQL comparisons can use a relational index on the
relational column (Query 14), while a join expressed in XQuery can only
use XML indexes (Query 13).  Keys follow SQL comparison semantics —
trailing blanks stripped.
"""

from __future__ import annotations

from typing import Iterator

from ..obs.metrics import METRICS
from ..sql.values import normalize_key
from .btree import BPlusTree


class RelationalIndex:
    """B+Tree index on one relational column; entries are row ids."""

    def __init__(self, name: str, table: str, column: str, order: int = 64):
        self.name = name
        self.table = table
        self.column = column
        self.tree = BPlusTree(order=order)

    def __repr__(self) -> str:
        return f"<RelationalIndex {self.name} ON {self.table}({self.column})>"

    def insert_row(self, row_id: int, value) -> None:
        if value is None:
            return  # NULLs are not indexed
        self.tree.insert(normalize_key(value), row_id)

    def remove_row(self, row_id: int, value) -> None:
        if value is None:
            return
        self.tree.delete(normalize_key(value), row_id)

    def lookup(self, value, stats=None) -> list[int]:
        rows = self.tree.get(normalize_key(value))
        if stats is not None:
            stats.index_entries_scanned += len(rows)
            stats.record_index_use(self.name)
        if METRICS.enabled:
            METRICS.inc("relindex.lookups")
        return rows

    def range(self, low=None, high=None, low_inclusive: bool = True,
              high_inclusive: bool = True, stats=None) -> Iterator[int]:
        count = 0
        for _key, row_id in self.tree.scan(
                normalize_key(low) if low is not None else None,
                normalize_key(high) if high is not None else None,
                low_inclusive, high_inclusive):
            count += 1
            yield row_id
        if stats is not None:
            stats.index_entries_scanned += count
            stats.record_index_use(self.name)
        if METRICS.enabled:
            METRICS.inc("relindex.lookups")

    def __len__(self) -> int:
        return len(self.tree)
