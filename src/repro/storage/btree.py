"""An in-memory B+Tree with leaf-linked range scans.

Both the XML value indexes (§2.1: "Under the covers, XML indexes are
implemented using B+Trees") and the relational column indexes sit on
this structure.  Keys must be mutually comparable; duplicate keys are
supported by storing a bucket of entries per key.

The implementation is a textbook order-``m`` B+Tree: interior nodes
hold separator keys and children, leaves hold (key, bucket) pairs and a
``next`` pointer for range scans.  Deletion rebalances by borrowing
from siblings and merging underflowed nodes.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from ..obs.metrics import METRICS


class _Leaf:
    __slots__ = ("keys", "buckets", "next")

    def __init__(self):
        self.keys: list[Any] = []
        self.buckets: list[list[Any]] = []
        self.next: _Leaf | None = None

    is_leaf = True


class _Interior:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: list[Any] = []
        self.children: list[Any] = []

    is_leaf = False


class BPlusTree:
    """Order-``order`` B+Tree mapping keys to buckets of entries."""

    def __init__(self, order: int = 64):
        if order < 4:
            raise ValueError("B+Tree order must be at least 4")
        self.order = order
        self._root: _Leaf | _Interior = _Leaf()
        self._size = 0          # number of entries (not distinct keys)
        self._key_count = 0     # number of distinct keys

    def __len__(self) -> int:
        return self._size

    @property
    def key_count(self) -> int:
        return self._key_count

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _find_leaf(self, key) -> _Leaf:
        node = self._root
        visited = 1
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
            visited += 1
        if METRICS.enabled:
            METRICS.inc("btree.node_visits", visited)
        return node

    def get(self, key) -> list[Any]:
        """All entries stored under ``key`` (empty list if none)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.buckets[index])
        return []

    def scan(self, low=None, high=None, low_inclusive: bool = True,
             high_inclusive: bool = True) -> Iterator[tuple[Any, Any]]:
        """Yield (key, entry) pairs for keys in the given range.

        ``low=None`` / ``high=None`` leave that bound open — a full
        range scan ``(-inf, +inf)`` is how a varchar index answers a
        purely structural predicate (§2.2).
        """
        if low is not None:
            leaf = self._find_leaf(low)
            start = bisect.bisect_left(leaf.keys, low)
        else:
            node = self._root
            while not node.is_leaf:
                node = node.children[0]
            leaf, start = node, 0
        leaves_walked = 0
        try:
            while leaf is not None:
                leaves_walked += 1
                for index in range(start, len(leaf.keys)):
                    key = leaf.keys[index]
                    if low is not None:
                        if key < low or (key == low and not low_inclusive):
                            continue
                    if high is not None:
                        if key > high or (key == high and
                                          not high_inclusive):
                            return
                    for entry in leaf.buckets[index]:
                        yield key, entry
                leaf = leaf.next
                start = 0
        finally:
            # Runs on exhaustion, early return, and generator close.
            if METRICS.enabled and leaves_walked:
                METRICS.inc("btree.leaf_scans", leaves_walked)

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self.scan()

    def keys(self) -> Iterator[Any]:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from node.keys
            node = node.next

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key, entry) -> None:
        """Insert ``entry`` under ``key`` (duplicates allowed)."""
        split = self._insert(self._root, key, entry)
        if split is not None:
            separator, right = split
            new_root = _Interior()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node, key, entry):
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.buckets[index].append(entry)
                return None
            node.keys.insert(index, key)
            node.buckets.insert(index, [entry])
            self._key_count += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, entry)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) > self.order:
            return self._split_interior(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.buckets = leaf.buckets[middle:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:middle]
        leaf.buckets = leaf.buckets[:middle]
        leaf.next = right
        return right.keys[0], right

    def _split_interior(self, node: _Interior):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Interior()
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, key, entry=None) -> bool:
        """Remove one matching entry under ``key``.

        With ``entry=None`` the whole bucket for ``key`` is removed.
        Returns True if something was deleted.
        """
        removed = self._delete(self._root, key, entry)
        if removed and not self._root.is_leaf and \
                len(self._root.children) == 1:
            self._root = self._root.children[0]
        return removed

    def _delete(self, node, key, entry) -> bool:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            bucket = node.buckets[index]
            if entry is None:
                self._size -= len(bucket)
                bucket.clear()
            else:
                try:
                    bucket.remove(entry)
                except ValueError:
                    return False
                self._size -= 1
            if not bucket:
                node.keys.pop(index)
                node.buckets.pop(index)
                self._key_count -= 1
            return True
        index = bisect.bisect_right(node.keys, key)
        child = node.children[index]
        removed = self._delete(child, key, entry)
        if removed:
            self._rebalance(node, index)
        return removed

    def _min_fill(self) -> int:
        return self.order // 2

    def _rebalance(self, parent: _Interior, index: int) -> None:
        child = parent.children[index]
        fill = len(child.keys)
        if fill >= self._min_fill():
            return
        left = parent.children[index - 1] if index > 0 else None
        right = (parent.children[index + 1]
                 if index + 1 < len(parent.children) else None)

        if left is not None and len(left.keys) > self._min_fill():
            self._borrow_from_left(parent, index, left, child)
        elif right is not None and len(right.keys) > self._min_fill():
            self._borrow_from_right(parent, index, child, right)
        elif left is not None:
            self._merge(parent, index - 1, left, child)
        elif right is not None:
            self._merge(parent, index, child, right)

    def _borrow_from_left(self, parent, index, left, child) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.buckets.insert(0, left.buckets.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent, index, child, right) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.buckets.append(right.buckets.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent, left_index, left, right) -> None:
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.buckets.extend(right.buckets)
            left.next = right.next
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # ------------------------------------------------------------------
    # Introspection / validation (used by property tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        self._check_node(self._root, is_root=True, low=None, high=None)
        # The leaf chain must visit exactly the leaves reachable by
        # tree descent, left to right.  Checking node identity (not
        # just key order) catches a mis-spliced ``next`` pointer after
        # a merge — a stale pointer into a detached leaf can still
        # yield sorted keys while dropping or duplicating entries.
        leaves = self._leaves_by_descent()
        chain: list[_Leaf] = []
        node = leaves[0]
        while node is not None:
            chain.append(node)
            assert len(chain) <= len(leaves), "leaf chain cycle"
            node = node.next
        assert [id(leaf) for leaf in chain] == \
            [id(leaf) for leaf in leaves], \
            "leaf next-chain does not match tree structure"
        keys = list(self.keys())
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(keys) == self._key_count, "key_count drift"
        assert len(set(map(repr, keys))) == len(keys), "duplicate keys"

    def _leaves_by_descent(self) -> list[_Leaf]:
        leaves: list[_Leaf] = []
        stack: list[Any] = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves.append(node)
            else:
                stack.extend(reversed(node.children))
        return leaves

    def _check_node(self, node, is_root: bool, low, high) -> int:
        assert node.keys == sorted(node.keys)
        for key in node.keys:
            if low is not None:
                assert key >= low
            if high is not None:
                assert key < high
        if node.is_leaf:
            assert len(node.keys) == len(node.buckets)
            if not is_root:
                assert len(node.keys) >= 1
            return 1
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.keys) >= 1
        depths = set()
        bounds = [low] + list(node.keys) + [high]
        for position, child in enumerate(node.children):
            depths.add(self._check_node(child, False,
                                        bounds[position],
                                        bounds[position + 1]))
        assert len(depths) == 1, "unbalanced tree"
        return depths.pop() + 1
