"""Integration tests: the §2.1 schema-evolution scenario.

U.S. postal codes are numeric; when the company ships to Canada the
schema changes to strings.  Both document populations live in one XML
column under different per-document schemas, and the *tolerant* index
behaviour is what keeps inserts working.
"""

import pytest

from repro import Database
from repro.workload import intl_customer_schema, us_customer_schema


@pytest.fixture()
def evolving_db() -> Database:
    database = Database()
    database.create_table("customer", [("cid", "INTEGER"),
                                       ("cdoc", "XML")])
    database.register_schema(us_customer_schema())
    database.register_schema(intl_customer_schema())
    database.execute(
        "CREATE INDEX pc_num ON customer(cdoc) "
        "USING XMLPATTERN '//postalcode' AS DOUBLE")
    database.execute(
        "CREATE INDEX pc_str ON customer(cdoc) "
        "USING XMLPATTERN '//postalcode' AS VARCHAR")
    return database


def _customer(cid: int, postal: str) -> str:
    return (f"<customer><id>{cid}</id><name>c{cid}</name>"
            f"<nation>{1 if postal.isdigit() else 2}</nation>"
            f"<address><postalcode>{postal}</postalcode></address>"
            f"</customer>")


class TestTolerantIndexes:
    def test_canadian_docs_insert_despite_numeric_index(self, evolving_db):
        evolving_db.insert("customer",
                           {"cid": 1, "cdoc": _customer(1, "95141")},
                           schema="customer-v1")
        # A non-numeric postal code must NOT block insertion even
        # though pc_num cannot index it ("tolerant" behaviour).
        evolving_db.insert("customer",
                           {"cid": 2, "cdoc": _customer(2, "K1A 0B1")},
                           schema="customer-v2")
        assert len(evolving_db.xml_indexes["pc_num"]) == 1
        assert len(evolving_db.xml_indexes["pc_str"]) == 2

    def test_numeric_query_uses_numeric_index(self, evolving_db):
        for cid, postal in [(1, "95141"), (2, "K1A 0B1"), (3, "10001")]:
            version = "customer-v1" if postal.isdigit() else "customer-v2"
            evolving_db.insert(
                "customer", {"cid": cid, "cdoc": _customer(cid, postal)},
                schema=version)
        # Over mixed typed data a bare `postalcode < 20000` raises
        # XPTY0004 against the string-typed Canadian codes; a robust
        # evolving-schema query guards with `castable` and casts.
        query = ("for $c in db2-fn:xmlcolumn('CUSTOMER.CDOC')"
                 "/customer[address/postalcode"
                 "[. castable as xs:double]/xs:double(.) < 20000] "
                 "return $c")
        result = evolving_db.xquery(query)
        assert len(result) == 1
        assert "pc_num" in result.stats.indexes_used
        baseline = evolving_db.xquery(query, use_indexes=False)
        assert result.serialize() == baseline.serialize()

    def test_bare_numeric_comparison_errors_on_typed_strings(
            self, evolving_db):
        from repro.errors import XQueryTypeError
        evolving_db.insert("customer",
                           {"cid": 2, "cdoc": _customer(2, "K1A 0B1")},
                           schema="customer-v2")
        with pytest.raises(XQueryTypeError):
            evolving_db.xquery(
                "db2-fn:xmlcolumn('CUSTOMER.CDOC')"
                "/customer[address/postalcode < 20000]",
                use_indexes=False)

    def test_string_query_uses_string_index(self, evolving_db):
        for cid, postal in [(1, "95141"), (2, "K1A 0B1")]:
            version = "customer-v1" if postal.isdigit() else "customer-v2"
            evolving_db.insert(
                "customer", {"cid": cid, "cdoc": _customer(cid, postal)},
                schema=version)
        query = ("for $c in db2-fn:xmlcolumn('CUSTOMER.CDOC')"
                 "/customer[address/postalcode/xs:string(.) = "
                 "\"K1A 0B1\"] return $c")
        result = evolving_db.xquery(query)
        assert len(result) == 1
        assert "pc_str" in result.stats.indexes_used

    def test_typed_values_differ_across_versions(self, evolving_db):
        evolving_db.insert("customer",
                           {"cid": 1, "cdoc": _customer(1, "95141")},
                           schema="customer-v1")
        evolving_db.insert("customer",
                           {"cid": 2, "cdoc": _customer(2, "10001")},
                           schema="customer-v2")
        docs = evolving_db.documents("customer", "cdoc")
        first = docs[0].document.root_element
        second = docs[1].document.root_element
        postal_v1 = first.children[-1].children[0]
        postal_v2 = second.children[-1].children[0]
        assert postal_v1.typed_value()[0].type_name == "xs:double"
        assert postal_v2.typed_value()[0].type_name == "xs:string"

    def test_unvalidated_documents_coexist(self, evolving_db):
        evolving_db.insert("customer",
                           {"cid": 1, "cdoc": _customer(1, "95141")})
        docs = evolving_db.documents("customer", "cdoc")
        assert docs[0].schema_name is None
        node = docs[0].document.root_element.children[-1].children[0]
        assert node.typed_value()[0].type_name == "xdt:untypedAtomic"
