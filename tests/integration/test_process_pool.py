"""End-to-end process pool: log-shipped replicas serving real queries.

These tests fork real worker processes (2 per pool — pinned, so the
suite behaves the same on 1-core CI and a big workstation) and check
the pool's one promise: every answer is byte-identical to the serial
answer on the primary, whether it came back from the replicas or from
a recorded serial fallback.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.durability import DurableDatabase
from repro.obs.metrics import METRICS, enabled_metrics
from repro.obs.trace import Tracer, validate_trace
from repro.parallel import ProcessPool, ShippedQueryResult, \
    ShippedSQLResult
from repro.workload.paperqueries import load_paper_fixture

PATH_QUERY = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/custid"
FLWOR_QUERY = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
               "where $o/custid = 1001 "
               "return <hit>{$o/custid/text()}</hit>")
PRICE_QUERY = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
               "//order[lineitem/@price > 100]")
NEW_ORDER = ("<order><custid>1001</custid>"
             "<lineitem price=\"175\"><product><id>77</id></product>"
             "</lineitem></order>")


@pytest.fixture()
def pool_db() -> Database:
    database = Database()
    load_paper_fixture(database)
    return database


@pytest.fixture()
def durable_pool_db(tmp_path):
    with DurableDatabase(tmp_path / "state") as database:
        load_paper_fixture(database)
        yield database


class TestPartitionedReads:
    def test_byte_identical_across_query_shapes(self, pool_db):
        with pool_db.process_pool(processes=2) as pool:
            for query in (PATH_QUERY, FLWOR_QUERY, PRICE_QUERY):
                shipped = pool.xquery(query)
                serial = pool_db.xquery(query)
                assert isinstance(shipped, ShippedQueryResult)
                assert shipped.serialized() == serial.serialized()
                assert shipped.serialize() == serial.serialize()

    def test_atomic_results_keep_sequence_spacing(self, pool_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "/order/custid/text()")
        with pool_db.process_pool(processes=2) as pool:
            shipped = pool.xquery(query)
        assert shipped.serialized() == \
            pool_db.xquery(query).serialized()

    def test_prefilter_planned_once_on_primary(self, pool_db):
        """The primary's index prefilter travels as positions: workers
        scan only surviving documents and never re-plan."""
        with pool_db.process_pool(processes=2) as pool:
            shipped = pool.xquery(PRICE_QUERY)
        assert "li_price" in shipped.stats.indexes_used
        # Only the one qualifying document is ever materialized, and
        # only on a worker.
        assert shipped.stats.docs_scanned == 1
        assert any("prefilter" in note
                   for note in shipped.stats.plan_notes)
        assert any("process-parallel" in note
                   for note in shipped.stats.plan_notes)

    def test_worker_cache_reused_across_pool_requests(self, pool_db):
        with pool_db.process_pool(processes=2) as pool:
            first = pool.xquery(PATH_QUERY)
            second = pool.xquery(PATH_QUERY)
        assert first.worker_cache_hits == 0
        assert second.worker_cache_hits == second.partitions == 2
        assert any("replica compiled-query cache: 2/2" in note
                   for note in second.stats.plan_notes)

    def test_too_few_docs_falls_back(self, pool_db):
        pool_db.create_table("solo", [("doc", "XML")])
        pool_db.insert("solo", {"doc": "<only><a>1</a></only>"})
        with pool_db.process_pool(processes=2) as pool:
            with enabled_metrics():
                result = pool.xquery(
                    "db2-fn:xmlcolumn('SOLO.DOC')/only/a")
                counters = METRICS.snapshot()["counters"]
        assert counters[
            "parallel.fallback_reason.too-few-docs"] == 1
        assert result.serialize() == ["<a>1</a>"]

    def test_fanout_metrics_and_lag_gauge(self, pool_db):
        with pool_db.process_pool(processes=2) as pool:
            with enabled_metrics():
                pool.xquery(PATH_QUERY)
                snapshot = METRICS.snapshot()
        assert snapshot["counters"]["process.fanouts"] == 1
        assert snapshot["counters"]["process.partitions"] == 2
        assert snapshot["histograms"]["process.seconds"]["count"] == 1
        assert snapshot["gauges"][
            "replication.replica_lag_records"] == 0


class TestLogShipping:
    def test_writes_stream_to_replicas(self, durable_pool_db):
        database = durable_pool_db
        with database.process_pool(processes=2) as pool:
            before = pool.xquery(PATH_QUERY)
            database.insert("orders", {"ordid": 99, "orddoc": NEW_ORDER})
            with enabled_metrics():
                after = pool.xquery(PATH_QUERY)
                counters = METRICS.snapshot()["counters"]
            # Served in parallel — log shipping kept replicas fresh, so
            # no freshness fallback was needed.
            assert isinstance(after, ShippedQueryResult)
            assert counters.get("parallel.serial_fallbacks", 0) == 0
            assert after.serialized() == \
                database.xquery(PATH_QUERY).serialized()
            assert len(after.serialize()) == len(before.serialize()) + 1

    def test_ping_reports_caught_up_watermarks(self, durable_pool_db):
        database = durable_pool_db
        with database.process_pool(processes=2) as pool:
            database.insert("orders", {"ordid": 98, "orddoc": NEW_ORDER})
            database.delete_rows(
                "orders", lambda values: values["ordid"] == 98)
            states = pool.ping()
            assert len(states) == 2
            assert all(applied == database.wal.last_lsn
                       for _pid, applied in states)

    def test_delete_replays_on_replicas(self, durable_pool_db):
        database = durable_pool_db
        with database.process_pool(processes=2) as pool:
            database.delete_rows(
                "orders", lambda values: values["ordid"] in (3, 5))
            shipped = pool.xquery(PATH_QUERY)
            assert isinstance(shipped, ShippedQueryResult)
            assert shipped.serialized() == \
                database.xquery(PATH_QUERY).serialized()

    def test_ddl_replays_on_replicas(self, durable_pool_db):
        database = durable_pool_db
        with database.process_pool(processes=2) as pool:
            database.execute(
                "CREATE INDEX li_qty ON orders(orddoc) "
                "USING XMLPATTERN '//lineitem/@quantity' AS DOUBLE")
            query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                     "//order[lineitem/@quantity = 2]")
            shipped = pool.xquery(query)
            assert isinstance(shipped, ShippedQueryResult)
            assert shipped.serialized() == \
                database.xquery(query).serialized()

    def test_plain_database_freshness_fallback_and_resync(self, pool_db):
        with pool_db.process_pool(processes=2) as pool:
            assert isinstance(pool.xquery(PATH_QUERY),
                              ShippedQueryResult)
            pool_db.insert("orders", {"ordid": 97, "orddoc": NEW_ORDER})
            with enabled_metrics():
                stale = pool.xquery(PATH_QUERY)
                counters = METRICS.snapshot()["counters"]
            # No WAL to ship on a plain Database: correct but serial.
            assert not isinstance(stale, ShippedQueryResult)
            assert counters["parallel.fallback_reason.freshness"] == 1
            assert stale.serialize() == \
                pool_db.xquery(PATH_QUERY).serialize()
            assert pool.resync() == 2
            fresh = pool.xquery(PATH_QUERY)
            assert isinstance(fresh, ShippedQueryResult)
            assert fresh.serialized() == \
                pool_db.xquery(PATH_QUERY).serialized()


class TestExecuteMany:
    STATEMENTS = [
        PATH_QUERY,
        "SELECT ordid FROM orders WHERE ordid = 3",
        FLWOR_QUERY,
        "SELECT cid FROM customer",
    ]

    def test_round_robin_matches_serial(self, durable_pool_db):
        database = durable_pool_db
        serial = database.execute_many(self.STATEMENTS, max_workers=1)
        with database.process_pool(processes=2) as pool:
            shipped = pool.execute_many(self.STATEMENTS)
        assert [type(result).__name__ for result in shipped] == [
            "ShippedQueryResult", "ShippedSQLResult",
            "ShippedQueryResult", "ShippedSQLResult"]
        for ours, theirs in zip(shipped, serial):
            if isinstance(ours, ShippedSQLResult):
                assert ours.columns == theirs.columns
                assert ours.serialize_rows() == theirs.serialize_rows()
            else:
                assert ours.serialized() == theirs.serialized()

    def test_write_batch_runs_on_primary(self, durable_pool_db):
        database = durable_pool_db
        batch = ["INSERT INTO orders (ordid, orddoc) VALUES "
                 f"(96, '{NEW_ORDER}')", PATH_QUERY]
        with database.process_pool(processes=2) as pool:
            with enabled_metrics():
                results = pool.execute_many(batch)
                counters = METRICS.snapshot()["counters"]
        assert counters[
            "parallel.fallback_reason.write-statements"] == 1
        assert results[0].rows == [(1,)]
        assert database.table("orders").rows[-1].values["ordid"] == 96

    def test_single_statement_batch_stays_serial(self, durable_pool_db):
        with durable_pool_db.process_pool(processes=2) as pool:
            with enabled_metrics():
                results = pool.execute_many([PATH_QUERY])
                counters = METRICS.snapshot()["counters"]
        assert len(results) == 1
        assert counters["parallel.fallback_reason.too-few-docs"] == 1


class TestTracing:
    def test_replica_spans_graft_into_primary_trace(self, pool_db):
        tracer = Tracer(statement=PATH_QUERY, language="xquery")
        with pool_db.process_pool(processes=2) as pool:
            shipped = pool.xquery(PATH_QUERY, tracer=tracer)
        assert isinstance(shipped, ShippedQueryResult)
        payload = tracer.to_dict()
        assert validate_trace(payload) == []
        replica_spans = [span for span in payload["spans"]
                         if span["name"] == "replica-eval"]
        assert len(replica_spans) == 2
        assert sorted(span["attrs"]["worker"]
                      for span in replica_spans) == [0, 1]
        assert all(span["attrs"]["pid"] > 0 for span in replica_spans)


class TestLifecycle:
    def test_graceful_shutdown_reaps_workers(self, pool_db):
        pool = pool_db.process_pool(processes=2)
        workers = list(pool._workers)
        assert pool.workers_alive() == 2
        pool.close()
        assert pool.closed
        assert pool.workers_alive() == 0
        assert all(not worker.process.is_alive() for worker in workers)
        pool.close()  # idempotent

    def test_wal_subscription_removed_on_close(self, durable_pool_db):
        database = durable_pool_db
        pool = database.process_pool(processes=2)
        assert database.wal._subscribers
        pool.close()
        assert not database.wal._subscribers
        # Writes after close must not try to ship anywhere.
        database.insert("orders", {"ordid": 95, "orddoc": NEW_ORDER})

    def test_hung_worker_is_demoted_and_reaped(self, pool_db):
        """A worker that stops responding must be *reaped* — process
        terminated and joined, pipe closed — not just flagged dead.

        SIGSTOP models the worst hang: the process ignores everything
        except SIGKILL (SIGTERM stays pending on a stopped process), so
        this also proves the terminate->kill escalation."""
        import os
        import signal

        with pool_db.process_pool(processes=2,
                                  response_timeout=2.0) as pool:
            victim = pool._workers[0]
            os.kill(victim.process.pid, signal.SIGSTOP)
            with enabled_metrics():
                result = pool.xquery(PATH_QUERY)
                counters = METRICS.snapshot()["counters"]
            # The fan-out timed out on the stopped worker, demoted it,
            # and fell back to a correct serial answer.
            assert counters["parallel.workers_demoted"] == 1
            assert "parallel.fallback_reason.worker-error" in counters
            assert result.serialize() == \
                pool_db.xquery(PATH_QUERY).serialize()
            # Reaped for real: process gone, our pipe end closed, the
            # pool shrunk honestly.
            assert not victim.alive
            assert not victim.process.is_alive()
            assert victim.process.exitcode is not None
            assert victim.conn.closed
            assert pool.workers_alive() == 1
            # The survivor still answers (serially, single-worker).
            again = pool.xquery(PATH_QUERY)
            assert again.serialize() == \
                pool_db.xquery(PATH_QUERY).serialize()

    def test_pool_survives_a_killed_worker(self, pool_db):
        with pool_db.process_pool(processes=2) as pool:
            victim = pool._workers[0]
            victim.process.terminate()
            victim.process.join(timeout=5.0)
            with enabled_metrics():
                result = pool.xquery(PATH_QUERY)
                counters = METRICS.snapshot()["counters"]
            # One worker left -> serial fallback, correct answer.
            reasons = {name for name in counters
                       if name.startswith("parallel.fallback_reason.")}
            assert reasons <= {"parallel.fallback_reason.worker-error",
                               "parallel.fallback_reason.single-worker"}
            assert reasons
            assert result.serialize() == \
                pool_db.xquery(PATH_QUERY).serialize()


class TestCLI:
    def test_query_with_processes_flag(self, tmp_path):
        import io

        from repro.cli import main
        for position in range(4):
            (tmp_path / f"doc{position}.xml").write_text(
                f"<item><name>n{position}</name></item>")
        out = io.StringIO()
        code = main(["query", "--load", str(tmp_path),
                     "--processes", "2",
                     "db2-fn:xmlcolumn('DOCS.DOC')/item/name"],
                    out=out)
        captured = out.getvalue()
        assert code == 0
        for position in range(4):
            assert f"<name>n{position}</name>" in captured
