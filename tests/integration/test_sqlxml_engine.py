"""Integration tests for the broader SQL/XML engine behaviour."""

import pytest
from decimal import Decimal

from repro.errors import SQLCastError, SQLError
from repro.sql.values import XMLValue


class TestSelectBasics:
    def test_relational_projection(self, paper_db):
        result = paper_db.sql(
            "SELECT id, name FROM products WHERE id = '17'")
        assert result.rows == [("17", "trusty widget")]

    def test_three_valued_logic(self, paper_db):
        paper_db.insert("products", {"id": "99", "name": None})
        result = paper_db.sql(
            "SELECT id FROM products WHERE name = 'trusty widget'")
        assert len(result) == 1  # NULL name row is UNKNOWN, not matched
        result = paper_db.sql(
            "SELECT id FROM products WHERE name IS NULL")
        assert result.rows == [("99",)]
        result = paper_db.sql(
            "SELECT id FROM products WHERE name IS NOT NULL")
        assert len(result) == 5

    def test_not_and_or(self, paper_db):
        result = paper_db.sql(
            "SELECT id FROM products WHERE NOT (id = '17' OR id = '18')")
        assert len(result) == 3

    def test_order_by(self, paper_db):
        result = paper_db.sql(
            "SELECT id FROM products ORDER BY id DESC")
        assert [row[0] for row in result.rows] == \
            ["21", "20", "19", "18", "17"]

    def test_cross_join_cardinality(self, paper_db):
        result = paper_db.sql(
            "SELECT p.id, c.cid FROM products p, customer c")
        assert len(result) == 15

    def test_padded_string_comparison(self, paper_db):
        paper_db.insert("products", {"id": "pad", "name": "padded   "})
        result = paper_db.sql(
            "SELECT id FROM products WHERE name = 'padded'")
        assert result.rows == [("pad",)]

    def test_unknown_column_rejected(self, paper_db):
        with pytest.raises(SQLError):
            paper_db.sql("SELECT nonexistent FROM products")

    def test_unknown_table_rejected(self, paper_db):
        with pytest.raises(Exception):
            paper_db.sql("SELECT a FROM missing_table")


class TestXMLFunctions:
    def test_xmlquery_passes_sql_types(self, paper_db):
        # An INTEGER column crosses into XQuery as xs:integer.
        result = paper_db.sql(
            "SELECT XMLQUERY('$n + 1' PASSING cid AS \"n\") "
            "FROM customer WHERE cid = 1")
        value = result.rows[0][0].items[0]
        assert value.value == 2

    def test_xmlcast_empty_is_null(self, paper_db):
        result = paper_db.sql(
            "SELECT XMLCAST(XMLQUERY('$d//nothing' PASSING cdoc AS "
            "\"d\") AS VARCHAR(10)) FROM customer WHERE cid = 1")
        assert result.rows[0][0] is None

    def test_xmlcast_decimal_scale(self, paper_db):
        result = paper_db.sql(
            "SELECT XMLCAST(XMLQUERY('$d//lineitem[1]/@price' PASSING "
            "orddoc AS \"d\") AS DECIMAL(8,2)) FROM orders "
            "WHERE ordid = 2")
        assert result.rows[0][0] == Decimal("99.50")

    def test_xmlcast_non_castable_errors(self, paper_db):
        with pytest.raises(SQLCastError):
            paper_db.sql(
                "SELECT XMLCAST(XMLQUERY('$d//lineitem[1]/@price' "
                "PASSING orddoc AS \"d\") AS DOUBLE) FROM orders "
                "WHERE ordid = 4")   # '20 USD'

    def test_xmlelement_publishing(self, paper_db):
        result = paper_db.sql(
            "SELECT XMLELEMENT(NAME product, XMLATTRIBUTES(id AS pid), "
            "name) FROM products WHERE id = '17'")
        rendered = result.serialize_rows()[0][0]
        assert rendered == '<product pid="17">trusty widget</product>'

    def test_xmlforest_and_concat(self, paper_db):
        result = paper_db.sql(
            "SELECT XMLCONCAT(XMLFOREST(id, name AS label)) "
            "FROM products WHERE id = '18'")
        rendered = result.serialize_rows()[0][0]
        assert rendered == "<id>18</id><label>spare gadget</label>"

    def test_xmlforest_skips_nulls(self, paper_db):
        paper_db.insert("products", {"id": "nn", "name": None})
        result = paper_db.sql(
            "SELECT XMLFOREST(id, name) FROM products WHERE id = 'nn'")
        rendered = result.serialize_rows()[0][0]
        assert rendered == "<id>nn</id>"

    def test_xmltable_for_ordinality(self, paper_db):
        result = paper_db.sql(
            "SELECT t.seq, t.price FROM orders o, "
            "XMLTABLE('$d//lineitem' PASSING o.orddoc AS \"d\" "
            "COLUMNS seq FOR ORDINALITY, "
            "price VARCHAR(10) PATH '@price') AS t "
            "WHERE o.ordid = 3")
        assert result.rows == [(1, "150"), (2, "90")]

    def test_xmltable_default_path_is_column_name(self, paper_db):
        result = paper_db.sql(
            "SELECT t.custid FROM orders o, "
            "XMLTABLE('$d/order' PASSING o.orddoc AS \"d\" "
            "COLUMNS custid DOUBLE) AS t WHERE o.ordid = 3")
        assert result.rows == [(1001.0,)]

    def test_xmltable_by_value_copies(self, paper_db):
        result = paper_db.sql(
            "SELECT t.li FROM orders o, "
            "XMLTABLE('$d//lineitem[@price=150]' PASSING o.orddoc AS "
            "\"d\" COLUMNS li XML PATH '.') AS t")
        node = result.rows[0][0].items[0]
        assert node.parent is None   # BY VALUE: fresh copy

    def test_xmltable_multi_item_scalar_column_errors(self, paper_db):
        with pytest.raises(SQLCastError):
            paper_db.sql(
                "SELECT t.ids FROM orders o, "
                "XMLTABLE('$d/order' PASSING o.orddoc AS \"d\" "
                "COLUMNS ids VARCHAR(20) PATH './/id') AS t "
                "WHERE o.ordid = 3")

    def test_values_statement(self, paper_db):
        result = paper_db.sql("VALUES (1, 'x')")
        assert result.rows == [(1, "x")]
        assert result.columns == ["col1", "col2"]

    def test_sqlquery_bridge(self, paper_db):
        # db2-fn:sqlquery crosses back from XQuery into SQL.
        result = paper_db.xquery(
            "for $d in db2-fn:sqlquery('SELECT orddoc FROM orders "
            "WHERE ordid = 3') return $d/order/custid/data(.)")
        assert result.serialize() == ["1001"]


class TestIndexedAccess:
    def test_relational_index_point_lookup(self, indexed_db):
        indexed_db.create_relational_index("p_id", "products", "id")
        result = indexed_db.sql(
            "SELECT name FROM products WHERE id = '17'")
        assert result.rows == [("trusty widget",)]
        assert "p_id" in result.stats.indexes_used

    def test_sql_results_identical_with_and_without_indexes(
            self, indexed_db):
        statements = [
            "SELECT ordid FROM orders WHERE XMLEXISTS("
            "'$o//lineitem[@price > 100]' PASSING orddoc AS \"o\")",
            "SELECT o.ordid, t.price FROM orders o, "
            "XMLTABLE('$d//lineitem[@price > 50]' PASSING o.orddoc AS "
            "\"d\" COLUMNS price VARCHAR(10) PATH '@price') AS t",
        ]
        for statement in statements:
            fast = indexed_db.sql(statement, use_indexes=True)
            slow = indexed_db.sql(statement, use_indexes=False)
            assert fast.rows == slow.rows, statement

    def test_xmlexists_with_two_predicates(self, indexed_db):
        result = indexed_db.sql(
            "SELECT ordid FROM orders WHERE XMLEXISTS("
            "'$o/order[custid = 1001][lineitem/@price > 100]' "
            "PASSING orddoc AS \"o\")")
        assert [row[0] for row in result.rows] == [3]
