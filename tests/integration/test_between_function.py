"""Integration tests: the fn:between extension (paper §4 future work).

"Adding an explicit 'between' function would solve the issue of
Section 3.10" — this engine adds it: true same-value range semantics,
always collapsible to a single index range scan.
"""

import pytest

from repro import Database
from repro.errors import XQueryTypeError


@pytest.fixture()
def between_db() -> Database:
    database = Database()
    database.create_table("orders", [("orddoc", "XML")])
    docs = [
        "<order><multi><price>250</price><price>50</price></multi>"
        "</order>",                                    # existential trap
        "<order><multi><price>150</price></multi></order>",
        "<order><multi><price>90</price></multi></order>",
        "<order><multi><price>20 USD</price></multi></order>",
    ]
    for doc in docs:
        database.insert("orders", {"orddoc": doc})
    database.create_xml_index("e_price", "orders", "orddoc",
                              "//multi/price", "DOUBLE")
    return database


class TestSemantics:
    def test_same_value_semantics(self, between_db):
        result = between_db.xquery(
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//multi[between(price, 100, 200)]",
            use_indexes=False)
        assert len(result) == 1   # only the true 150

    def test_differs_from_existential_pair(self, between_db):
        existential = between_db.xquery(
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//multi[price > 100 and price < 200]",
            use_indexes=False)
        assert len(existential) == 2   # the 250/50 trap qualifies

    def test_bounds_inclusive(self, between_db):
        result = between_db.xquery(
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//multi[between(price, 150, 150)]",
            use_indexes=False)
        assert len(result) == 1

    def test_uncastable_values_skipped(self, between_db):
        result = between_db.xquery(
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//multi[between(price, 0, 1000)]",
            use_indexes=False)
        assert len(result) == 3   # '20 USD' never matches numerically

    def test_string_between(self, between_db):
        result = between_db.xquery(
            "between(('apple', 'fig'), 'b', 'g')", use_indexes=False)
        assert result.serialize() == ["true"]

    def test_empty_bound_rejected(self, between_db):
        with pytest.raises(XQueryTypeError):
            between_db.xquery("between((1), (), 2)", use_indexes=False)

    def test_empty_sequence_is_false(self, between_db):
        result = between_db.xquery("between((), 1, 2)",
                                   use_indexes=False)
        assert result.serialize() == ["false"]


class TestPlanning:
    def test_single_range_scan(self, between_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//multi[between(price, 100, 200)]")
        result = between_db.xquery(query)
        assert result.stats.index_scans == 1
        assert result.stats.indexes_used == ["e_price"]
        baseline = between_db.xquery(query, use_indexes=False)
        assert result.serialize() == baseline.serialize()

    def test_where_clause_form(self, between_db):
        query = ("for $m in db2-fn:xmlcolumn('ORDERS.ORDDOC')//multi "
                 "where between($m/price, 100, 200) return $m")
        result = between_db.xquery(query)
        assert result.stats.index_scans == 1
        baseline = between_db.xquery(query, use_indexes=False)
        assert result.serialize() == baseline.serialize()

    def test_plan_note_mentions_collapse(self, between_db):
        result = between_db.xquery(
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//multi[between(price, 100, 200)]")
        assert any("single range scan" in note
                   for note in result.stats.plan_notes)
