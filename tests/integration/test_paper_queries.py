"""Integration tests: every numbered query of the paper (1–30).

Each test runs the paper's query text (modulo whitespace) against the
paper's 3-table schema, and asserts three things where applicable:

1. **semantics** — the result the paper describes (cardinalities, empty
   sequences, runtime errors);
2. **eligibility** — whether the index the paper names is used;
3. **Definition 1** — index-assisted and full-scan executions agree.

Fixture documents (see conftest): doc 3 and doc 7 are the only orders
with a lineitem price > 100 (150 and 120 respectively); doc 5 has the
§3.10 multi-price 250/50 hazard; doc 4 has the "20 USD" string price;
doc 6 has the §3.8 mixed-content price.
"""

import pytest

from repro.errors import SQLCastError, XQueryDynamicError
from tests.conftest import assert_same_results

XMLCOL = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"


class TestSection22IndexEligibility:
    def test_query1_uses_li_price(self, indexed_db):
        query = (f"for $i in {XMLCOL}"
                 "//order[lineitem/@price>100] return $i")
        result = indexed_db.xquery(query)
        assert len(result) == 1          # only doc 3 (attr price 150)
        assert result.stats.indexes_used == ["li_price"]
        assert result.stats.docs_scanned == 1  # prefiltered
        assert_same_results(indexed_db, query)

    def test_query1_index_applies_full_path_predicate(self, indexed_db):
        # The 99.50 doc is filtered by the index scan itself.
        query = (f"for $i in {XMLCOL}"
                 "//order[lineitem/@price>100] return $i")
        result = indexed_db.xquery(query)
        assert result.stats.index_entries_scanned <= 2

    def test_query2_wildcard_cannot_use_index(self, indexed_db):
        query = (f"for $i in {XMLCOL}"
                 "//order[lineitem/@*>100] return $i")
        result = indexed_db.xquery(query)
        assert result.stats.indexes_used == []
        assert result.stats.docs_scanned == 7  # full scan
        # quantity=2 on doc 3 doesn't qualify; price 150 does.
        assert len(result) == 1
        assert_same_results(indexed_db, query)


class TestSection31Types:
    def test_query3_string_predicate_skips_double_index(self, indexed_db):
        query = (f"for $i in {XMLCOL}"
                 '//order[lineitem/@price > "100" ] return $i')
        result = indexed_db.xquery(query)
        assert result.stats.indexes_used == []
        # String comparison: "99.50" > "100" true, "150" > "100" true,
        # "20 USD" > "100" true, "90" > "100" true → docs 2, 3, 4.
        assert len(result) == 3
        assert_same_results(indexed_db, query)

    def test_query3_matches_varchar_index(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX li_price_str ON orders(orddoc) "
            "USING XMLPATTERN '//lineitem/@price' AS VARCHAR")
        query = (f"for $i in {XMLCOL}"
                 '//order[lineitem/@price > "100" ] return $i')
        result = indexed_db.xquery(query)
        assert result.stats.indexes_used == ["li_price_str"]
        assert len(result) == 3
        assert_same_results(indexed_db, query)

    def test_query4_casted_join_uses_both_indexes(self, indexed_db):
        query = (
            'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
            'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
            "where $i/custid/xs:double(.) = $j/id/xs:double(.) "
            "return $i")
        result = indexed_db.xquery(query)
        # 5 orders have custid (1001, 1002, 1001, 1002... docs 3,4,5,6,7)
        assert len(result) == 5
        assert_same_results(indexed_db, query)
        from repro.core import analyze_eligibility
        report = analyze_eligibility(indexed_db, query)
        assert report.is_index_eligible("o_custid")
        assert report.is_index_eligible("c_custid")

    def test_query4_join_without_casts_no_index(self, indexed_db):
        query = (
            'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
            'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
            "where $i/custid = $j/id return $i")
        from repro.core import analyze_eligibility
        report = analyze_eligibility(indexed_db, query)
        assert report.eligible_indexes == []


class TestSection32SQLXMLFunctions:
    def test_query5_select_list_returns_all_rows(self, indexed_db):
        result = indexed_db.sql(
            "SELECT XMLQuery('$order//lineitem[@price > 100]' "
            'passing orddoc as "order") FROM orders')
        assert len(result) == 7           # one row per order
        rendered = [row[0] for row in result.serialize_rows()]
        assert rendered.count("") == 6    # six orders yield empty
        assert result.stats.indexes_used == []

    def test_query6_single_row_with_index(self, indexed_db):
        result = indexed_db.sql(
            "VALUES (XMLQuery('db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")"
            "//lineitem[@price > 100] '))")
        assert len(result) == 1
        assert result.stats.indexes_used == ["li_price"]
        rendered = result.serialize_rows()[0][0]
        assert 'price="150"' in rendered

    def test_query7_standalone_row_per_lineitem(self, indexed_db):
        result = indexed_db.xquery(
            f"{XMLCOL}// lineitem[@price > 100]".replace("// ", "//"))
        assert len(result) == 1           # one qualifying attr lineitem
        assert result.stats.indexes_used == ["li_price"]

    def test_query8_xmlexists_filters(self, indexed_db):
        result = indexed_db.sql(
            "SELECT ordid, orddoc FROM orders WHERE "
            "XMLExists('$order//lineitem[@price > 100]' "
            'passing orddoc as "order")')
        assert [row[0] for row in result.rows] == [3]
        assert result.stats.indexes_used == ["li_price"]
        assert result.columns == ["ordid", "orddoc"]

    def test_query9_boolean_body_returns_everything(self, indexed_db):
        result = indexed_db.sql(
            "SELECT ordid, orddoc FROM orders WHERE "
            "XMLExists('$order//lineitem/@price > 100' "
            'passing orddoc as "order")')
        assert len(result) == 7           # the pitfall: all rows!
        assert result.stats.indexes_used == []

    def test_query10_combined_query_exists(self, indexed_db):
        result = indexed_db.sql(
            "SELECT ordid, XMLQuery('$order//lineitem[@price > 100]' "
            'passing orddoc as "order") FROM orders WHERE '
            "XMLExists('$order//lineitem[@price > 100]' "
            'passing orddoc as "order")')
        assert len(result) == 1
        assert result.rows[0][0] == 3
        assert result.stats.indexes_used == ["li_price"]

    def test_query11_xmltable_row_per_lineitem(self, indexed_db):
        result = indexed_db.sql(
            "SELECT o.ordid, t.lineitem FROM orders o, "
            "XMLTable('$order//lineitem[@price > 100]' "
            'passing o.orddoc as "order" '
            "COLUMNS \"lineitem\" XML BY REF PATH '.') as t(lineitem)")
        assert len(result) == 1
        assert result.rows[0][0] == 3
        assert result.stats.indexes_used == ["li_price"]

    def test_query11_by_ref_preserves_identity(self, indexed_db):
        result = indexed_db.sql(
            "SELECT t.lineitem FROM orders o, "
            "XMLTable('$order//lineitem[@price > 100]' "
            'passing o.orddoc as "order" '
            "COLUMNS \"lineitem\" XML BY REF PATH '.') as t(lineitem)")
        node = result.rows[0][0].items[0]
        assert node.parent is not None    # still linked to the stored doc

    def test_query12_column_predicate_yields_nulls(self, indexed_db):
        result = indexed_db.sql(
            "SELECT o.ordid, t.lineitem, t.price FROM orders o, "
            "XMLTable('$order//lineitem' passing o.orddoc as \"order\" "
            "COLUMNS \"lineitem\" XML BY REF PATH '.', "
            "\"price\" DECIMAL(6,3) PATH '@price[. > 100]') "
            "as t(lineitem, price)")
        # one row per lineitem regardless of price (8 lineitems total)
        assert len(result) == 8
        prices = [row[2] for row in result.rows]
        assert prices.count(None) == 7    # only the 150 qualifies
        assert result.stats.indexes_used == []


class TestSection33Joins:
    def test_query13_xquery_join_uses_xml_index(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX li_prod_id ON orders(orddoc) "
            "USING XMLPATTERN '//lineitem/product/id' AS VARCHAR")
        result = indexed_db.sql(
            "SELECT p.name, XMLQuery('$order//lineitem' "
            'passing orddoc as "order") '
            "FROM products p, orders o "
            "WHERE XMLExists('$order//lineitem/product[id eq $pid]' "
            'passing o.orddoc as "order", p.id as "pid")')
        # id 17 appears in docs 3 and 7; 18, 19, 20, 21 once each.
        assert len(result) == 6
        assert result.stats.indexes_used == ["li_prod_id"]

    def test_query14_sql_join_uses_relational_index(self, indexed_db):
        indexed_db.create_relational_index("prod_id_rel", "products", "id")
        # Restrict to single-lineitem orders to avoid the XMLCAST error.
        result = indexed_db.sql(
            "SELECT p.name FROM products p, orders o "
            "WHERE ordid = 4 AND p.id = XMLCast(XMLQuery("
            "'$order//lineitem/product/id' passing o.orddoc as \"order\") "
            "as VARCHAR(13))")
        assert len(result) == 1
        assert "prod_id_rel" in result.stats.indexes_used

    def test_query14_multi_id_raises_type_error(self, indexed_db):
        with pytest.raises(SQLCastError):
            indexed_db.sql(
                "SELECT p.name FROM products p, orders o "
                "WHERE ordid = 3 AND p.id = XMLCast(XMLQuery("
                "'$order//lineitem/product/id' "
                "passing o.orddoc as \"order\") as VARCHAR(13))")

    def test_query14_length_overflow_raises(self, indexed_db):
        indexed_db.insert("orders", {
            "ordid": 99,
            "orddoc": "<order><lineitem><product>"
                      "<id>longer-than-thirteen</id>"
                      "</product></lineitem></order>"})
        with pytest.raises(SQLCastError):
            indexed_db.sql(
                "SELECT p.name FROM products p, orders o "
                "WHERE ordid = 99 AND p.id = XMLCast(XMLQuery("
                "'$order//lineitem/product/id' "
                "passing o.orddoc as \"order\") as VARCHAR(13))")

    def test_query13_vs_14_comparison_semantics(self, indexed_db):
        # Trailing blanks: significant in XQuery, ignored in SQL.
        indexed_db.insert("orders", {
            "ordid": 90,
            "orddoc": "<order><lineitem><product><id>17 </id>"
                      "</product></lineitem></order>"})
        xquery_join = indexed_db.sql(
            "SELECT p.name FROM products p, orders o WHERE ordid = 90 "
            "AND XMLExists('$order//lineitem/product[id eq $pid]' "
            'passing o.orddoc as "order", p.id as "pid")')
        assert len(xquery_join) == 0      # '17 ' ne '17' in XQuery
        sql_join = indexed_db.sql(
            "SELECT p.name FROM products p, orders o WHERE ordid = 90 "
            "AND p.id = XMLCast(XMLQuery('$order//lineitem/product/id' "
            "passing o.orddoc as \"order\") as VARCHAR(13))")
        assert len(sql_join) == 1         # '17 ' = '17' in SQL

    def test_query15_sql_comparison_no_index(self, indexed_db):
        result = indexed_db.sql(
            "SELECT c.cid, XMLQuery('$order//lineitem' "
            'passing o.orddoc as "order") '
            "FROM orders o, customer c, "
            "WHERE XMLCast(XMLQuery('$order/order/custid' "
            'passing o.orddoc as "order") as DOUBLE) = '
            "XMLCast(XMLQuery('$cust/customer/id' "
            'passing c.cdoc as "cust") as DOUBLE)')
        assert len(result) == 5
        assert result.stats.indexes_used == []

    def test_query16_xmlexists_join_uses_o_custid(self, indexed_db):
        result = indexed_db.sql(
            "SELECT c.cid, XMLQuery('$order//lineitem' "
            'passing o.orddoc as "order") '
            "FROM customer c, orders o "
            "WHERE XMLExists('$order/order[custid/xs:double(.) = "
            "$cust/customer/id/xs:double(.)]' "
            'passing o.orddoc as "order", c.cdoc as "cust")')
        assert len(result) == 5
        assert result.stats.indexes_used == ["o_custid"]

    def test_query15_16_same_answers(self, indexed_db):
        q15 = indexed_db.sql(
            "SELECT c.cid FROM orders o, customer c, "
            "WHERE XMLCast(XMLQuery('$order/order/custid' "
            'passing o.orddoc as "order") as DOUBLE) = '
            "XMLCast(XMLQuery('$cust/customer/id' "
            'passing c.cdoc as "cust") as DOUBLE) ORDER BY c.cid')
        q16 = indexed_db.sql(
            "SELECT c.cid FROM customer c, orders o "
            "WHERE XMLExists('$order/order[custid/xs:double(.) = "
            "$cust/customer/id/xs:double(.)]' "
            'passing o.orddoc as "order", c.cdoc as "cust") '
            "ORDER BY c.cid")
        assert sorted(q15.rows) == sorted(q16.rows)


class TestSection34LetClauses:
    def test_query17_for_uses_index(self, indexed_db):
        query = (f"for $doc in {XMLCOL} "
                 "for $item in $doc//lineitem[@price > 100] "
                 "return <result>{$item}</result>")
        result = indexed_db.xquery(query)
        assert len(result) == 1           # one result per lineitem
        assert result.stats.indexes_used == ["li_price"]
        assert_same_results(indexed_db, query)

    def test_query18_let_no_index_and_more_rows(self, indexed_db):
        query = (f"for $doc in {XMLCOL} "
                 "let $item:= $doc//lineitem[@price > 100] "
                 "return <result>{$item}</result>")
        result = indexed_db.xquery(query)
        assert len(result) == 7           # one result per document!
        assert result.stats.indexes_used == []
        empties = [text for text in result.serialize()
                   if text == "<result/>"]
        assert len(empties) == 6
        assert_same_results(indexed_db, query)

    def test_query19_constructor_outer_join(self, indexed_db):
        query = (f"for $ord in {XMLCOL}/order "
                 "return <result>{$ord/lineitem[@price > 100]}</result>")
        result = indexed_db.xquery(query)
        assert len(result) == 7
        assert result.stats.indexes_used == []
        assert_same_results(indexed_db, query)

    def test_query20_21_equivalent_and_indexed(self, indexed_db):
        q20 = (f"for $ord in {XMLCOL}/order "
               "where $ord/lineitem/@price > 100 "
               "return <result>{$ord/lineitem}</result>")
        q21 = (f"for $ord in {XMLCOL}/order "
               "let $price := $ord/lineitem/@price "
               "where $price > 100 "
               "return <result>{$ord/lineitem}</result>")
        r20 = indexed_db.xquery(q20)
        r21 = indexed_db.xquery(q21)
        assert r20.serialize() == r21.serialize()
        assert len(r20) == 1
        assert r20.stats.indexes_used == ["li_price"]
        assert r21.stats.indexes_used == ["li_price"]
        assert_same_results(indexed_db, q20)
        assert_same_results(indexed_db, q21)

    def test_query22_bindout_uses_index(self, indexed_db):
        query = (f"for $ord in {XMLCOL}/order "
                 "return $ord/lineitem[@price > 100]")
        result = indexed_db.xquery(query)
        assert len(result) == 1           # empties vanish at bind-out
        assert result.stats.indexes_used == ["li_price"]
        assert_same_results(indexed_db, query)


class TestSection35DocumentNodes:
    def test_query23_document_navigation(self, indexed_db):
        result = indexed_db.xquery(f"{XMLCOL}/order/lineitem")
        assert len(result) == 8           # all lineitems

    def test_query24_renamed_constructor_returns_empty(self, indexed_db):
        query = (f"for $ord in (for $o in {XMLCOL}/order "
                 "return <my_order>{$o/*}</my_order>) "
                 "return $ord/my_order")
        result = indexed_db.xquery(query)
        assert len(result) == 0           # navigates below my_order

    def test_query24_children_reachable(self, indexed_db):
        query = (f"for $ord in (for $o in {XMLCOL}/order "
                 "return <my_order>{$o/*}</my_order>) "
                 "return $ord/lineitem")
        result = indexed_db.xquery(query)
        assert len(result) == 8

    def test_query25_absolute_path_type_error(self, indexed_db):
        query = ("let $order := <neworder>{"
                 f"{XMLCOL}/order[custid > 1001]"
                 "}</neworder> return $order[//customer/name]")
        with pytest.raises(XQueryDynamicError) as error:
            indexed_db.xquery(query)
        assert "XPDY0050" in str(error.value)


class TestSection36Construction:
    VIEW = ("let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "/order/lineitem return <item>{ $i/@quantity, "
            "<pid>{ $i/product/id/data(.) }</pid> }</item> ")

    def test_query26_view_filter_runs(self, indexed_db):
        query = (self.VIEW +
                 "for $j in $view where $j/pid = '17' return $j")
        result = indexed_db.xquery(query)
        assert len(result) == 2           # docs 3 and 7 order id 17

    def test_query26_untyped_pid_comparable_to_string(self, indexed_db):
        # After construction the pid value is untypedAtomic: the string
        # comparison succeeds even though ids could be numeric.
        query = (self.VIEW +
                 "for $j in $view where $j/pid = '17' "
                 "return $j/pid/data(.)")
        values = indexed_db.xquery(query).items
        assert all(value.type_name == "xdt:untypedAtomic"
                   for value in values)

    def test_query26_multiple_ids_concatenate(self, indexed_db):
        indexed_db.insert("orders", {"ordid": 50, "orddoc":
            "<order><lineitem><product><id>p1</id><id>p2</id></product>"
            "</lineitem></order>"})
        query = (self.VIEW +
                 "for $j in $view where $j/pid = 'p1 p2' return $j")
        assert len(indexed_db.xquery(query)) == 1
        # The flattened form (Query 27) finds nothing for 'p1 p2'.
        flat = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                "/order/lineitem "
                "where $i/product/id/data(.) = 'p1 p2' return $i")
        assert len(indexed_db.xquery(flat)) == 0
        # And conversely for the individual id.
        query_p2 = (self.VIEW +
                    "for $j in $view where $j/pid = 'p2' return $j")
        assert len(indexed_db.xquery(query_p2)) == 0
        flat_p2 = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                   "/order/lineitem "
                   "where $i/product/id/data(.) = 'p2' return $i")
        assert len(indexed_db.xquery(flat_p2)) == 1

    def test_query26_duplicate_attribute_error(self, indexed_db):
        indexed_db.insert("orders", {"ordid": 51, "orddoc":
            "<order><lineitem><product price='1'/><product price='2'/>"
            "</lineitem></order>"})
        query = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "/order/lineitem[count(product/@price) > 1] "
                 "return <item>{$i/product/@price}</item>")
        with pytest.raises(XQueryDynamicError) as error:
            indexed_db.xquery(query)
        assert "XQDY0025" in str(error.value)

    def test_query26_except_preserves_view_nodes(self, indexed_db):
        # §3.6 item 5: $view/@quantity except base/@quantity is NOT
        # empty because the view copies have fresh identities.
        query = (self.VIEW +
                 "return count($view/@quantity except "
                 "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "/order/lineitem/@quantity)")
        result = indexed_db.xquery(query)
        assert result.items[0].value == 1  # the view's copy survives

    def test_query27_pushdown_form_uses_index(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX li_pid ON orders(orddoc) "
            "USING XMLPATTERN '//lineitem/product/id' AS VARCHAR")
        query = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "/order/lineitem "
                 "where $i/product/id = '17' "
                 "return $i/@price")
        result = indexed_db.xquery(query)
        assert result.stats.indexes_used == ["li_pid"]
        assert_same_results(indexed_db, query)


class TestSection37Namespaces:
    ORDER_NS = "http://ournamespaces.com/order"
    CUSTOMER_NS = "http://ournamespaces.com/customer"

    @pytest.fixture()
    def ns_db(self, db):
        db.create_table("orders", [("orddoc", "XML")])
        db.create_table("customer", [("cdoc", "XML")])
        db.insert("orders", {"orddoc":
            f'<order xmlns="{self.ORDER_NS}"><custid>1001</custid>'
            '<lineitem price="1500"/></order>'})
        db.insert("orders", {"orddoc":
            f'<order xmlns="{self.ORDER_NS}"><custid>1002</custid>'
            '<lineitem price="10"/></order>'})
        db.insert("customer", {"cdoc":
            f'<customer xmlns="{self.CUSTOMER_NS}"><id>1001</id>'
            "<nation>1</nation></customer>"})
        db.insert("customer", {"cdoc":
            f'<customer xmlns="{self.CUSTOMER_NS}"><id>1002</id>'
            "<nation>2</nation></customer>"})
        return db

    # The paper's Query 28, verbatim.  Note a subtlety in the paper's
    # own text: in `where $ord/custid = $cust/id`, the unprefixed `id`
    # resolves in the *order* default namespace, so the join arm is
    # empty under standard XQuery namespace resolution.  We test the
    # verbatim query for its eligibility behaviour, and a join-corrected
    # variant (with c:id) for end-to-end answers.
    QUERY28 = (
        'declare default element namespace '
        '"http://ournamespaces.com/order"; '
        'declare namespace c="http://ournamespaces.com/customer"; '
        'for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
        "/order[lineitem/@price > 1000] "
        'for $cust in db2-fn:xmlcolumn("CUSTOMER.CDOC")'
        "/c:customer[c:nation = 1] "
        "where $ord/custid = $cust/id return $ord")

    QUERY28_JOINABLE = QUERY28.replace("$cust/id", "$cust/c:id/data(.)")

    def test_query28_verbatim_join_arm_is_empty(self, ns_db):
        result = ns_db.xquery(self.QUERY28)
        assert len(result) == 0

    def test_query28_corrected_answers(self, ns_db):
        result = ns_db.xquery(self.QUERY28_JOINABLE)
        assert len(result) == 1

    def test_ns_less_indexes_ineligible(self, ns_db):
        ns_db.execute("CREATE INDEX li_price ON orders(orddoc) "
                      "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")
        ns_db.execute("CREATE INDEX c_nation ON customer(cdoc) "
                      "USING XMLPATTERN '//nation' AS DOUBLE")
        # Both definitions restrict element steps to the empty
        # namespace: they store nothing from this data and the analyzer
        # must not use them.
        assert len(ns_db.xml_indexes["li_price"]) == 0
        assert len(ns_db.xml_indexes["c_nation"]) == 0
        result = ns_db.xquery(self.QUERY28_JOINABLE)
        assert "c_nation" not in result.stats.indexes_used
        assert "li_price" not in result.stats.indexes_used
        assert len(result) == 1

    @pytest.mark.parametrize("ddl,name", [
        ("CREATE INDEX c_nation_ns1 ON customer(cdoc) USING XMLPATTERN "
         "'declare default element namespace "
         "\"http://ournamespaces.com/customer\"; //nation' AS double",
         "c_nation_ns1"),
        ("CREATE INDEX c_nation_ns2 ON customer(cdoc) USING XMLPATTERN "
         "'//*:nation' AS double", "c_nation_ns2"),
    ])
    def test_namespace_aware_nation_indexes_eligible(self, ns_db, ddl,
                                                     name):
        ns_db.execute(ddl)
        result = ns_db.xquery(self.QUERY28_JOINABLE)
        assert name in result.stats.indexes_used
        assert len(result) == 1

    def test_li_price_ns_attribute_wildcard_eligible(self, ns_db):
        ns_db.execute("CREATE INDEX li_price_ns ON orders(orddoc) "
                      "USING XMLPATTERN '//@price' AS DOUBLE")
        result = ns_db.xquery(self.QUERY28_JOINABLE)
        assert "li_price_ns" in result.stats.indexes_used
        assert len(result) == 1

    def test_paper_note_corrected_index_ddl(self, ns_db):
        # The paper's c_nation_ns1 uses the *order* namespace in its
        # declaration; matching the customer data requires the customer
        # namespace (we follow the paper's evident intent).
        ns_db.execute(
            "CREATE INDEX c_nation_paper ON customer(cdoc) "
            "USING XMLPATTERN 'declare default element namespace "
            "\"http://ournamespaces.com/order\"; //nation' AS double")
        result = ns_db.xquery(self.QUERY28)
        assert "c_nation_paper" not in result.stats.indexes_used


class TestSection38TextNodes:
    def test_query29_text_index_misalignment(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX price_text ON orders(orddoc) "
            "USING XMLPATTERN '//price' AS VARCHAR")
        query = ('for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
                 '/order[lineitem/price/text() = "99.50"] return $ord')
        result = indexed_db.xquery(query)
        # Doc 6 has text() "99.50" inside mixed content: it matches the
        # query but its element indexes as "99.50USD".
        assert len(result) == 1
        assert "price_text" not in result.stats.indexes_used
        assert_same_results(indexed_db, query)

    def test_aligned_text_index_eligible(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX price_text2 ON orders(orddoc) "
            "USING XMLPATTERN '//price/text()' AS VARCHAR")
        query = ('for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
                 '/order[lineitem/price/text() = "99.50"] return $ord')
        result = indexed_db.xquery(query)
        assert "price_text2" in result.stats.indexes_used
        assert len(result) == 1
        assert_same_results(indexed_db, query)


class TestSection39Attributes:
    def test_star_index_contains_no_attributes(self, db):
        db.create_table("t", [("d", "XML")])
        db.insert("t", {"d": "<a x='1'><b y='2'>3</b></a>"})
        star = db.create_xml_index("star", "t", "d", "//*", "VARCHAR")
        node = db.create_xml_index("nodes", "t", "d", "//node()",
                                   "VARCHAR")
        attrs = db.create_xml_index("attrs", "t", "d", "//@*", "VARCHAR")
        full = db.create_xml_index(
            "full_notation", "t", "d",
            "/descendant-or-self::node()/attribute::*", "VARCHAR")
        star_kinds = {entry.path[-1].kind
                      for _key, entry in star.tree.items()}
        node_kinds = {entry.path[-1].kind
                      for _key, entry in node.tree.items()}
        assert "attribute" not in star_kinds
        assert "attribute" not in node_kinds
        assert len(attrs) == 2
        assert len(full) == 2


class TestSection310Between:
    def test_query30_single_range_scan(self, indexed_db):
        query = (f"for $i in {XMLCOL}"
                 "//order[lineitem[@price>100 and @price<200]] return $i")
        result = indexed_db.xquery(query)
        assert len(result) == 1           # doc 3 (150); 120 is element
        assert result.stats.index_scans == 1   # collapsed to one scan
        assert result.stats.indexes_used == ["li_price"]
        assert_same_results(indexed_db, query)

    def test_existential_pair_two_scans(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX e_price ON orders(orddoc) "
            "USING XMLPATTERN '//lineitem/price' AS DOUBLE")
        query = (f"{XMLCOL}//lineitem[price > 100 and price < 200]")
        result = indexed_db.xquery(query)
        # Doc 5 (250/50) satisfies existentially; doc 7 (120) directly.
        assert len(result) == 2
        assert result.stats.index_scans == 2
        assert_same_results(indexed_db, query)

    def test_multi_price_semantics(self, indexed_db):
        # The 250/50 order satisfies the existential pair even though
        # no single price is between 100 and 200.
        existential = indexed_db.xquery(
            f"{XMLCOL}//lineitem[price > 100 and price < 200]",
            use_indexes=False)
        self_axis = indexed_db.xquery(
            f"{XMLCOL}//lineitem[price/data()[. > 100 and . < 200]]",
            use_indexes=False)
        assert len(existential) == 2
        assert len(self_axis) == 1        # only the true 120

    def test_self_axis_single_scan(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX e_price ON orders(orddoc) "
            "USING XMLPATTERN '//lineitem/price' AS DOUBLE")
        query = (f"{XMLCOL}//lineitem[price/data()"
                 "[. > 100 and . < 200]]")
        result = indexed_db.xquery(query)
        assert result.stats.index_scans == 1
        assert len(result) == 1
        assert_same_results(indexed_db, query)

    def test_value_comparison_single_scan(self, indexed_db):
        query = (f"{XMLCOL}//lineitem"
                 "[@price gt 100.0 and @price lt 200.0]")
        result = indexed_db.xquery(query)
        assert result.stats.index_scans == 1
        assert len(result) == 1
