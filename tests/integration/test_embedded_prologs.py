"""Embedded XQuery with prologs inside SQL/XML functions.

The paper's namespace discussion (§3.7) applies equally when the
XQuery is embedded in XMLQUERY/XMLEXISTS; embedded prologs (namespace
declarations, declared functions) must work there too.
"""

import pytest

from repro import Database

NS = "http://ournamespaces.com/order"


@pytest.fixture()
def ns_sql_db() -> Database:
    database = Database()
    database.create_table("orders", [("ordid", "INTEGER"),
                                     ("orddoc", "XML")])
    database.insert("orders", {
        "ordid": 1,
        "orddoc": f'<order xmlns="{NS}"><lineitem price="1500"/>'
                  "</order>"})
    database.insert("orders", {
        "ordid": 2,
        "orddoc": '<order><lineitem price="1500"/></order>'})
    return database


class TestEmbeddedPrologs:
    def test_default_namespace_in_xmlexists(self, ns_sql_db):
        result = ns_sql_db.sql(
            "SELECT ordid FROM orders WHERE XMLEXISTS('"
            f'declare default element namespace "{NS}"; '
            "$d/order[lineitem/@price > 1000]' PASSING orddoc AS \"d\")")
        assert [row[0] for row in result.rows] == [1]

    def test_no_namespace_matches_plain_doc(self, ns_sql_db):
        result = ns_sql_db.sql(
            "SELECT ordid FROM orders WHERE XMLEXISTS("
            "'$d/order[lineitem/@price > 1000]' PASSING orddoc "
            "AS \"d\")")
        assert [row[0] for row in result.rows] == [2]

    def test_wildcard_matches_both(self, ns_sql_db):
        result = ns_sql_db.sql(
            "SELECT ordid FROM orders WHERE XMLEXISTS("
            "'$d/*:order[*:lineitem/@price > 1000]' PASSING orddoc "
            "AS \"d\")")
        assert [row[0] for row in result.rows] == [1, 2]

    def test_declared_function_in_xmlquery(self, ns_sql_db):
        result = ns_sql_db.sql(
            "SELECT XMLCAST(XMLQUERY('"
            "declare function local:prices($d) "
            "{ count($d//*:lineitem/@price) }; "
            "local:prices($doc)' PASSING orddoc AS \"doc\") AS INTEGER) "
            "FROM orders WHERE ordid = 1")
        assert result.rows == [(1,)]

    def test_namespace_index_through_sql(self, ns_sql_db):
        ns_sql_db.execute(
            "CREATE INDEX li_ns ON orders(orddoc) USING XMLPATTERN "
            f"'declare default element namespace \"{NS}\"; "
            "//lineitem/@price' AS DOUBLE")
        result = ns_sql_db.sql(
            "SELECT ordid FROM orders WHERE XMLEXISTS('"
            f'declare default element namespace "{NS}"; '
            "$d/order[lineitem/@price > 1000]' PASSING orddoc AS \"d\")")
        assert [row[0] for row in result.rows] == [1]
        assert "li_ns" in result.stats.indexes_used

    def test_xmltable_with_prolog(self, ns_sql_db):
        result = ns_sql_db.sql(
            "SELECT t.price FROM orders o, XMLTABLE('"
            f'declare default element namespace "{NS}"; '
            "$d//lineitem' PASSING o.orddoc AS \"d\" "
            "COLUMNS price DOUBLE PATH '@price') AS t")
        assert result.rows == [(1500.0,)]
