"""Integration tests: the §3.6 view-flattening rewriter.

The transformation must preserve every one of the paper's five hazard
semantics — compensated comparisons keep the untypedAtomic /
concatenation behaviour, attribute flattening is restricted to
provably duplicate-free shapes, and identity-sensitive modules are
refused outright.
"""

import pytest

from repro import Database
from repro.core import rewrite_view_flattening
from repro.xquery.parser import parse_xquery

VIEW_PREFIX = (
    "let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
    "/order/lineitem return <item>{ $i/@quantity, "
    "<pid>{ $i/product/id/data(.) }</pid> }</item> ")

QUERY26 = VIEW_PREFIX + "for $j in $view where $j/pid = '17' return $j"


@pytest.fixture()
def view_db() -> Database:
    database = Database()
    database.create_table("orders", [("orddoc", "XML")])
    docs = [
        "<order><lineitem quantity='2'><product><id>17</id></product>"
        "</lineitem></order>",
        "<order><lineitem quantity='5'><product><id>18</id></product>"
        "</lineitem></order>",
        "<order><lineitem quantity='7'><product><id>p1</id><id>p2</id>"
        "</product></lineitem></order>",
    ]
    for doc in docs:
        database.insert("orders", {"orddoc": doc})
    database.execute("CREATE INDEX li_qty ON orders(orddoc) "
                     "USING XMLPATTERN '//lineitem/@quantity' AS DOUBLE")
    return database


class TestEquivalence:
    @pytest.mark.parametrize("literal,expected", [
        ("'17'", 1),
        ("'p1 p2'", 1),    # hazard 3: concatenation must still match
        ("'p2'", 0),       # ... and the single id must NOT
        ("'nope'", 0),
    ])
    def test_pid_comparisons_preserved(self, view_db, literal, expected):
        query = QUERY26.replace("'17'", literal)
        plain = view_db.xquery(query)
        rewritten = view_db.xquery(query, rewrite_views=True)
        assert len(plain) == expected
        assert plain.serialize() == rewritten.serialize()
        assert any("view flattened" in note
                   for note in rewritten.stats.plan_notes)

    def test_projection_forms(self, view_db):
        for suffix in ["return $j", "return $j/@quantity",
                       "return $j/pid"]:
            query = (VIEW_PREFIX +
                     f"for $j in $view where $j/pid = '17' {suffix}")
            plain = view_db.xquery(query)
            rewritten = view_db.xquery(query, rewrite_views=True)
            assert plain.serialize() == rewritten.serialize(), suffix

    def test_attribute_predicate(self, view_db):
        query = (VIEW_PREFIX +
                 "for $j in $view where $j/@quantity > 4 return $j")
        plain = view_db.xquery(query)
        rewritten = view_db.xquery(query, rewrite_views=True)
        assert plain.serialize() == rewritten.serialize()
        assert len(plain) == 2

    def test_conjunction(self, view_db):
        query = (VIEW_PREFIX + "for $j in $view "
                 "where $j/@quantity > 1 and $j/pid = '17' return $j")
        plain = view_db.xquery(query)
        rewritten = view_db.xquery(query, rewrite_views=True)
        assert plain.serialize() == rewritten.serialize()
        assert len(plain) == 1

    def test_no_where_clause(self, view_db):
        query = VIEW_PREFIX + "for $j in $view return $j/pid"
        plain = view_db.xquery(query)
        rewritten = view_db.xquery(query, rewrite_views=True)
        assert plain.serialize() == rewritten.serialize()


class TestIndexEnablement:
    def test_attribute_predicate_uses_base_index(self, view_db):
        query = (VIEW_PREFIX +
                 "for $j in $view where $j/@quantity > 4 return $j")
        plain = view_db.xquery(query)
        rewritten = view_db.xquery(query, rewrite_views=True)
        assert plain.stats.indexes_used == []
        assert rewritten.stats.indexes_used == ["li_qty"]
        assert rewritten.stats.docs_scanned < plain.stats.docs_scanned

    def test_compensated_comparison_stays_unindexed(self, view_db):
        # §3.6: "these extra conversions are an impediment to index
        # eligibility" — faithful even after flattening.
        view_db.execute("CREATE INDEX li_pid ON orders(orddoc) "
                        "USING XMLPATTERN '//lineitem/product/id' "
                        "AS VARCHAR")
        rewritten = view_db.xquery(QUERY26, rewrite_views=True)
        assert rewritten.stats.indexes_used == []


class TestRefusals:
    def test_identity_sensitive_module_refused(self, view_db):
        query = (VIEW_PREFIX +
                 "for $j in $view where $j/pid = '17' "
                 "return ($j except db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//lineitem)")
        rewritten = view_db.xquery(query, rewrite_views=True)
        plain = view_db.xquery(query)
        assert any("refused" in note and "hazard 5" in note
                   for note in rewritten.stats.plan_notes)
        assert rewritten.serialize() == plain.serialize()

    def test_deep_attribute_refused(self):
        # hazard 4: $i/product/@price may produce duplicate attributes.
        module = parse_xquery(
            "let $view := for $i in db2-fn:xmlcolumn('T.D')/a "
            "return <v>{ $i/b/@x }</v> "
            "for $j in $view where $j/@x = '1' return $j")
        result = rewrite_view_flattening(module)
        assert not result.applied
        assert any("hazard 4" in hazard for hazard in result.hazards)

    def test_unrelated_query_untouched(self):
        module = parse_xquery("for $x in (1,2,3) return $x")
        result = rewrite_view_flattening(module)
        assert not result.applied
        assert result.module is module

    def test_unknown_view_member_refused(self, view_db):
        query = (VIEW_PREFIX +
                 "for $j in $view where $j/nope = '1' return $j")
        rewritten = view_db.xquery(query, rewrite_views=True)
        plain = view_db.xquery(query)
        assert rewritten.serialize() == plain.serialize()
        assert any("refused" in note
                   for note in rewritten.stats.plan_notes)

    def test_complex_consumer_refused(self):
        module = parse_xquery(
            "let $view := for $i in db2-fn:xmlcolumn('T.D')/a "
            "return <v>{ $i/@x }</v> "
            "for $j in $view for $k in $view return ($j, $k)")
        result = rewrite_view_flattening(module)
        assert not result.applied
