"""EXPLAIN ANALYZE over the paper's queries (1–5).

For each query the operator tree must report per-operator actual
cardinality and wall time, the root actual cardinality must equal the
plain execution's result count, the trace JSON must validate against
its schema, and — where the planner produced estimates — those
estimates must respect the documented path-summary coverage bound
(``estimated_rows <= summary_cap_docs``, the number of documents with
at least one node on the probed path).
"""

import pytest

from repro.obs.trace import validate_trace

XMLCOL = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"

QUERY1 = f"for $i in {XMLCOL}//order[lineitem/@price>100] return $i"
QUERY2 = f"for $i in {XMLCOL}//order[lineitem/@*>100] return $i"
QUERY3 = f'for $i in {XMLCOL}//order[lineitem/@price > "100" ] return $i'
QUERY4 = ('for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
          'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
          "where $i/custid/xs:double(.) = $j/id/xs:double(.) "
          "return $i")
QUERY5 = ("SELECT XMLQuery('$order//lineitem[@price > 100]' "
          'passing orddoc as "order") FROM orders')


def _assert_operator_contract(analyzed):
    """Every operator reports a non-negative time; cardinality-bearing
    operators carry an actual count; the trace validates."""
    def walk(node):
        assert node.time_ms >= 0
        if node.actual_rows is not None:
            assert node.actual_rows >= 0
        for child in node.children:
            walk(child)
    walk(analyzed.root)
    assert validate_trace(analyzed.tracer.to_dict()) == []


def _assert_estimates_within_summary_bound(analyzed):
    for scan in analyzed.operators("index-scan"):
        cap = scan.attrs.get("summary_cap_docs")
        if cap is not None and scan.estimated_rows is not None:
            assert scan.estimated_rows <= cap
            assert scan.actual_rows <= cap


class TestQuery1Eligible:
    def test_actual_cardinalities(self, indexed_db):
        analyzed = indexed_db.explain_analyze(QUERY1)
        plain = indexed_db.xquery(QUERY1)
        assert len(analyzed) == len(plain) == 1
        assert analyzed.root.actual_rows == 1
        # The index probe reports its own actual: 1 surviving document.
        probes = analyzed.operators("index-probe")
        assert len(probes) == 1
        assert probes[0].actual_rows == 1
        scans = analyzed.operators("index-scan")
        assert len(scans) == 1
        assert scans[0].attrs["index"] == "li_price"
        assert scans[0].actual_rows == 1
        # Residual evaluation saw only the prefiltered document.
        residual = analyzed.operators("residual-eval")[0]
        assert residual.attrs["docs_scanned"] == 1
        assert residual.actual_rows == 1
        _assert_operator_contract(analyzed)

    def test_estimates_within_documented_bound(self, indexed_db):
        analyzed = indexed_db.explain_analyze(QUERY1)
        scans = analyzed.operators("index-scan")
        assert scans[0].estimated_rows is not None
        assert scans[0].q_error() is not None
        _assert_estimates_within_summary_bound(analyzed)

    def test_stage_sequence(self, indexed_db):
        analyzed = indexed_db.explain_analyze(QUERY1)
        names = [child.name for child in analyzed.root.children]
        assert names == ["parse", "static-analysis", "plan",
                         "index-probe", "residual-eval", "serialize"]


class TestQuery2IneligibleWildcard:
    def test_full_scan_visible(self, indexed_db):
        analyzed = indexed_db.explain_analyze(QUERY2)
        plain = indexed_db.xquery(QUERY2)
        assert len(analyzed) == len(plain) == 1
        assert analyzed.operators("index-probe") == []
        assert analyzed.operators("index-scan") == []
        residual = analyzed.operators("residual-eval")[0]
        assert residual.attrs["docs_scanned"] == 7   # the §3.1 cliff
        _assert_operator_contract(analyzed)


class TestQuery3StringPredicate:
    def test_double_index_ineligible(self, indexed_db):
        analyzed = indexed_db.explain_analyze(QUERY3)
        assert len(analyzed) == 3
        assert analyzed.root.actual_rows == 3
        assert analyzed.operators("index-scan") == []
        _assert_operator_contract(analyzed)

    def test_varchar_index_eligible(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX li_price_str ON orders(orddoc) "
            "USING XMLPATTERN '//lineitem/@price' AS VARCHAR")
        analyzed = indexed_db.explain_analyze(QUERY3)
        assert len(analyzed) == 3
        scans = analyzed.operators("index-scan")
        assert len(scans) == 1
        assert scans[0].attrs["index"] == "li_price_str"
        _assert_estimates_within_summary_bound(analyzed)
        _assert_operator_contract(analyzed)


class TestQuery4Join:
    def test_semi_join_probes_reported(self, indexed_db):
        analyzed = indexed_db.explain_analyze(QUERY4)
        plain = indexed_db.xquery(QUERY4)
        assert len(analyzed) == len(plain) == 5
        assert analyzed.root.actual_rows == 5
        # Both columns get a semi-join prefilter with actual doc counts.
        semi_joins = analyzed.operators("semi-join")
        assert len(semi_joins) == 2
        for operator in semi_joins:
            assert operator.actual_rows is not None
            assert operator.actual_rows >= 1
        assert "o_custid" in plain.stats.indexes_used
        assert "c_custid" in plain.stats.indexes_used
        _assert_operator_contract(analyzed)


class TestQuery5SQL:
    def test_per_row_xmlquery_rows(self, indexed_db):
        analyzed = indexed_db.explain_analyze(QUERY5)
        plain = indexed_db.sql(QUERY5)
        assert analyzed.language == "sql"
        assert len(analyzed) == len(plain) == 7
        assert analyzed.root.actual_rows == 7
        join = analyzed.operators("join-scan")[0]
        assert join.actual_rows == 7
        assert join.attrs["rows_scanned"] == 7
        project = analyzed.operators("project")[0]
        assert project.actual_rows == 7
        assert analyzed.operators("index-scan") == []  # select list only
        _assert_operator_contract(analyzed)


class TestUseIndexesFlag:
    def test_disabled_indexes_shows_cliff(self, indexed_db):
        fast = indexed_db.explain_analyze(QUERY1, use_indexes=True)
        slow = indexed_db.explain_analyze(QUERY1, use_indexes=False)
        assert len(fast) == len(slow) == 1
        fast_docs = fast.operators("residual-eval")[0].attrs["docs_scanned"]
        slow_docs = slow.operators("residual-eval")[0].attrs["docs_scanned"]
        assert fast_docs == 1
        assert slow_docs == 7


class TestToDict:
    def test_plan_and_trace_serializable(self, indexed_db):
        import json
        analyzed = indexed_db.explain_analyze(QUERY1)
        payload = analyzed.to_dict()
        encoded = json.dumps(payload, default=str)
        decoded = json.loads(encoded)
        assert decoded["plan"]["operator"] == "xquery"
        assert decoded["plan"]["actual_rows"] == 1
        assert validate_trace(decoded["trace"]) == []
