"""Buffer-pool transparency over the full paper workload.

The ISSUE 7 acceptance criterion: with the pool capped below the
total data size (forcing eviction churn on every access pattern), all
30 paper queries must be byte-identical to an uncapped database, and
``bufferpool.evictions`` must actually fire — proving the identical
answers came *through* the eviction/reload machinery, not around it.
"""

import pytest

from repro.durability import DurableDatabase
from repro.obs.metrics import METRICS, enabled_metrics
from repro.storage.catalog import Database
from repro.workload.paperqueries import (PAPER_QUERIES,
                                         load_paper_fixture,
                                         run_paper_query)

#: Far below the fixture's resident footprint: every document access
#: competes for the budget, so the LRU churns continuously.
TINY_BUDGET = 2_000


def oracle_answers() -> dict[int, str]:
    database = Database()
    load_paper_fixture(database)
    return {number: run_paper_query(database, number)
            for number in PAPER_QUERIES}


@pytest.fixture(scope="module")
def oracle():
    return oracle_answers()


class TestCappedPoolByteIdentity:
    def test_all_30_queries_identical_under_eviction_churn(self, oracle):
        with enabled_metrics():
            capped = Database(buffer_pool_bytes=TINY_BUDGET)
            load_paper_fixture(capped)
            answers = {number: run_paper_query(capped, number)
                       for number in PAPER_QUERIES}
            evictions = METRICS.counter("bufferpool.evictions")
        assert answers == oracle
        assert evictions > 0

    def test_repeated_runs_stay_identical(self, oracle):
        # Each pass re-materializes evicted documents; answers must
        # not drift run over run.
        capped = Database(buffer_pool_bytes=TINY_BUDGET)
        load_paper_fixture(capped)
        for _pass in range(2):
            for number in sorted(PAPER_QUERIES)[:10]:
                assert run_paper_query(capped, number) == oracle[number]

    def test_indexed_plans_survive_eviction(self, oracle):
        # Index probes hand back StoredDocuments whose trees may be
        # evicted; Q1 and Q2 are the index-eligible price queries.
        capped = Database(buffer_pool_bytes=TINY_BUDGET)
        load_paper_fixture(capped, with_indexes=True)
        assert run_paper_query(capped, 1) == oracle[1]
        assert run_paper_query(capped, 2) == oracle[2]


class TestSpillingDurableDatabase:
    def test_paper_queries_identical_with_spool(self, oracle, tmp_path):
        with enabled_metrics():
            with DurableDatabase(tmp_path / "db",
                                 buffer_pool_bytes=TINY_BUDGET) as database:
                load_paper_fixture(database)
                answers = {number: run_paper_query(database, number)
                           for number in PAPER_QUERIES}
                spills = METRICS.counter("bufferpool.spills")
                loads = METRICS.counter("bufferpool.loads")
                spool = tmp_path / "db" / "spool"
                assert spool.is_dir() and any(spool.iterdir())
        assert answers == oracle
        assert spills > 0
        assert loads > 0
        # close() clears the spool: the files are pure cache and
        # doc_ids restart per process, so none may outlive the pool.
        assert not any(spool.iterdir())

    def test_row_delete_removes_spill_files(self, tmp_path):
        with DurableDatabase(tmp_path / "db",
                             buffer_pool_bytes=TINY_BUDGET) as database:
            load_paper_fixture(database)
            spool = tmp_path / "db" / "spool"
            before = len(list(spool.glob("doc-*.cols")))
            assert before > 0
            deleted = database.delete_rows("orders", lambda values: True)
            assert deleted > 0
            after = len(list(spool.glob("doc-*.cols")))
            # Every spilled orders document's file went with its row.
            assert after < before

    def test_drop_table_removes_spill_files(self, tmp_path):
        with DurableDatabase(tmp_path / "db",
                             buffer_pool_bytes=TINY_BUDGET) as database:
            load_paper_fixture(database)
            spool = tmp_path / "db" / "spool"
            assert any(spool.glob("doc-*.cols"))
            for name in list(database.tables):
                database.drop_table(name)
            assert not any(spool.glob("doc-*.cols"))

    def test_open_purges_stale_spool_files(self, tmp_path):
        with DurableDatabase(tmp_path / "db",
                             buffer_pool_bytes=TINY_BUDGET) as database:
            load_paper_fixture(database)
            database.checkpoint()
        spool = tmp_path / "db" / "spool"
        # Model a crash: a stale file survives from a previous process
        # life.  doc_ids restart per process, so it could alias a
        # future document; open must purge it.
        spool.mkdir(exist_ok=True)
        (spool / "doc-1.cols").write_text("{}")
        with DurableDatabase(tmp_path / "db",
                             buffer_pool_bytes=TINY_BUDGET):
            assert not (spool / "doc-1.cols").exists()

    def test_recovery_ignores_spool_files(self, oracle, tmp_path):
        # Spool files are pure cache: a recovered database answers
        # from checkpoint + WAL alone, capped or not.
        with DurableDatabase(tmp_path / "db",
                             buffer_pool_bytes=TINY_BUDGET) as database:
            load_paper_fixture(database)
            database.checkpoint()
        with DurableDatabase(tmp_path / "db",
                             buffer_pool_bytes=TINY_BUDGET) as recovered:
            for number in sorted(PAPER_QUERIES)[:10]:
                assert run_paper_query(recovered, number) == oracle[number]
