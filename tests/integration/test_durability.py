"""Integration tests: WAL + checkpoint + recovery through the engine.

Every test opens a :class:`DurableDatabase` on a temp directory, does
real work through the public ``Database`` API, and checks that closing
and reopening the directory reproduces the exact same query answers —
the whole point of the subsystem.
"""

import datetime
import decimal
import io

import pytest

from repro import cli
from repro.durability import (CHECKPOINT_NAME, WAL_NAME, CrashError,
                              DurableDatabase, FaultInjector)
from repro.durability.wal import scan_wal
from repro.schema.schema import Schema
from repro.workload.paperqueries import (PAPER_QUERIES,
                                         load_paper_fixture,
                                         run_paper_query)


def reopen(directory, **kwargs) -> DurableDatabase:
    return DurableDatabase(str(directory), **kwargs)


def all_answers(database) -> dict[int, str]:
    return {number: run_paper_query(database, number)
            for number in PAPER_QUERIES}


def test_reopen_recovers_tables_rows_and_indexes(tmp_path):
    with reopen(tmp_path) as database:
        load_paper_fixture(database)
        expected = all_answers(database)
    with reopen(tmp_path) as database:
        assert database.last_recovery.checkpoint_lsn == 0
        assert database.last_recovery.replayed > 0
        assert all_answers(database) == expected
        # The recovered index must actually serve queries (Query 1 is
        # the paper's running li_price example).
        result = database.xquery(PAPER_QUERIES[1][1])
        assert "li_price" in result.stats.indexes_used


def test_checkpoint_truncates_wal_and_replays_nothing(tmp_path):
    with reopen(tmp_path) as database:
        load_paper_fixture(database)
        expected = all_answers(database)
        info = database.checkpoint()
        assert info.rows == 15
    assert scan_wal(str(tmp_path / WAL_NAME)).records == []
    assert (tmp_path / CHECKPOINT_NAME).exists()
    with reopen(tmp_path) as database:
        recovery = database.last_recovery
        assert recovery.checkpoint_lsn == info.last_lsn
        assert recovery.replayed == 0
        assert all_answers(database) == expected


def test_work_after_checkpoint_lands_in_the_new_wal(tmp_path):
    with reopen(tmp_path) as database:
        load_paper_fixture(database)
        database.checkpoint()
        database.insert("products", {"id": "999", "name": "late part"})
    with reopen(tmp_path) as database:
        assert database.last_recovery.replayed == 1
        result = database.sql(
            "SELECT name FROM products WHERE id = '999'")
        assert result.rows[0] == ("late part",)


def test_double_recovery_is_a_no_op(tmp_path):
    with reopen(tmp_path) as database:
        load_paper_fixture(database)
        expected = all_answers(database)
    with reopen(tmp_path) as first:
        first_result = first.last_recovery
        assert all_answers(first) == expected
    with reopen(tmp_path) as second:
        # Recovery reads; it must not rewrite the log, so a second
        # recovery sees byte-for-byte the same work to do.
        assert second.last_recovery.replayed == first_result.replayed
        assert second.last_recovery.last_lsn == first_result.last_lsn
        assert second.last_recovery.truncated_bytes == 0
        assert all_answers(second) == expected


def test_scalar_types_round_trip_through_the_wal(tmp_path):
    row = {"n": 7, "price": decimal.Decimal("12.50"),
           "ratio": 0.25, "label": "a&b<c>",
           "day": datetime.date(2006, 9, 12),
           "at": datetime.datetime(2006, 9, 12, 10, 30, 0),
           "flag": True, "missing": None}
    columns = [("n", "INTEGER"), ("price", "DECIMAL(8,2)"),
               ("ratio", "DOUBLE"), ("label", "VARCHAR(32)"),
               ("day", "DATE"), ("at", "TIMESTAMP"),
               ("flag", "BOOLEAN"), ("missing", "VARCHAR(8)")]
    with reopen(tmp_path) as database:
        database.create_table("t", columns)
        database.insert("t", row)
        stored = dict(database.table("t").rows[0].values)
    with reopen(tmp_path) as database:
        recovered = dict(database.table("t").rows[0].values)
    assert recovered == stored
    assert isinstance(recovered["price"], decimal.Decimal)
    assert isinstance(recovered["day"], datetime.date)


def test_registered_schema_survives_recovery(tmp_path):
    schema = (Schema("orders-v1")
              .declare("custid", "xs:double")
              .declare("lineitem/@price", "xs:double"))
    with reopen(tmp_path) as database:
        database.create_table("orders", [("orddoc", "XML")])
        database.register_schema(schema)
        database.insert(
            "orders",
            {"orddoc": "<order><custid>1001</custid>"
                       "<lineitem price='99.50'/></order>"},
            schema="orders-v1")
    with reopen(tmp_path) as database:
        assert "orders-v1" in database.schemas
        document = database.table("orders").rows[0].values["orddoc"]
        custid = document.document.root_element.children[0]
        assert custid.typed_value()[0].value == 1001.0


def test_inline_schema_survives_a_checkpoint(tmp_path):
    inline = Schema("ad-hoc").declare("qty", "xs:double")
    with reopen(tmp_path) as database:
        database.create_table("t", [("doc", "XML")])
        database.insert("t", {"doc": "<item><qty>4</qty></item>"},
                        schema=inline)
        database.checkpoint()
    with reopen(tmp_path) as database:
        # Inline schemas are persisted for validation replay but are
        # not entered in the registered-schema catalog.
        assert "ad-hoc" not in database.schemas
        document = database.table("t").rows[0].values["doc"]
        qty = document.document.root_element.children[0]
        assert qty.typed_value()[0].value == 4.0


def test_delete_replays_by_position(tmp_path):
    with reopen(tmp_path) as database:
        database.create_table("t", [("k", "INTEGER"),
                                    ("v", "VARCHAR(8)")])
        for key in range(6):
            database.insert("t", {"k": key, "v": f"v{key}"})
        removed = database.delete_rows(
            "t", lambda values: values["k"] % 2 == 0)
        assert removed == 3
        survivors = [row.values["k"] for row in database.table("t").rows]
    with reopen(tmp_path) as database:
        assert [row.values["k"]
                for row in database.table("t").rows] == survivors


def test_ddl_drops_replay(tmp_path):
    with reopen(tmp_path) as database:
        load_paper_fixture(database)
        database.drop_index("o_custid")
        database.drop_table("products")
    with reopen(tmp_path) as database:
        assert "products" not in database.tables
        assert "o_custid" not in database.xml_indexes
        assert "li_price" in database.xml_indexes


def test_verify_checks_path_summaries(tmp_path):
    with reopen(tmp_path) as database:
        load_paper_fixture(database)
        database.checkpoint()
    with reopen(tmp_path, verify=True) as database:
        report = database.last_recovery.verify
        assert report is not None and report.ok
        assert report.documents_checked == 10  # 7 orders + 3 customers


def test_crash_before_checkpoint_rename_keeps_old_checkpoint(tmp_path):
    with reopen(tmp_path) as database:
        load_paper_fixture(database)
        database.checkpoint()
        expected = all_answers(database)
        database.insert("products", {"id": "999", "name": "late"})
        database.drop_index("li_price")
    crashing = reopen(tmp_path,
                      faults=FaultInjector("checkpoint.before_rename"))
    try:
        with pytest.raises(CrashError):
            crashing.checkpoint()
    finally:
        crashing.close()
    with reopen(tmp_path) as database:
        # The old checkpoint plus the WAL tail still reconstructs
        # everything, including the post-checkpoint insert and drop.
        assert database.last_recovery.replayed == 2
        assert "li_price" not in database.xml_indexes
        result = database.sql(
            "SELECT name FROM products WHERE id = '999'")
        assert len(result.rows) == 1
        del expected[1]  # Query 1 plans differ without li_price ...
        answers = all_answers(database)
        del answers[1]
        assert answers == expected  # ... but all other answers match


def test_batch_fsync_policy_survives_clean_close(tmp_path):
    with reopen(tmp_path, fsync_policy="batch",
                group_size=512) as database:
        database.create_table("t", [("k", "INTEGER")])
        for key in range(20):
            database.insert("t", {"k": key})
    with reopen(tmp_path) as database:
        assert len(database.table("t").rows) == 20


def test_cli_answers_query1_with_zero_reingest(tmp_path):
    directory = str(tmp_path / "state")
    out = io.StringIO()
    assert cli.main(["ingest", "--data", directory], out=out) == 0
    out = io.StringIO()
    assert cli.main(["q1", "--data", directory], out=out) == 0
    lines = out.getvalue().splitlines()
    assert lines[0].startswith("<order><custid>1001</custid>")
    # replayed=0 proves the answer came from the checkpoint alone —
    # no WAL replay and no re-ingest of source XML.
    assert lines[-1].endswith("replayed=0")
    out = io.StringIO()
    assert cli.main(["recover", "--data", directory, "--verify"],
                    out=out) == 0
    assert "verify: 10 document summaries match" in out.getvalue()
