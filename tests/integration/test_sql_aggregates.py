"""Integration tests: SQL aggregates, GROUP BY, HAVING.

Not required by the paper, but needed by the order-analytics workloads
its introduction motivates: XMLTABLE shredding feeding relational
aggregation is the canonical SQL/XML reporting pattern.
"""

import pytest
from decimal import Decimal

from repro import Database
from repro.errors import SQLError


@pytest.fixture()
def sales_db() -> Database:
    database = Database()
    database.create_table("orders", [("ordid", "INTEGER"),
                                     ("region", "VARCHAR(10)"),
                                     ("orddoc", "XML")])
    rows = [
        (1, "east", "<order><lineitem price='100' quantity='1'/>"
                    "<lineitem price='50' quantity='2'/></order>"),
        (2, "east", "<order><lineitem price='200' quantity='1'/>"
                    "</order>"),
        (3, "west", "<order><lineitem price='10' quantity='5'/>"
                    "</order>"),
        (4, "west", None),
    ]
    for ordid, region, doc in rows:
        database.insert("orders", {"ordid": ordid, "region": region,
                                   "orddoc": doc})
    return database


class TestAggregates:
    def test_count_star(self, sales_db):
        result = sales_db.sql("SELECT COUNT(*) FROM orders")
        assert result.rows == [(4,)]

    def test_count_skips_nulls(self, sales_db):
        result = sales_db.sql(
            "SELECT COUNT(XMLCAST(XMLQUERY('($d//lineitem/@price)[1]' "
            "PASSING orddoc AS \"d\") AS DOUBLE)) FROM orders")
        assert result.rows == [(3,)]

    def test_min_max(self, sales_db):
        result = sales_db.sql("SELECT MIN(ordid), MAX(ordid) FROM orders")
        assert result.rows == [(1, 4)]

    def test_sum_avg_empty_group_is_null(self, sales_db):
        result = sales_db.sql(
            "SELECT SUM(ordid), COUNT(*) FROM orders WHERE ordid > 99")
        assert result.rows == [(None, 0)]

    def test_group_by_with_aliases(self, sales_db):
        result = sales_db.sql(
            "SELECT region, COUNT(*) AS n FROM orders "
            "GROUP BY region ORDER BY region")
        assert result.rows == [("east", 2), ("west", 2)]
        assert result.columns == ["region", "n"]

    def test_group_by_over_xmltable(self, sales_db):
        # The canonical SQL/XML reporting shape: shred, then aggregate.
        result = sales_db.sql(
            "SELECT o.region, SUM(t.price) FROM orders o, "
            "XMLTABLE('$d//lineitem' PASSING o.orddoc AS \"d\" "
            "COLUMNS price DOUBLE PATH '@price', "
            "qty DOUBLE PATH '@quantity') AS t "
            "GROUP BY o.region ORDER BY o.region")
        assert result.rows == [("east", 350.0), ("west", 10.0)]

    def test_having(self, sales_db):
        result = sales_db.sql(
            "SELECT region, COUNT(orddoc) FROM orders "
            "GROUP BY region HAVING COUNT(orddoc) > 1")
        assert result.rows == [("east", 2)]

    def test_distinct_aggregate(self, sales_db):
        result = sales_db.sql(
            "SELECT COUNT(DISTINCT region) FROM orders")
        assert result.rows == [(2,)]

    def test_avg(self, sales_db):
        result = sales_db.sql("SELECT AVG(ordid) FROM orders")
        assert result.rows[0][0] == 2.5

    def test_order_by_aggregate(self, sales_db):
        result = sales_db.sql(
            "SELECT region, MAX(ordid) FROM orders GROUP BY region "
            "ORDER BY MAX(ordid) DESC")
        assert result.rows == [("west", 4), ("east", 2)]

    def test_group_key_padding(self, sales_db):
        sales_db.insert("orders", {"ordid": 9, "region": "east  ",
                                   "orddoc": None})
        result = sales_db.sql(
            "SELECT region, COUNT(*) FROM orders GROUP BY region "
            "ORDER BY region")
        assert [row[1] for row in result.rows] == [3, 2]

    def test_xml_aggregate_rejected(self, sales_db):
        with pytest.raises(SQLError):
            sales_db.sql("SELECT MAX(orddoc) FROM orders")

    def test_group_by_xml_rejected(self, sales_db):
        with pytest.raises(SQLError):
            sales_db.sql("SELECT COUNT(*) FROM orders GROUP BY orddoc")

    def test_aggregate_with_where_and_index(self, sales_db):
        sales_db.execute(
            "CREATE INDEX li_price ON orders(orddoc) "
            "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")
        result = sales_db.sql(
            "SELECT COUNT(*) FROM orders WHERE XMLEXISTS("
            "'$d//lineitem[@price > 90]' PASSING orddoc AS \"d\")")
        assert result.rows == [(2,)]
        assert "li_price" in result.stats.indexes_used
