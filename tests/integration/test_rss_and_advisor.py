"""Integration tests: schema-flexible RSS workloads and the advisor."""

import pytest

from repro import Database
from repro.core import advise, advise_index_pattern
from repro.workload import WorkloadGenerator


@pytest.fixture()
def rss_db() -> Database:
    database = Database()
    database.create_table("feeds", [("fid", "INTEGER"),
                                    ("feed", "XML")])
    generator = WorkloadGenerator(seed=7)
    for feed_id in range(1, 21):
        database.insert("feeds", {"fid": feed_id,
                                  "feed": generator.rss_feed(feed_id)})
    return database


class TestRSSWorkload:
    """RSS allows elements of any namespace anywhere (§1): queries must
    cope with extension elements they did not anticipate."""

    def test_titles_query(self, rss_db):
        result = rss_db.xquery(
            "for $t in db2-fn:xmlcolumn('FEEDS.FEED')"
            "/rss/channel/item/title return $t/data(.)")
        assert len(result) == 100  # 20 feeds x 5 items

    def test_foreign_namespace_extensions_queryable(self, rss_db):
        result = rss_db.xquery(
            'declare namespace dc="http://purl.org/dc/elements/1.1/"; '
            "db2-fn:xmlcolumn('FEEDS.FEED')//item[dc:creator]")
        baseline = rss_db.xquery(
            "db2-fn:xmlcolumn('FEEDS.FEED')//item[*:creator]")
        assert len(result) == len(baseline)
        assert len(result) > 0

    def test_wildcard_namespace_index_covers_extensions(self, rss_db):
        rss_db.execute(
            "CREATE INDEX any_creator ON feeds(feed) "
            "USING XMLPATTERN '//*:creator' AS VARCHAR")
        index = rss_db.xml_indexes["any_creator"]
        assert len(index) > 0

    def test_date_index_on_pubdate(self, rss_db):
        rss_db.execute(
            "CREATE INDEX pubdate ON feeds(feed) "
            "USING XMLPATTERN '//item/pubDate' AS DATE")
        query = ("db2-fn:xmlcolumn('FEEDS.FEED')//item"
                 "[pubDate/xs:date(.) ge xs:date('2006-09-20')]")
        result = rss_db.xquery(query)
        baseline = rss_db.xquery(query, use_indexes=False)
        assert result.serialize() == baseline.serialize()
        assert "pubdate" in result.stats.indexes_used


class TestAdvisorIntegration:
    def test_tips_cover_the_pitfall_catalogue(self, indexed_db):
        scenarios = {
            1: 'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
               '//order[lineitem/@price > "100"] return $i',
            2: "SELECT XMLQuery('$o//lineitem[@price > 100]' "
               'passing orddoc as "o") FROM orders',
            3: "SELECT ordid FROM orders WHERE XMLExists("
               "'$o//lineitem/@price > 100' passing orddoc as \"o\")",
            4: "SELECT o.ordid, t.price FROM orders o, "
               "XMLTable('$d//lineitem' passing o.orddoc as \"d\" "
               "COLUMNS price DOUBLE PATH '@price[. > 100]') AS t",
            7: "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
               "return <r>{$o/lineitem[@price > 100]}</r>",
            8: "let $o := <n>{db2-fn:xmlcolumn('ORDERS.ORDDOC')/order}"
               "</n> return $o[//custid]",
        }
        for tip, query in scenarios.items():
            tips = {item.tip for item in advise(indexed_db, query)}
            assert tip in tips, f"expected Tip {tip} for {query!r}"

    def test_between_advice(self, indexed_db):
        advice = advise(
            indexed_db,
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//lineitem[price > 100 and price < 200]")
        assert any(item.section == "3.10" for item in advice)

    def test_clean_query_no_warnings(self, indexed_db):
        advice = advise(
            indexed_db,
            "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//order[lineitem/@price>100] return $i")
        assert [item for item in advice if item.severity == "warning"] \
            == []

    def test_index_pattern_lints(self):
        assert any(item.tip == 12
                   for item in advise_index_pattern("//node()"))
        assert any(item.tip == 10
                   for item in advise_index_pattern("//nation"))
        assert advise_index_pattern("//@*") == []

    def test_sql_join_advice(self, indexed_db):
        advice = advise(
            indexed_db,
            "SELECT c.cid FROM orders o, customer c, "
            "WHERE XMLCast(XMLQuery('$o/order/custid' passing o.orddoc "
            "as \"o\") as DOUBLE) = XMLCast(XMLQuery('$c/customer/id' "
            "passing c.cdoc as \"c\") as DOUBLE)")
        assert any(item.tip == 6 for item in advice)
