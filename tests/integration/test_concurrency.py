"""Concurrent serving layer: GIL-stress correctness tests.

Three independent guarantees are pinned here, all under
``sys.setswitchinterval(1e-6)`` so CPython preempts threads roughly
every bytecode:

1. ``execute_many`` with 8 workers returns results byte-identical to a
   serial loop over the paper's 30 numbered queries;
2. readers racing a DDL/ingest writer never observe a torn snapshot —
   every query sees a document set that was the committed state at
   *some* instant, never a mix;
3. the partition-parallel executor's answers equal serial answers, and
   its soundness gate refuses non-distributive queries.
"""

import sys
import threading

import pytest

from repro import Database
from repro.planner.plan import QueryResult

XMLCOL = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
CUSTCOL = "db2-fn:xmlcolumn('CUSTOMER.CDOC')"

#: The paper's 30 numbered queries (modulo the fixtures' table names),
#: one entry per query number.  Error-raising variants (the paper's
#: deliberate failure cases, e.g. Query 14's multi-id XMLCAST) are
#: represented by the closest non-raising form the conformance tests
#: run, so serial and batched execution can be compared structurally.
PAPER_QUERIES = [
    # 1 — the running example: eligible attribute-price predicate.
    f"for $i in {XMLCOL}//order[lineitem/@price>100] return $i",
    # 2 — wildcard attribute step (ineligible).
    f"for $i in {XMLCOL}//order[lineitem/@*>100] return $i",
    # 3 — string comparand vs DOUBLE index.
    f'for $i in {XMLCOL}//order[lineitem/@price > "100" ] return $i',
    # 4 — xs:double-casted XML join.
    'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
    'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
    "where $i/custid/xs:double(.) = $j/id/xs:double(.) return $i",
    # 5 — XMLQuery in the select list (row per order).
    "SELECT ordid, XMLQuery('$order//lineitem[@price > 100]' "
    'passing orddoc as "order") FROM orders',
    # 6 — single-row VALUES form.
    "VALUES (XMLQuery('db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")"
    "//lineitem[@price > 100] '))",
    # 7 — standalone row-per-lineitem XQuery.
    f"{XMLCOL}//lineitem[@price > 100]",
    # 8 — XMLEXISTS with node-sequence body (filters).
    "SELECT ordid, orddoc FROM orders WHERE "
    "XMLExists('$order//lineitem[@price > 100]' "
    'passing orddoc as "order")',
    # 9 — XMLEXISTS with boolean body (the everything pitfall).
    "SELECT ordid, orddoc FROM orders WHERE "
    "XMLExists('$order//lineitem/@price > 100' "
    'passing orddoc as "order")',
    # 10 — XMLQuery + XMLEXISTS combined.
    "SELECT ordid, XMLQuery('$order//lineitem[@price > 100]' "
    'passing orddoc as "order") FROM orders WHERE '
    "XMLExists('$order//lineitem[@price > 100]' "
    'passing orddoc as "order")',
    # 11 — XMLTABLE row-per-lineitem.
    "SELECT o.ordid, t.lineitem FROM orders o, "
    "XMLTable('$order//lineitem[@price > 100]' "
    'passing o.orddoc as "order" '
    "COLUMNS \"lineitem\" XML BY REF PATH '.') as t(lineitem)",
    # 12 — XMLTABLE with a column-level predicate (yields NULLs).
    "SELECT o.ordid, t.lineitem FROM orders o, "
    "XMLTable('$order' passing o.orddoc as \"order\" "
    "COLUMNS \"lineitem\" XML BY REF "
    "PATH './/lineitem[@price > 100]') as t(lineitem)",
    # 13 — XQuery-style join (XMLEXISTS with a passed SQL value).
    "SELECT p.name FROM products p, orders o "
    "WHERE XMLExists('$order//lineitem/product[id eq $pid]' "
    'passing o.orddoc as "order", p.id as "pid")',
    # 14 — SQL-style join via XMLCAST (single-lineitem order only).
    "SELECT p.name FROM products p, orders o "
    "WHERE ordid = 4 AND p.id = XMLCast(XMLQuery("
    "'$order//lineitem/product/id' passing o.orddoc as \"order\") "
    "as VARCHAR(13))",
    # 15 — relational comparison of a casted custid.
    "SELECT ordid FROM orders WHERE XMLCast(XMLQuery('$o//custid[1]' "
    "passing orddoc as \"o\") as DOUBLE) = 1001 AND ordid = 3",
    # 16 — the XMLEXISTS spelling of the same restriction.
    "SELECT ordid FROM orders WHERE "
    "XMLExists('$o//custid[. = 1001]' passing orddoc as \"o\")",
    # 17 — for-bound path predicate (index-eligible).
    f"for $doc in {XMLCOL} "
    "where $doc//lineitem/@price > 100 return $doc//product/id",
    # 18 — let-bound variant of 17.
    f"for $doc in {XMLCOL} "
    "let $p := $doc//lineitem/@price where $p > 100 "
    "return $doc//product/id",
    # 19 — constructor outer-join shape.
    f"for $ord in {XMLCOL}/order "
    "return <result>{{ $ord/custid }}</result>".replace("{{", "{")
    .replace("}}", "}"),
    # 20 — conditional constructor content.
    f"for $ord in {XMLCOL}/order "
    "return if ($ord/lineitem/@price > 100) then $ord else ()",
    # 21 — nested FLWOR as binding sequence.
    f"for $ord in (for $o in {XMLCOL}/order "
    "where $o/custid = 1001 return $o) "
    "return $ord/lineitem",
    # 22 — constructed document queried in place.
    "let $order := <neworder>{ "
    f"for $li in {XMLCOL}//lineitem[@price > 100] return $li "
    "}</neworder> return $order/lineitem/@price/data(.)",
    # 23/26 — the §3.6 constructed view, filtered.
    "let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
    "/order/lineitem return <item>{ $i/@quantity, "
    "<pid>{ $i/product/id/data(.) }</pid> }</item> "
    "for $j in $view where $j/pid = '17' return $j",
    # 24/27 — the flattened rewrite of the view.
    "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem "
    "where $i/product/id = '17' return $i",
    # 25 — absolute path from a column document.
    f"for $d in {XMLCOL} return $d/order/custid",
    # 26 — distinct customer names via a second column.
    f"for $c in {CUSTCOL}/customer return $c/name",
    # 27 — string-comparison join across columns.
    f"for $i in {XMLCOL}/order for $j in {CUSTCOL}/customer "
    "where $i/custid = $j/id return $j/name",
    # 28 — quantified predicate.
    f"for $o in {XMLCOL}/order "
    'where some $p in $o//@price satisfies $p = "150" return $o',
    # 29 — aggregation over the collection.
    f"count({XMLCOL}//lineitem)",
    # 30 — order by over a computed key.
    f"for $o in {XMLCOL}/order "
    "order by count($o//lineitem) descending, string($o/custid[1]) "
    "return <o>{ $o/custid }</o>",
]


def rendered(result) -> tuple:
    """A byte-comparable rendering of either result kind."""
    if isinstance(result, QueryResult):
        return ("xquery", result.serialized())
    return ("sql", tuple(result.columns),
            tuple(tuple(row) for row in result.serialize_rows()))


@pytest.fixture()
def fast_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


class TestExecuteManyMatchesSerial:
    def test_thirty_paper_queries_byte_identical(self, indexed_db,
                                                 fast_switching):
        assert len(PAPER_QUERIES) == 30
        serial = [rendered(indexed_db.execute_any(query))
                  for query in PAPER_QUERIES]
        batched = indexed_db.execute_many(PAPER_QUERIES, max_workers=8)
        assert [rendered(result) for result in batched] == serial

    def test_repeated_interleavings(self, indexed_db, fast_switching):
        # Shuffle-free repetition: thread scheduling differs run to
        # run; results must not.
        subset = PAPER_QUERIES[:8] * 3
        serial = [rendered(indexed_db.execute_any(query))
                  for query in subset]
        for _ in range(3):
            batched = indexed_db.execute_many(subset, max_workers=8)
            assert [rendered(result) for result in batched] == serial

    def test_single_worker_degrades_to_serial_loop(self, indexed_db):
        queries = PAPER_QUERIES[:3]
        serial = [rendered(indexed_db.execute_any(query))
                  for query in queries]
        batched = indexed_db.execute_many(queries, max_workers=1)
        assert [rendered(result) for result in batched] == serial


class TestNoTornSnapshots:
    ORDER = ("<order><custid>{cid}</custid>"
             "<lineitem price=\"150\"><product><id>x{cid}</id></product>"
             "</lineitem></order>")
    #: One query, two counts that are equal in every committed state.
    PAIRED = ("(count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//custid), "
              "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem))")

    def test_readers_never_see_partial_ingest(self, fast_switching):
        db = Database()
        db.create_table("orders", [("ordid", "INTEGER"),
                                   ("orddoc", "XML")])
        db.execute("CREATE INDEX li_price ON orders(orddoc) "
                   "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")
        for i in range(5):
            db.insert("orders", {"ordid": i,
                                 "orddoc": self.ORDER.format(cid=i)})

        stop = threading.Event()
        writer_error = []

        def writer():
            cid = 1000
            try:
                while not stop.is_set():
                    db.insert("orders",
                              {"ordid": cid,
                               "orddoc": self.ORDER.format(cid=cid)})
                    cid += 1
            except Exception as exc:  # surfaced by the main thread
                writer_error.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(15):
                for result in db.execute_many([self.PAIRED] * 8,
                                              max_workers=8):
                    custids, lineitems = [
                        int(item.value) for item in result.items]
                    # Every committed state has custids == lineitems;
                    # a torn read (row list mid-grow, index mid-update)
                    # would break the pairing.
                    assert custids == lineitems
        finally:
            stop.set()
            thread.join()
        assert not writer_error

    def test_snapshot_is_frozen_while_writer_proceeds(self,
                                                      fast_switching):
        db = Database()
        db.create_table("orders", [("ordid", "INTEGER"),
                                   ("orddoc", "XML")])
        for i in range(4):
            db.insert("orders", {"ordid": i,
                                 "orddoc": self.ORDER.format(cid=i)})
        snapshot = db.snapshot()
        before = snapshot.xquery(self.PAIRED).serialized()
        for i in range(4, 10):
            db.insert("orders", {"ordid": i,
                                 "orddoc": self.ORDER.format(cid=i)})
        assert snapshot.xquery(self.PAIRED).serialized() == before
        assert snapshot.version < db.version

    def test_snapshot_rejects_writes(self):
        from repro.errors import SQLError
        db = Database()
        db.create_table("orders", [("ordid", "INTEGER"),
                                   ("orddoc", "XML")])
        snapshot = db.snapshot()
        with pytest.raises(SQLError) as excinfo:
            snapshot.sql("INSERT INTO orders (ordid, orddoc) "
                         "VALUES (1, NULL)")
        assert excinfo.value.sqlstate == "25006"


class TestPartitionParallel:
    PARTITIONABLE = [
        f"for $i in {XMLCOL}//order[lineitem/@price>100] return $i",
        f"{XMLCOL}//lineitem[@price > 100]",
        f"for $o in {XMLCOL}/order where $o/custid = 1001 "
        "return $o/lineitem",
        f"for $d in {XMLCOL} return <r>{{ $d//product/id }}</r>"
        .replace("{{", "{").replace("}}", "}"),
        f"{XMLCOL}/order/custid",
    ]

    def test_parallel_matches_serial(self, indexed_db, fast_switching):
        for query in self.PARTITIONABLE:
            serial = indexed_db.xquery(query).serialized()
            for workers in (2, 4, 8):
                parallel = indexed_db.xquery_parallel(
                    query, max_workers=workers)
                assert parallel.serialized() == serial, query

    def test_parallel_preserves_prefilter_stats(self, indexed_db):
        query = f"for $i in {XMLCOL}//order[lineitem/@price>100] return $i"
        result = indexed_db.xquery_parallel(query, max_workers=4)
        assert result.stats.indexes_used == ["li_price"]
        assert result.stats.docs_scanned == 1  # prefiltered before fanout

    def test_gate_refuses_order_by(self, indexed_db):
        from repro.core.querycache import compile_query
        from repro.planner.parallel import partition_reference
        query = (f"for $o in {XMLCOL}/order "
                 "order by string($o/custid[1]) return $o")
        assert partition_reference(compile_query(query).module) is None
        # ... and the entry point still answers correctly via serial.
        assert (indexed_db.xquery_parallel(query, max_workers=4)
                .serialized() ==
                indexed_db.xquery(query).serialized())

    def test_gate_refuses_sqlquery_and_multi_column(self, indexed_db):
        from repro.core.querycache import compile_query
        from repro.planner.parallel import partition_reference
        nested_sql = ("for $c in db2-fn:sqlquery("
                      "\"SELECT cdoc FROM customer\")/customer "
                      "return $c/name")
        assert partition_reference(
            compile_query(nested_sql).module) is None
        two_columns = (f"for $i in {XMLCOL}/order "
                       f"for $j in {CUSTCOL}/customer "
                       "where $i/custid = $j/id return $j/name")
        assert partition_reference(
            compile_query(two_columns).module) is None
        global_filter = f"{XMLCOL}[3]"
        assert partition_reference(
            compile_query(global_filter).module) is None

    def test_gate_accepts_canonical_shapes(self):
        from repro.core.querycache import compile_query
        from repro.planner.parallel import partition_reference
        for query in self.PARTITIONABLE:
            assert partition_reference(
                compile_query(query).module) == "ORDERS.ORDDOC", query

    def test_parallel_while_writer_ingests(self, fast_switching):
        db = Database()
        db.create_table("orders", [("ordid", "INTEGER"),
                                   ("orddoc", "XML")])
        for i in range(12):
            db.insert("orders", {
                "ordid": i,
                "orddoc": TestNoTornSnapshots.ORDER.format(cid=i)})
        query = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
                 "where $o/lineitem/@price > 100 return $o/custid")
        stop = threading.Event()

        def writer():
            cid = 5000
            while not stop.is_set():
                db.insert("orders", {
                    "ordid": cid,
                    "orddoc": TestNoTornSnapshots.ORDER.format(cid=cid)})
                cid += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(10):
                result = db.xquery_parallel(query, max_workers=4)
                # Result counts grow monotonically with ingest but each
                # answer must be internally consistent: every custid
                # unique, sequence strictly ordered by insertion.
                values = [item.string_value() for item in result.items]
                assert values == sorted(set(values), key=values.index)
                assert len(values) == len(set(values))
        finally:
            stop.set()
            thread.join()
