"""Integration tests: DATE and TIMESTAMP index types (§2.1)."""

import pytest

from repro import Database


@pytest.fixture()
def temporal_db() -> Database:
    database = Database()
    database.create_table("orders", [("orddoc", "XML")])
    docs = [
        "<order><date>2006-01-15</date><ts>2006-01-15T08:00:00Z</ts>"
        "</order>",
        "<order><date>2006-06-30</date><ts>2006-06-30T23:59:59Z</ts>"
        "</order>",
        "<order><date>2006-09-12</date><ts>2006-09-12T12:00:00+02:00"
        "</ts></order>",
        # The §2.1 example: free-text dates skip tolerant typed indexes.
        "<order><date>January 1, 2001</date>"
        "<ts>sometime later</ts></order>",
    ]
    for doc in docs:
        database.insert("orders", {"orddoc": doc})
    database.execute("CREATE INDEX o_date ON orders(orddoc) "
                     "USING XMLPATTERN '//date' AS DATE")
    database.execute("CREATE INDEX o_ts ON orders(orddoc) "
                     "USING XMLPATTERN '//ts' AS TIMESTAMP")
    return database


class TestDateIndex:
    def test_tolerant_build(self, temporal_db):
        assert len(temporal_db.xml_indexes["o_date"]) == 3
        assert temporal_db.xml_indexes["o_date"].skipped_nodes == 1

    def test_range_query_uses_index(self, temporal_db):
        query = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "/order[date[. castable as xs:date]/xs:date(.) ge xs:date('2006-06-01')] "
                 "return $o")
        result = temporal_db.xquery(query)
        assert len(result) == 2
        assert result.stats.indexes_used == ["o_date"]
        baseline = temporal_db.xquery(query, use_indexes=False)
        assert result.serialize() == baseline.serialize()

    def test_equality_query(self, temporal_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "/order[date[. castable as xs:date]/xs:date(.) eq xs:date('2006-09-12')]")
        result = temporal_db.xquery(query)
        assert len(result) == 1
        assert result.stats.indexes_used == ["o_date"]

    def test_between_on_dates(self, temporal_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')/order"
                 "[date[. castable as xs:date]/xs:date(.) ge xs:date('2006-01-01') and "
                 "date[. castable as xs:date]/xs:date(.) le xs:date('2006-06-30')]")
        result = temporal_db.xquery(query)
        assert len(result) == 2
        baseline = temporal_db.xquery(query, use_indexes=False)
        assert result.serialize() == baseline.serialize()


class TestTimestampIndex:
    def test_timezone_normalization_in_queries(self, temporal_db):
        # 12:00+02:00 equals 10:00Z; the index must agree.
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')/order"
                 "[ts[. castable as xs:dateTime]/xs:dateTime(.) eq "
                 "xs:dateTime('2006-09-12T10:00:00Z')]")
        result = temporal_db.xquery(query, use_indexes=False)
        assert len(result) == 1

    def test_range_uses_index(self, temporal_db):
        query = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
                 "where $o/ts[. castable as xs:dateTime]/xs:dateTime(.) lt "
                 "xs:dateTime('2006-02-01T00:00:00Z') return $o")
        result = temporal_db.xquery(query)
        assert len(result) == 1
        assert result.stats.indexes_used == ["o_ts"]

    def test_mismatched_temporal_types_ineligible(self, temporal_db):
        # A DATE comparison cannot be served by the TIMESTAMP index.
        from repro.core import analyze_eligibility
        report = analyze_eligibility(
            temporal_db,
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "/order[ts[. castable as xs:date]/xs:date(.) eq xs:date('2006-09-12')]")
        assert not report.is_index_eligible("o_ts")

    def test_sql_timestamp_roundtrip(self, temporal_db):
        result = temporal_db.sql(
            "SELECT XMLCAST(XMLQUERY('($d//ts)[1]' PASSING orddoc AS "
            "\"d\") AS TIMESTAMP) FROM orders "
            "WHERE XMLEXISTS('$d/order[date[. castable as xs:date]/xs:date(.) eq "
            "xs:date(\"2006-01-15\")]' PASSING orddoc AS \"d\")")
        assert len(result) == 1
        assert result.rows[0][0].year == 2006
