"""Integration tests: SQL INSERT and DELETE statements."""

import pytest

from repro import Database
from repro.errors import SQLError


@pytest.fixture()
def dml_db() -> Database:
    database = Database()
    database.execute("CREATE TABLE orders (ordid INTEGER, orddoc XML)")
    database.execute("CREATE INDEX li_price ON orders(orddoc) "
                     "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")
    return database


class TestInsert:
    def test_insert_with_columns(self, dml_db):
        result = dml_db.execute(
            "INSERT INTO orders (ordid, orddoc) VALUES "
            "(1, '<order><lineitem price=\"150\"/></order>')")
        assert result.rows == [(1,)]
        assert len(dml_db.table("orders")) == 1

    def test_insert_multiple_rows(self, dml_db):
        dml_db.execute(
            "INSERT INTO orders (ordid, orddoc) VALUES "
            "(1, '<order><lineitem price=\"150\"/></order>'), "
            "(2, '<order><lineitem price=\"90\"/></order>')")
        assert len(dml_db.table("orders")) == 2

    def test_inserted_docs_are_indexed(self, dml_db):
        dml_db.execute(
            "INSERT INTO orders (ordid, orddoc) VALUES "
            "(1, '<order><lineitem price=\"150\"/></order>')")
        result = dml_db.xquery(
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 100]")
        assert len(result) == 1
        assert result.stats.indexes_used == ["li_price"]

    def test_insert_constructed_xml(self, dml_db):
        dml_db.execute(
            "INSERT INTO orders (ordid, orddoc) VALUES "
            "(5, XMLQUERY('<order><lineitem price=\"{200}\"/>"
            "</order>'))")
        result = dml_db.sql(
            "SELECT ordid FROM orders WHERE XMLEXISTS("
            "'$d//lineitem[@price = 200]' PASSING orddoc AS \"d\")")
        assert result.rows == [(5,)]

    def test_insert_null(self, dml_db):
        dml_db.execute("INSERT INTO orders (ordid, orddoc) VALUES "
                       "(7, NULL)")
        assert dml_db.documents("orders", "orddoc") == []

    def test_arity_mismatch(self, dml_db):
        with pytest.raises(SQLError):
            dml_db.execute("INSERT INTO orders (ordid, orddoc) "
                           "VALUES (1)")

    def test_implicit_column_order(self, dml_db):
        dml_db.execute("INSERT INTO orders VALUES (3, '<order/>')")
        result = dml_db.sql("SELECT ordid FROM orders")
        assert result.rows == [(3,)]


class TestDelete:
    def fill(self, database: Database) -> None:
        for ordid, price in [(1, 150), (2, 90), (3, 200)]:
            database.insert("orders", {
                "ordid": ordid,
                "orddoc": f"<order><lineitem price='{price}'/></order>"})

    def test_delete_all(self, dml_db):
        self.fill(dml_db)
        result = dml_db.execute("DELETE FROM orders")
        assert result.rows == [(3,)]
        assert len(dml_db.table("orders")) == 0
        assert len(dml_db.xml_indexes["li_price"]) == 0

    def test_delete_where_relational(self, dml_db):
        self.fill(dml_db)
        result = dml_db.execute("DELETE FROM orders WHERE ordid = 2")
        assert result.rows == [(1,)]
        remaining = dml_db.sql("SELECT ordid FROM orders ORDER BY ordid")
        assert [row[0] for row in remaining.rows] == [1, 3]

    def test_delete_where_xmlexists(self, dml_db):
        self.fill(dml_db)
        dml_db.execute(
            "DELETE FROM orders o WHERE XMLEXISTS("
            "'$d//lineitem[@price > 100]' PASSING o.orddoc AS \"d\")")
        remaining = dml_db.sql("SELECT ordid FROM orders")
        assert [row[0] for row in remaining.rows] == [2]

    def test_delete_maintains_index_consistency(self, dml_db):
        self.fill(dml_db)
        dml_db.execute("DELETE FROM orders WHERE ordid = 1")
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//lineitem[@price > 100]")
        fast = dml_db.xquery(query)
        slow = dml_db.xquery(query, use_indexes=False)
        assert fast.serialize() == slow.serialize()
        assert len(fast) == 1  # only the 200 remains

    def test_delete_nothing(self, dml_db):
        self.fill(dml_db)
        result = dml_db.execute("DELETE FROM orders WHERE ordid = 99")
        assert result.rows == [(0,)]
