"""Integration tests: index-assisted semi-joins for XQuery joins.

The paper's Query 4 claims casted join predicates make both double
indexes eligible; this engine *exploits* that with a semi-join
prefilter over both indexes (one linear pass each).
"""

import pytest

from repro import Database


@pytest.fixture()
def join_db() -> Database:
    database = Database()
    database.create_table("orders", [("orddoc", "XML")])
    database.create_table("customer", [("cdoc", "XML")])
    # Orders referencing customers 1..5; customers 3..8 exist.
    for custid in [1, 2, 3, 4, 5, 3, 4]:
        database.insert("orders", {
            "orddoc": f"<order><custid>{custid}</custid>"
                      f"<lineitem price='{custid * 10}'/></order>"})
    for cid in range(3, 9):
        database.insert("customer", {
            "cdoc": f"<customer><id>{cid}</id>"
                    f"<name>c{cid}</name></customer>"})
    database.create_xml_index("o_custid", "orders", "orddoc",
                              "//custid", "DOUBLE")
    database.create_xml_index("c_id", "customer", "cdoc",
                              "/customer/id", "DOUBLE")
    return database


QUERY4 = ('for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
          'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
          "where $i/custid/xs:double(.) = $j/id/xs:double(.) "
          "return $i")


class TestSemiJoin:
    def test_results_match_full_scan(self, join_db):
        fast = join_db.xquery(QUERY4)
        slow = join_db.xquery(QUERY4, use_indexes=False)
        assert fast.serialize() == slow.serialize()
        assert len(fast) == 5  # custids 3,4,5,3,4 have partners

    def test_both_indexes_used(self, join_db):
        result = join_db.xquery(QUERY4)
        assert set(result.stats.indexes_used) == {"o_custid", "c_id"}
        assert any("semi-join" in note
                   for note in result.stats.plan_notes)

    def test_docs_scanned_reduced(self, join_db):
        fast = join_db.xquery(QUERY4)
        slow = join_db.xquery(QUERY4, use_indexes=False)
        # survivors: 4 orders, 2 customers -> 4 + 4*2 = 12 materializations
        assert fast.stats.docs_scanned < slow.stats.docs_scanned

    def test_uncasted_join_not_semi_joined(self, join_db):
        query = QUERY4.replace("/xs:double(.)", "")
        result = join_db.xquery(query)
        assert result.stats.indexes_used == []
        slow = join_db.xquery(query, use_indexes=False)
        assert result.serialize() == slow.serialize()

    def test_mixed_index_types_not_paired(self, join_db):
        join_db.drop_index("c_id")
        join_db.create_xml_index("c_id_str", "customer", "cdoc",
                                 "/customer/id", "VARCHAR")
        result = join_db.xquery(QUERY4)
        assert result.stats.indexes_used == []  # DOUBLE vs VARCHAR
        slow = join_db.xquery(QUERY4, use_indexes=False)
        assert result.serialize() == slow.serialize()

    def test_join_with_extra_filter_composes(self, join_db):
        query = ('for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
                 "/order[lineitem/@price > 35] "
                 'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
                 "where $i/custid/xs:double(.) = $j/id/xs:double(.) "
                 "return $i")
        join_db.create_xml_index("li_price", "orders", "orddoc",
                                 "//lineitem/@price", "DOUBLE")
        fast = join_db.xquery(query)
        slow = join_db.xquery(query, use_indexes=False)
        assert fast.serialize() == slow.serialize()
        assert "li_price" in fast.stats.indexes_used
        assert "o_custid" in fast.stats.indexes_used

    def test_value_comparison_join(self, join_db):
        query = QUERY4.replace(" = ", " eq ")
        fast = join_db.xquery(query)
        slow = join_db.xquery(query, use_indexes=False)
        assert fast.serialize() == slow.serialize()
        assert "o_custid" in fast.stats.indexes_used

    def test_disjunctive_join_not_prefiltered(self, join_db):
        query = ('for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
                 'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
                 "where $i/custid/xs:double(.) = $j/id/xs:double(.) "
                 "or $i/custid = 1 return $i")
        fast = join_db.xquery(query)
        slow = join_db.xquery(query, use_indexes=False)
        assert fast.serialize() == slow.serialize()
