"""Integration tests for self-driving indexing.

Covers the ISSUE's acceptance criteria end to end: a cold database
converges to the manually-indexed oracle within two passes of the
paper workload; the online builder never blocks writers for the scan
phase and catches up with writes that land mid-build; EXPLAIN ANALYZE
calibration survives a durable restart; a crash before publish leaves
no index; and the CLI/server surfaces work.
"""

import io
import json
import threading

import pytest

from repro import Database
from repro.autopilot import AutoIndexPolicy
from repro.cli import main
from repro.durability import CrashError, DurableDatabase, FaultInjector
from repro.obs.metrics import METRICS, enabled_metrics
from repro.workload.paperqueries import (PAPER_QUERIES,
                                         load_paper_fixture,
                                         run_paper_query)

ALL_QUERIES = sorted(PAPER_QUERIES)


def run_all(database) -> dict[int, str]:
    return {number: run_paper_query(database, number)
            for number in ALL_QUERIES}


class TestConvergence:
    def test_cold_database_converges_in_two_passes(self):
        """Pass 1 profiles, autopilot builds, pass 2 matches the
        manually-indexed oracle byte-for-byte and actually probes."""
        cold = Database()
        load_paper_fixture(cold, with_indexes=False)
        oracle = Database()
        load_paper_fixture(oracle, with_indexes=True)

        pilot = cold.autopilot()
        run_all(cold)                       # pass 1: observe
        built = pilot.apply()
        assert built, "autopilot built nothing from the paper workload"

        with enabled_metrics():
            second_pass = run_all(cold)
            probes = METRICS.counter("index.probes")
        assert second_pass == run_all(oracle)
        assert probes > 0, "second pass never touched the new indexes"

    def test_second_pass_uses_auto_indexes_and_scans_less(self):
        cold = Database()
        load_paper_fixture(cold, with_indexes=False)
        pilot = cold.autopilot()
        query = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//order[lineitem/@price>100] return $i")
        before = cold.xquery(query)
        pilot.apply()
        after = cold.xquery(query)
        assert [str(i) for i in after.items] == \
            [str(i) for i in before.items]
        assert after.stats.indexes_used, "eligible query skipped index"
        assert after.stats.docs_scanned < before.stats.docs_scanned

    def test_apply_is_idempotent(self):
        cold = Database()
        load_paper_fixture(cold, with_indexes=False)
        pilot = cold.autopilot()
        run_all(cold)
        first = pilot.apply()
        assert first
        assert pilot.apply() == []   # everything is served now


class TestOnlineBuild:
    def _fixture(self):
        database = Database()
        load_paper_fixture(database, with_indexes=False)
        return database

    def test_online_build_equals_offline_build(self):
        online = self._fixture()
        offline = self._fixture()
        online.create_xml_index_online(
            "li_price", "orders", "orddoc", "//lineitem/@price",
            "DOUBLE")
        offline.create_xml_index(
            "li_price", "orders", "orddoc", "//lineitem/@price",
            "DOUBLE")
        assert run_all(online) == run_all(offline)
        assert len(online.xml_indexes["li_price"]) == \
            len(offline.xml_indexes["li_price"])

    def test_writers_proceed_during_scan_and_build_catches_up(self):
        """A writer that lands mid-scan must (a) not block and (b) be
        picked up by the catch-up phase, so the published index is
        complete."""
        database = self._fixture()
        new_doc = ("<order><custid>424242</custid>"
                   "<lineitem price=\"555\"/></order>")
        state = {"inserted": False}

        original_release = database.buffer_pool.release

        def insert_mid_scan(stored):
            if not state["inserted"]:
                state["inserted"] = True
                writer = threading.Thread(
                    target=lambda: database.insert(
                        "orders", {"ordid": 4242, "orddoc": new_doc}))
                writer.start()
                writer.join(timeout=10.0)
                # The builder holds no lock during the snapshot scan:
                # a blocked writer here means the online build regressed
                # to the offline exclusive-lock behaviour.
                assert not writer.is_alive(), \
                    "writer blocked during online-build scan phase"
            original_release(stored)

        database.buffer_pool.release = insert_mid_scan
        index = database.create_xml_index_online(
            "o_custid", "orders", "orddoc", "//custid", "DOUBLE")
        assert state["inserted"]

        result = database.xquery(
            "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//order[custid=424242] return $i")
        assert len(result.items) == 1
        assert index.name in result.stats.indexes_used

    def test_catchup_unindexes_rows_deleted_during_scan(self):
        database = self._fixture()
        state = {"deleted": False}
        original_release = database.buffer_pool.release

        def delete_mid_scan(stored):
            if not state["deleted"]:
                state["deleted"] = True
                worker = threading.Thread(
                    target=lambda: database.delete_rows(
                        "orders",
                        lambda values: values["ordid"] == 3))
                worker.start()
                worker.join(timeout=10.0)
                assert not worker.is_alive()
            original_release(stored)

        database.buffer_pool.release = delete_mid_scan
        database.create_xml_index_online(
            "o_custid", "orders", "orddoc", "//custid", "DOUBLE")
        oracle = self._fixture()
        oracle.delete_rows("orders",
                           lambda values: values["ordid"] == 3)
        oracle.create_xml_index(
            "o_custid", "orders", "orddoc", "//custid", "DOUBLE")
        assert run_all(database) == run_all(oracle)
        assert len(database.xml_indexes["o_custid"]) == \
            len(oracle.xml_indexes["o_custid"])

    def test_duplicate_name_rejected_before_and_after_scan(self):
        from repro.errors import CatalogError
        database = self._fixture()
        database.create_xml_index(
            "li_price", "orders", "orddoc", "//lineitem/@price",
            "DOUBLE")
        with pytest.raises(CatalogError):
            database.create_xml_index_online(
                "li_price", "orders", "orddoc", "//lineitem/@price",
                "DOUBLE")


class TestDurability:
    def test_online_build_survives_restart(self, tmp_path):
        with DurableDatabase(str(tmp_path)) as database:
            load_paper_fixture(database, with_indexes=False)
            database.create_xml_index_online(
                "li_price", "orders", "orddoc", "//lineitem/@price",
                "DOUBLE")
            live = run_all(database)
        with DurableDatabase(str(tmp_path)) as database:
            assert "li_price" in database.xml_indexes
            assert run_all(database) == live

    def test_crash_before_publish_leaves_no_index(self, tmp_path):
        faults = FaultInjector("index.build.before_publish")
        database = DurableDatabase(str(tmp_path), faults=faults)
        load_paper_fixture(database, with_indexes=False)
        with pytest.raises(CrashError):
            database.create_xml_index_online(
                "li_price", "orders", "orddoc", "//lineitem/@price",
                "DOUBLE")
        database._wal.abandon()

        oracle = Database()
        load_paper_fixture(oracle, with_indexes=False)
        with DurableDatabase(str(tmp_path)) as recovered:
            assert "li_price" not in recovered.xml_indexes
            assert run_all(recovered) == run_all(oracle)

    def test_calibration_persists_across_restart(self, tmp_path):
        with DurableDatabase(str(tmp_path)) as database:
            load_paper_fixture(database, with_indexes=True)
            database.explain_analyze(
                "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                "//order[lineitem/@price>100] return $i")
            samples = len(database.cost_calibration.samples)
            factor = database.cost_calibration.factor
            assert samples > 0, "no index-scan q-error was observed"
        assert (tmp_path / "calibration.json").is_file()
        with DurableDatabase(str(tmp_path)) as database:
            assert len(database.cost_calibration.samples) == samples
            assert database.cost_calibration.factor == \
                pytest.approx(factor)


class TestPolicyAndSurfaces:
    def test_auto_index_policy_builds_in_background(self):
        database = Database()
        load_paper_fixture(database, with_indexes=False)
        pilot = database.autopilot()
        for number in (1, 2, 11):
            run_paper_query(database, number)
        policy = AutoIndexPolicy(pilot, interval=0.01,
                                 max_builds_per_cycle=2)
        built = policy.run_once()
        assert built > 0
        assert pilot.applied

    def test_policy_thread_starts_and_stops(self):
        database = Database()
        load_paper_fixture(database, with_indexes=False)
        run_paper_query(database, 1)
        with AutoIndexPolicy(database.autopilot(),
                             interval=0.01) as policy:
            deadline = threading.Event()
            for _ in range(200):
                if policy.cycles:
                    break
                deadline.wait(0.02)
        assert policy.cycles > 0
        assert policy.errors == 0

    def test_cli_autopilot_paper_apply_json(self):
        out = io.StringIO()
        code = main(["autopilot", "--fixture", "--paper", "--apply",
                     "--calibrate", "--json"], out=out)
        assert code == 0
        report = json.loads(out.getvalue())
        assert report["profile"]["queries_observed"] >= 30
        assert report["applied"], "CLI applied no DDL"
        assert report["calibration"]["samples"] >= 0

    def test_cli_autopilot_advise_only_builds_nothing(self):
        out = io.StringIO()
        code = main(["autopilot", "--fixture", "--paper", "--advise"],
                    out=out)
        assert code == 0
        text = out.getvalue()
        assert "CREATE INDEX" in text
        assert "applied:" not in text

    def test_server_stats_include_autopilot(self):
        from repro.server import ServerClient, ServerThread
        database = Database()
        load_paper_fixture(database, with_indexes=False)
        database.autopilot()
        run_paper_query(database, 1)
        with ServerThread(database) as (host, port):
            with ServerClient(host, port) as client:
                stats = client.stats()
                # Sessions read from a pinned Snapshot; the snapshot
                # must still feed the live profiler or the autopilot
                # is blind to served workloads.
                client.query(
                    "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                    "//order[custid=1001] return $i")
                after = client.stats()
        assert "autopilot.queries_observed 1" in stats
        assert "autopilot.indexes_built 0" in stats
        assert "autopilot.queries_observed 2" in after
