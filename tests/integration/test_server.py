"""End-to-end tests for the network front door (``repro serve``).

The server's one load-bearing promise: a statement over the socket is
*byte-identical* to the same statement in process — all 30 paper
queries included.  Around that, the operational contract: sessions
(prolog, variables, pinned snapshots), prepared statements pinned in
the compiled-query cache, admission control that sheds instead of
hanging, per-query deadlines and result budgets that abort mid-flight,
client disconnects that never poison the server, and graceful drain
that finishes in-flight work and flushes the WAL.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.querycache import cache_info
from repro.durability import DurableDatabase
from repro.errors import (AdmissionError, ProtocolError, QueryLimitError,
                          QueryTimeoutError, ReproError)
from repro.server import ServerClient, ServerThread
from repro.server.protocol import HEADER, read_frame_sync
from repro.storage.catalog import Database
from repro.workload.paperqueries import (PAPER_QUERIES,
                                         load_paper_fixture,
                                         run_paper_query)

#: ~810k FLWOR tuples: reliably >1s of evaluator work, and a steady
#: stream of guard ticks for deadline/cancel tests.
SLOW_QUERY = ("count(for $a in db2-fn:xmlcolumn('T.D')//x, "
              "$b in db2-fn:xmlcolumn('T.D')//x return 1)")
MANY_ITEMS = "for $x in db2-fn:xmlcolumn('T.D')//x return $x"


@pytest.fixture(scope="module")
def fixture_db() -> Database:
    database = Database()
    load_paper_fixture(database)
    return database


@pytest.fixture()
def slow_db() -> Database:
    database = Database()
    database.create_table("t", [("d", "XML")])
    database.insert("t", {"d": "<r>" + "<x>1</x>" * 900 + "</r>"})
    return database


class TestByteIdentity:
    def test_all_30_paper_queries(self, fixture_db):
        with ServerThread(fixture_db) as (host, port):
            with ServerClient(host, port) as client:
                for number in sorted(PAPER_QUERIES):
                    _kind, statement = PAPER_QUERIES[number]
                    expected = run_paper_query(fixture_db, number)
                    assert client.query_text(statement) == expected, \
                        f"paper query {number} diverged over the wire"

    def test_engine_errors_are_in_band(self, fixture_db):
        # Query 25's XPDY0050 is part of its canonical answer: the
        # client renders it, it is not raised as a transport failure.
        _kind, statement = PAPER_QUERIES[25]
        with ServerThread(fixture_db) as (host, port):
            with ServerClient(host, port) as client:
                text = client.query_text(statement)
        assert text == run_paper_query(fixture_db, 25)
        assert text.startswith("error: ")


class TestSessions:
    def test_hello_ping_stats(self, fixture_db):
        with ServerThread(fixture_db) as (host, port):
            with ServerClient(host, port) as client:
                assert client.hello()["session"] >= 1
                assert client.ping()
                stats = client.stats()
                assert "server.sessions 1" in stats
                assert "server.queries" in stats

    def test_prolog_applies_to_session_queries(self, fixture_db):
        with ServerThread(fixture_db) as (host, port):
            with ServerClient(host, port) as client:
                client.set_prolog("declare function local:double($v) "
                                  "{ $v * 2 }; ")
                assert client.query_text("local:double(21)") == "42"

    def test_session_and_request_variables(self, fixture_db):
        with ServerThread(fixture_db) as (host, port):
            with ServerClient(host, port) as client:
                client.set_variable("n", 5)
                assert client.query_text("$n + 1") == "6"
                # A per-request binding overrides the session one.
                assert client.query_text(
                    "$n + 1", variables={"n": 10}) == "11"
                assert client.query_text("$n + 1") == "6"

    def test_sessions_are_isolated(self, fixture_db):
        with ServerThread(fixture_db) as (host, port):
            with ServerClient(host, port) as one, \
                    ServerClient(host, port) as two:
                one.set_variable("n", 1)
                two.set_variable("n", 2)
                assert one.query_text("$n") == "1"
                assert two.query_text("$n") == "2"

    def test_snapshot_isolation_and_read_your_writes(self):
        database = Database()
        database.create_table("t", [("id", "INTEGER")])
        database.insert("t", {"id": 1})
        with ServerThread(database) as (host, port):
            with ServerClient(host, port) as writer, \
                    ServerClient(host, port) as reader:
                count = "SELECT COUNT(*) AS n FROM t"
                assert reader.query_text(count).endswith("\n1")
                writer.query("INSERT INTO t (id) VALUES (2)")
                # The writer reads its own write; the reader's pinned
                # snapshot still shows the old version until refresh.
                assert writer.query_text(count).endswith("\n2")
                assert reader.query_text(count).endswith("\n1")
                reader.refresh()
                assert reader.query_text(count).endswith("\n2")


class TestPreparedStatements:
    STATEMENT = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
                 "where $o/custid = 1001 return $o/custid")

    def test_prepare_execute_matches_adhoc(self, fixture_db):
        expected = "\n".join(
            fixture_db.xquery(self.STATEMENT).serialize())
        with ServerThread(fixture_db) as (host, port):
            with ServerClient(host, port) as client:
                handle = client.prepare(self.STATEMENT)
                for _ in range(3):
                    assert client.execute_text(handle) == expected
                client.deallocate(handle)

    def test_prepared_plan_is_pinned(self, fixture_db):
        with ServerThread(fixture_db) as (host, port):
            with ServerClient(host, port) as client:
                before = cache_info().pinned
                handle = client.prepare(self.STATEMENT)
                assert cache_info().pinned == before + 1
                client.deallocate(handle)
                assert cache_info().pinned == before

    def test_session_close_releases_pins(self, fixture_db):
        with ServerThread(fixture_db) as (host, port):
            before = cache_info().pinned
            with ServerClient(host, port) as client:
                client.prepare(self.STATEMENT)
                assert cache_info().pinned == before + 1
            deadline = time.monotonic() + 5
            while cache_info().pinned != before:
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("pin not released on disconnect")
                time.sleep(0.01)

    def test_prepare_rejects_bad_statement(self, fixture_db):
        with ServerThread(fixture_db) as (host, port):
            with ServerClient(host, port) as client:
                before = cache_info().pinned
                with pytest.raises(ReproError):
                    client.prepare("for $x in (1,2 return $x")
                assert cache_info().pinned == before

    def test_unknown_handle_is_protocol_error(self, fixture_db):
        with ServerThread(fixture_db) as (host, port):
            with ServerClient(host, port) as client:
                with pytest.raises(ProtocolError):
                    client.execute(999)

    def test_concurrent_sessions_hammer_one_statement(self, fixture_db):
        """Many sessions executing the same prepared statement at once
        all get the serial in-process answer, byte for byte."""
        expected = "\n".join(
            fixture_db.xquery(self.STATEMENT).serialize())
        failures: list[str] = []

        def hammer(host: str, port: int) -> None:
            try:
                with ServerClient(host, port) as client:
                    handle = client.prepare(self.STATEMENT)
                    for _ in range(5):
                        text = client.execute_text(handle)
                        if text != expected:
                            failures.append(text)
            except ReproError as error:  # pragma: no cover
                failures.append(repr(error))

        with ServerThread(fixture_db, max_active=4,
                          max_queue=64) as (host, port):
            threads = [threading.Thread(target=hammer,
                                        args=(host, port))
                       for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not failures


class TestAdmissionControl:
    def test_saturated_queue_sheds_with_typed_error(self, slow_db):
        """With the lone slot busy and no queue, a second statement is
        refused *immediately* with SQLSTATE 53300 — never parked."""
        with ServerThread(slow_db, max_active=1,
                          max_queue=0) as (host, port):
            with ServerClient(host, port) as busy, \
                    ServerClient(host, port) as turned_away:
                background = threading.Thread(
                    target=busy.query, args=(SLOW_QUERY,),
                    kwargs={"timeout": 30})
                background.start()
                time.sleep(0.3)  # let the slow query occupy the slot
                started = time.monotonic()
                with pytest.raises(AdmissionError) as info:
                    turned_away.query("1 + 1")
                elapsed = time.monotonic() - started
                background.join(timeout=30)
                assert info.value.sqlstate == "53300"
                # Shed at wire speed, not after a queue timeout.
                assert elapsed < 1.0

    def test_shed_appears_in_stats(self, slow_db):
        with ServerThread(slow_db, max_active=1,
                          max_queue=0) as (host, port):
            with ServerClient(host, port) as busy, \
                    ServerClient(host, port) as turned_away:
                background = threading.Thread(
                    target=busy.query, args=(SLOW_QUERY,),
                    kwargs={"timeout": 30})
                background.start()
                time.sleep(0.3)
                with pytest.raises(AdmissionError):
                    turned_away.query("1 + 1")
                stats = turned_away.stats()
                background.join(timeout=30)
        assert "server.shed 1" in stats


class TestGuards:
    def test_deadline_aborts_mid_flight(self, slow_db):
        with ServerThread(slow_db) as (host, port):
            with ServerClient(host, port) as client:
                started = time.monotonic()
                with pytest.raises(QueryTimeoutError) as info:
                    client.query(SLOW_QUERY, timeout=0.1)
                elapsed = time.monotonic() - started
        assert info.value.sqlstate == "57014"
        # The full query runs >1s; the deadline cut it short inside
        # the evaluator loop.
        assert elapsed < 1.0

    def test_row_limit(self, slow_db):
        with ServerThread(slow_db) as (host, port):
            with ServerClient(host, port) as client:
                with pytest.raises(QueryLimitError) as info:
                    client.query(MANY_ITEMS, max_rows=10)
        assert info.value.sqlstate == "54000"

    def test_byte_limit(self, slow_db):
        with ServerThread(slow_db) as (host, port):
            with ServerClient(host, port) as client:
                with pytest.raises(QueryLimitError):
                    client.query(MANY_ITEMS, max_bytes=20)

    def test_server_default_limits_apply(self, slow_db):
        with ServerThread(slow_db,
                          default_max_rows=10) as (host, port):
            with ServerClient(host, port) as client:
                with pytest.raises(QueryLimitError):
                    client.query(MANY_ITEMS)
                # An explicit per-request limit overrides the default.
                payload = client.query(MANY_ITEMS, max_rows=10_000)
                assert len(payload["items"]) == 900


class TestHostileClients:
    def test_oversized_frame_rejected(self, fixture_db):
        with ServerThread(fixture_db,
                          max_frame_bytes=1024) as (host, port):
            with socket.create_connection((host, port),
                                          timeout=10) as sock:
                sock.sendall(HEADER.pack(50 * 1024 * 1024))
                response = read_frame_sync(sock.makefile("rb"))
        assert response["ok"] is False
        assert response["error"]["code"] == "08P01"

    def test_torn_frame_drops_connection_only(self, fixture_db):
        with ServerThread(fixture_db) as (host, port):
            with socket.create_connection((host, port),
                                          timeout=10) as sock:
                sock.sendall(b"\x00\x00")  # half a header, then gone
            with ServerClient(host, port) as client:
                assert client.ping()

    def test_disconnect_mid_query_cancels_and_recovers(self, slow_db):
        with ServerThread(slow_db) as (host, port):
            victim = ServerClient(host, port)
            victim.request({"op": "hello"})
            from repro.server.protocol import write_frame_sync
            write_frame_sync(victim.sock,
                             {"op": "query", "statement": SLOW_QUERY})
            victim.close()  # walk away mid-query
            with ServerClient(host, port) as client:
                assert client.query_text("1 + 1") == "2"
                deadline = time.monotonic() + 15
                while True:
                    stats = client.stats()
                    # Noticed the disconnect AND the cancelled query
                    # unwound and released its admission slot (the
                    # cancel trips at the guard's next tick, so the
                    # release trails the notice slightly).
                    if ("server.disconnects_mid_query 1" in stats
                            and "server.active 0" in stats):
                        break
                    if time.monotonic() > deadline:  # pragma: no cover
                        pytest.fail("disconnect never cleaned up: "
                                    + stats)
                    time.sleep(0.05)


class TestGracefulDrain:
    def test_drain_finishes_in_flight_work(self, slow_db):
        expected = str(900 * 900)
        result: list[str] = []
        with ServerThread(slow_db) as (host, port):
            client = ServerClient(host, port)
            background = threading.Thread(
                target=lambda: result.append(
                    client.query_text(SLOW_QUERY)))
            background.start()
            time.sleep(0.3)  # the slow query is now mid-flight
            # __exit__ drains: it must wait for the statement, not
            # kill it.
        background.join(timeout=30)
        assert result == [expected]

    def test_draining_server_refuses_new_statements(self, slow_db):
        thread = ServerThread(slow_db)
        host, port = thread.__enter__()
        try:
            client = ServerClient(host, port)
            background = threading.Thread(
                target=client.query, args=(SLOW_QUERY,))
            background.start()
            time.sleep(0.3)
            late = ServerClient(host, port)
            drainer = threading.Thread(target=thread.stop)
            drainer.start()
            time.sleep(0.2)  # drain is now waiting on the slow query
            # The draining server refuses the statement: normally a
            # typed 57P01; if the drain already closed connections by
            # the time the frame lands, a closed socket.  Never a hang,
            # never an answer.
            with pytest.raises((ReproError, ConnectionError)) as info:
                late.query("1 + 1")
            if isinstance(info.value, ReproError):
                assert getattr(info.value, "sqlstate", "") == "57P01"
            background.join(timeout=30)
            drainer.join(timeout=30)
        finally:
            thread.__exit__(None, None, None)

    def test_drain_flushes_wal(self, tmp_path):
        with DurableDatabase(tmp_path / "db",
                             fsync_policy="batch") as database:
            database.create_table("t", [("id", "INTEGER")])
            with ServerThread(database) as (host, port):
                with ServerClient(host, port) as client:
                    client.query("INSERT INTO t (id) VALUES (7)")
            # ServerThread.__exit__ drained: the write must be on
            # disk now, not waiting in the batch buffer.
            assert database.wal.pending_records == 0
            assert database.wal._synced_size == \
                database.wal._written_size
        with DurableDatabase(tmp_path / "db") as recovered:
            result = recovered.sql("SELECT id FROM t")
            assert result.rows == [(7,)]


class TestWrites:
    def test_ddl_and_dml_route_through_engine(self):
        database = Database()
        with ServerThread(database) as (host, port):
            with ServerClient(host, port) as client:
                client.query("CREATE TABLE items (id INTEGER, "
                             "doc XML)")
                client.query("INSERT INTO items (id, doc) VALUES "
                             "(1, '<a><b>7</b></a>')")
                assert client.query_text(
                    "db2-fn:xmlcolumn('ITEMS.DOC')/a/b") == "<b>7</b>"
                client.query("DROP TABLE items")
                # Engine errors are in-band (part of a statement's
                # canonical answer), not transport failures.
                gone = client.query("SELECT id FROM items")
                assert gone["ok"] is False and gone["engine"] is True
        assert "items" not in database.tables
