"""Property-based tests on comparison semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XQueryTypeError
from repro.xdm import atomic
from repro.xdm.compare import general_compare, value_compare

numbers = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(atomic.integer),
    st.floats(min_value=-1000, max_value=1000, allow_nan=False,
              allow_infinity=False).map(atomic.double),
)

untyped_numbers = st.integers(min_value=-100, max_value=100).map(
    lambda value: atomic.untyped(str(value)))

mixed = st.one_of(numbers, untyped_numbers)


@given(st.lists(mixed, max_size=4), st.lists(mixed, max_size=4))
def test_general_comparison_is_existential(left, right):
    """a = b over sequences iff SOME pair compares equal."""
    expected = False
    for left_atom in left:
        for right_atom in right:
            try:
                result = value_compare(
                    "eq",
                    [atomic.cast(left_atom, atomic.T_DOUBLE)],
                    [atomic.cast(right_atom, atomic.T_DOUBLE)])
            except XQueryTypeError:
                continue
            if result and result[0].value:
                expected = True
    assert general_compare("=", left, right) is expected


@given(mixed, mixed)
def test_general_comparison_trichotomy(left, right):
    equal = general_compare("=", [left], [right])
    less = general_compare("<", [left], [right])
    greater = general_compare(">", [left], [right])
    assert [equal, less, greater].count(True) == 1


@given(mixed, mixed)
def test_general_negation_duality_on_singletons(left, right):
    assert general_compare("=", [left], [right]) != \
        general_compare("!=", [left], [right])
    assert general_compare("<", [left], [right]) != \
        general_compare(">=", [left], [right])


@given(numbers, numbers)
def test_value_comparison_antisymmetry(left, right):
    lt = value_compare("lt", [left], [right])[0].value
    gt = value_compare("gt", [right], [left])[0].value
    assert lt == gt


@settings(max_examples=200)
@given(st.text(max_size=6), st.text(max_size=6))
def test_string_comparison_matches_python(left, right):
    result = value_compare("eq", [atomic.string(left)],
                           [atomic.string(right)])
    assert result[0].value == (left == right)
    order = value_compare("lt", [atomic.string(left)],
                          [atomic.string(right)])
    assert order[0].value == (left < right)


@given(st.integers(min_value=-10**18, max_value=10**18))
def test_long_roundtrip_through_string_is_exact(value):
    atom = atomic.long_integer(value)
    text = atomic.cast(atom, atomic.T_STRING)
    back = atomic.cast(text, atomic.T_LONG)
    assert back.value == value


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_double_roundtrip_through_string(value):
    atom = atomic.double(value)
    text = atomic.cast(atom, atomic.T_STRING)
    back = atomic.cast(text, atomic.T_DOUBLE)
    assert back.value == value
