"""The crash matrix: every fault point × every torn-tail offset.

A scripted DDL+DML workload runs against a durable directory with a
crash injected at each named fault point (and, separately, with the
WAL torn at every byte offset of its final record).  After recovery,
all 30 paper queries must answer **byte-identically** to an uncrashed
in-memory oracle holding exactly the durable prefix of the workload —
and a second recovery must be a no-op.

The op ↔ LSN mapping makes the oracle exact: every workload op is one
logged record, so a recovered ``last_lsn`` of *p* means ops ``[0:p]``
survived and nothing else.
"""

import pytest

from repro import Database
from repro.durability import (WAL_NAME, CrashError, DurableDatabase,
                              FAULT_POINTS, FaultInjector)
from repro.durability.faults import torn_tail_sizes
from repro.durability.wal import scan_wal
from repro.schema.schema import Schema
from repro.workload.paperqueries import (PAPER_CUSTOMERS, PAPER_ORDERS,
                                         PAPER_PRODUCTS, PAPER_QUERIES,
                                         run_paper_query)

ORDER_SCHEMA = (Schema("ord-v1", strict=False)
                .declare("custid", "xs:double"))


def _build_ops():
    """The scripted workload: each op applies exactly one WAL record."""
    ops = [
        ("create customer", lambda db: db.create_table(
            "customer", [("cid", "INTEGER"), ("cdoc", "XML")])),
        ("create orders", lambda db: db.create_table(
            "orders", [("ordid", "INTEGER"), ("orddoc", "XML")])),
        ("create products", lambda db: db.create_table(
            "products", [("id", "VARCHAR(13)"), ("name", "VARCHAR(32)")])),
        ("register ord-v1", lambda db: db.register_schema(ORDER_SCHEMA)),
    ]
    for ordid, document in PAPER_ORDERS[:4]:
        ops.append((f"insert order {ordid}",
                    lambda db, o=ordid, d=document: db.insert(
                        "orders", {"ordid": o, "orddoc": d},
                        schema="ord-v1")))
    for cid, document in PAPER_CUSTOMERS[:2]:
        ops.append((f"insert customer {cid}",
                    lambda db, c=cid, d=document: db.insert(
                        "customer", {"cid": c, "cdoc": d})))
    ops += [
        ("create li_price", lambda db: db.create_xml_index(
            "li_price", "orders", "orddoc", "//lineitem/@price",
            "DOUBLE")),
        ("create c_custid", lambda db: db.create_xml_index(
            "c_custid", "customer", "cdoc", "/customer/id", "DOUBLE")),
        ("create p_id", lambda db: db.create_relational_index(
            "p_id", "products", "id")),
    ]
    for product_id, name in PAPER_PRODUCTS[:3]:
        ops.append((f"insert product {product_id}",
                    lambda db, i=product_id, n=name: db.insert(
                        "products", {"id": i, "name": n})))
    ops += [
        (f"insert order {PAPER_ORDERS[4][0]}",
         lambda db: db.insert("orders",
                              {"ordid": PAPER_ORDERS[4][0],
                               "orddoc": PAPER_ORDERS[4][1]})),
        # Online build: snapshot scan → catch-up → publish.  One WAL
        # record (logged at publish) keeps the op ↔ LSN invariant; the
        # plain-Database oracle runs the same method offline-equivalent.
        ("online build o_custid",
         lambda db: db.create_xml_index_online(
             "o_custid", "orders", "orddoc", "//custid", "DOUBLE")),
        ("delete even orders", lambda db: db.delete_rows(
            "orders", lambda values: values["ordid"] % 2 == 0)),
        # Final op is deliberately tiny so the torn-tail matrix stays
        # a few dozen offsets wide.
        ("drop p_id", lambda db: db.drop_index("p_id")),
    ]
    return ops


OPS = _build_ops()
CHECKPOINT_AT = 9  # checkpoint fires before OPS[9], mid-workload


def answers(database) -> dict[int, str]:
    return {number: run_paper_query(database, number)
            for number in PAPER_QUERIES}


_oracle_cache: dict[int, dict[int, str]] = {}


def oracle_answers(prefix: int) -> dict[int, str]:
    """All 30 answers from a fresh in-memory DB with ops[0:prefix]."""
    if prefix not in _oracle_cache:
        database = Database()
        for _name, op in OPS[:prefix]:
            op(database)
        _oracle_cache[prefix] = answers(database)
    return _oracle_cache[prefix]


def run_until_crash(directory, faults) -> int:
    """Apply the workload; return how many ops completed pre-crash."""
    database = DurableDatabase(str(directory), faults=faults)
    completed = 0
    try:
        for index, (_name, op) in enumerate(OPS):
            if index == CHECKPOINT_AT:
                database.checkpoint()
            op(database)
            completed += 1
    except CrashError:
        database._wal.abandon()  # a dead process never flushes
        return completed
    database.close()
    raise AssertionError("fault point never fired")


# Every registered point at its first firing, plus mid-workload and
# post-checkpoint crashes, plus torn partial writes that reached disk.
CRASH_SCENARIOS = [(point, 0, 0) for point in FAULT_POINTS] + [
    ("wal.append.before_write", 5, 0),
    ("wal.append.before_fsync", 5, 0),
    ("wal.append.after_fsync", 5, 0),
    ("wal.append.before_fsync", CHECKPOINT_AT + 2, 0),
    ("wal.append.before_fsync", 2, 5),
    ("wal.append.before_fsync", 7, 13),
]


@pytest.mark.parametrize(
    "point,skip,keep_bytes", CRASH_SCENARIOS,
    ids=[f"{point}+{skip}" + (f"+torn{keep}" if keep else "")
         for point, skip, keep in CRASH_SCENARIOS])
def test_crash_point_recovers_to_exact_durable_prefix(
        tmp_path, point, skip, keep_bytes):
    faults = FaultInjector(point, skip=skip, keep_bytes=keep_bytes)
    completed = run_until_crash(tmp_path, faults)
    assert faults.fired

    with DurableDatabase(str(tmp_path)) as database:
        recovery = database.last_recovery
        prefix = recovery.last_lsn
        # The crashed op's record is durable iff the crash hit after
        # its fsync; nothing beyond it can ever survive.
        assert prefix in (completed, completed + 1)
        assert answers(database) == oracle_answers(prefix)

    with DurableDatabase(str(tmp_path)) as database:
        second = database.last_recovery
        assert second.last_lsn == prefix
        assert second.truncated_bytes == 0  # first recovery repaired
        assert answers(database) == oracle_answers(prefix)


def test_torn_tail_matrix_recovers_at_every_offset(tmp_path):
    directory = tmp_path / "state"
    with DurableDatabase(str(directory)) as database:
        for _name, op in OPS:
            op(database)
    wal_path = directory / WAL_NAME
    whole = wal_path.read_bytes()
    scan = scan_wal(str(wal_path))
    assert scan.last_lsn == len(OPS)
    expected = oracle_answers(len(OPS) - 1)
    sizes = torn_tail_sizes(scan.last_record_start, scan.file_size)
    assert len(sizes) >= 12  # frame header alone is 12 bytes
    for size in sizes:
        wal_path.write_bytes(whole[:size])
        with DurableDatabase(str(directory)) as database:
            recovery = database.last_recovery
            assert recovery.last_lsn == len(OPS) - 1, f"cut at {size}"
            assert recovery.truncated_bytes == \
                size - scan.last_record_start
            assert answers(database) == expected, f"cut at {size}"


def test_uncrashed_workload_roundtrips(tmp_path):
    """Baseline: the full workload recovers to the full oracle."""
    with DurableDatabase(str(tmp_path)) as database:
        for index, (_name, op) in enumerate(OPS):
            if index == CHECKPOINT_AT:
                database.checkpoint()
            op(database)
        live = answers(database)
    assert live == oracle_answers(len(OPS))
    with DurableDatabase(str(tmp_path)) as database:
        assert database.last_recovery.checkpoint_lsn == CHECKPOINT_AT
        assert answers(database) == live
