"""The static-inference oracle: all 30 paper queries.

For every numbered query of the paper the abstract interpreter must
produce a *sound* verdict against the engineered fixture collection:

* **XQuery** — the inferred cardinality bounds of the query body must
  contain the actual result count, and when the inferred item types
  name concrete elements, every result node must carry one of those
  names.  Queries the paper defines to raise *runtime* errors must
  still infer cleanly (static analysis never crashes on them).
* **SQL** — linting must produce no error-severity findings: the
  paper's SQL/XML queries are all statically well-formed (their
  surprises are warnings, not errors).

This is the acceptance oracle for the PR's static-analysis layer: a
wrong lattice operation, a bad summary bound, or an over-eager SE005
shows up here as a bounds violation on a real query.
"""

from __future__ import annotations

import pytest

from repro.static import lint_statement
from repro.static.infer import infer_module
from repro.xquery.parser import parse_xquery

XMLCOL = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"

VIEW = ("let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
        "/order/lineitem return <item>{ $i/@quantity, "
        "<pid>{ $i/product/id/data(.) }</pid> }</item> ")

#: (query number, language, text, expected result count, runs?).
#: ``expected`` is None when the query raises a runtime error (25) —
#: inference must still complete; execution is skipped.
PAPER_QUERIES = [
    (1, "xquery",
     f"for $i in {XMLCOL}//order[lineitem/@price>100] return $i", 1),
    (2, "xquery",
     f"for $i in {XMLCOL}//order[lineitem/@*>100] return $i", 1),
    (3, "xquery",
     f'for $i in {XMLCOL}//order[lineitem/@price > "100" ] return $i',
     3),
    (4, "xquery",
     'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
     'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
     "where $i/custid/xs:double(.) = $j/id/xs:double(.) return $i", 5),
    (5, "sql",
     "SELECT XMLQuery('$order//lineitem[@price > 100]' "
     'passing orddoc as "order") FROM orders', 7),
    (6, "sql",
     "VALUES (XMLQuery('db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")"
     "//lineitem[@price > 100] '))", 1),
    (7, "xquery", f"{XMLCOL}//lineitem[@price > 100]", 1),
    (8, "sql",
     "SELECT ordid, orddoc FROM orders WHERE "
     "XMLExists('$order//lineitem[@price > 100]' "
     'passing orddoc as "order")', 1),
    (9, "sql",
     "SELECT ordid, orddoc FROM orders WHERE "
     "XMLExists('$order//lineitem/@price > 100' "
     'passing orddoc as "order")', 7),
    (10, "sql",
     "SELECT ordid, XMLQuery('$order//lineitem[@price > 100]' "
     'passing orddoc as "order") FROM orders WHERE '
     "XMLExists('$order//lineitem[@price > 100]' "
     'passing orddoc as "order")', 1),
    (11, "sql",
     "SELECT o.ordid, t.lineitem FROM orders o, "
     "XMLTable('$order//lineitem[@price > 100]' "
     'passing o.orddoc as "order" '
     "COLUMNS \"lineitem\" XML BY REF PATH '.') as t(lineitem)", 1),
    (12, "sql",
     "SELECT o.ordid, t.lineitem, t.price FROM orders o, "
     "XMLTable('$order//lineitem' passing o.orddoc as \"order\" "
     "COLUMNS \"lineitem\" XML BY REF PATH '.', "
     "\"price\" DECIMAL(6,3) PATH '@price[. > 100]') "
     "as t(lineitem, price)", 8),
    (13, "sql",
     "SELECT p.name, XMLQuery('$order//lineitem' "
     'passing orddoc as "order") FROM products p, orders o '
     "WHERE XMLExists('$order//lineitem/product[id eq $pid]' "
     'passing o.orddoc as "order", p.id as "pid")', 6),
    (14, "sql",
     "SELECT p.name FROM products p, orders o "
     "WHERE ordid = 4 AND p.id = XMLCast(XMLQuery("
     "'$order//lineitem/product/id' passing o.orddoc as \"order\") "
     "as VARCHAR(13))", 1),
    (15, "sql",
     "SELECT c.cid, XMLQuery('$order//lineitem' "
     'passing o.orddoc as "order") FROM orders o, customer c, '
     "WHERE XMLCast(XMLQuery('$order/order/custid' "
     'passing o.orddoc as "order") as DOUBLE) = '
     "XMLCast(XMLQuery('$cust/customer/id' "
     'passing c.cdoc as "cust") as DOUBLE)', 5),
    (16, "sql",
     "SELECT c.cid, XMLQuery('$order//lineitem' "
     'passing o.orddoc as "order") FROM customer c, orders o '
     "WHERE XMLExists('$order/order[custid/xs:double(.) = "
     "$cust/customer/id/xs:double(.)]' "
     'passing o.orddoc as "order", c.cdoc as "cust")', 5),
    (17, "xquery",
     f"for $doc in {XMLCOL} "
     "for $item in $doc//lineitem[@price > 100] "
     "return <result>{$item}</result>", 1),
    (18, "xquery",
     f"for $doc in {XMLCOL} "
     "let $item:= $doc//lineitem[@price > 100] "
     "return <result>{$item}</result>", 7),
    (19, "xquery",
     f"for $ord in {XMLCOL}/order "
     "return <result>{$ord/lineitem[@price > 100]}</result>", 7),
    (20, "xquery",
     f"for $ord in {XMLCOL}/order "
     "where $ord/lineitem/@price > 100 "
     "return <result>{$ord/lineitem}</result>", 1),
    (21, "xquery",
     f"for $ord in {XMLCOL}/order "
     "let $price := $ord/lineitem/@price where $price > 100 "
     "return <result>{$ord/lineitem}</result>", 1),
    (22, "xquery",
     f"for $ord in {XMLCOL}/order "
     "return $ord/lineitem[@price > 100]", 1),
    (23, "xquery", f"{XMLCOL}/order/lineitem", 8),
    (24, "xquery",
     f"for $ord in (for $o in {XMLCOL}/order "
     "return <my_order>{$o/*}</my_order>) "
     "return $ord/my_order", 0),
    (25, "xquery",
     "let $order := <neworder>{"
     f"{XMLCOL}/order[custid > 1001]"
     "}</neworder> return $order[//customer/name]", None),
    (26, "xquery",
     VIEW + "for $j in $view where $j/pid = '17' return $j", 2),
    (27, "xquery",
     "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem "
     "where $i/product/id = '17' return $i/@price", 1),
    (28, "xquery",
     'declare default element namespace '
     '"http://ournamespaces.com/order"; '
     'declare namespace c="http://ournamespaces.com/customer"; '
     'for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
     "/order[lineitem/@price > 1000] "
     'for $cust in db2-fn:xmlcolumn("CUSTOMER.CDOC")'
     "/c:customer[c:nation = 1] "
     "where $ord/custid = $cust/id return $ord", 0),
    (29, "xquery",
     'for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
     '/order[lineitem/price/text() = "99.50"] return $ord', 1),
    (30, "xquery",
     f"for $i in {XMLCOL}"
     "//order[lineitem[@price>100 and @price<200]] return $i", 1),
]

XQUERY_CASES = [entry for entry in PAPER_QUERIES if entry[1] == "xquery"]
SQL_CASES = [entry for entry in PAPER_QUERIES if entry[1] == "sql"]


def _check_item_kinds(body_type, result) -> None:
    """When inference names concrete elements, results must match."""
    kinds = {entry.kind for entry in body_type.items}
    locals_ = {entry.local for entry in body_type.items}
    if kinds != {"element"} or None in locals_:
        return
    for node in result.items:
        assert getattr(node, "kind", None) == "element", (
            f"inferred {body_type} but got non-element {node!r}")
        assert node.name.local in locals_, (
            f"inferred element names {sorted(locals_)} but got "
            f"<{node.name.local}>")


@pytest.mark.parametrize(
    "number,language,query,expected", XQUERY_CASES,
    ids=[f"query{entry[0]}" for entry in XQUERY_CASES])
def test_xquery_bounds_contain_actual_count(indexed_db, number,
                                            language, query, expected):
    inference = infer_module(parse_xquery(query), database=indexed_db)
    body = inference.body_type
    assert body.low >= 0
    if body.high is not None:
        assert body.high >= body.low
    if expected is None:
        return  # a runtime-error query: inference completing is the test
    result = indexed_db.xquery(query)
    assert len(result) == expected  # the fixture invariant itself
    assert body.low <= len(result), (
        f"query {number}: inferred {body.bounds_text()} but counted "
        f"{len(result)}")
    if body.high is not None:
        assert len(result) <= body.high, (
            f"query {number}: inferred {body.bounds_text()} but "
            f"counted {len(result)}")
    _check_item_kinds(body, result)


@pytest.mark.parametrize(
    "number,language,query,expected", XQUERY_CASES,
    ids=[f"query{entry[0]}" for entry in XQUERY_CASES])
def test_xquery_no_false_static_errors(indexed_db, number, language,
                                       query, expected):
    """No paper XQuery contains a *static* error (SE005 statically-
    empty paths are legitimate data-dependent verdicts and excluded)."""
    inference = infer_module(parse_xquery(query), database=indexed_db)
    hard_errors = [finding for finding in inference.diagnostics
                   if finding.severity == "error"
                   and finding.code.code != "SE005"]
    assert hard_errors == [], [str(finding) for finding in hard_errors]


@pytest.mark.parametrize(
    "number,language,query,expected", SQL_CASES,
    ids=[f"query{entry[0]}" for entry in SQL_CASES])
def test_sql_queries_lint_without_errors(indexed_db, number, language,
                                         query, expected):
    findings = lint_statement(query, database=indexed_db, language="sql")
    errors = [finding for finding in findings
              if finding.severity == "error"
              and finding.code.code != "SE005"]
    assert errors == [], [str(finding) for finding in errors]
    result = indexed_db.sql(query)
    assert len(result) == expected


def test_every_paper_query_is_covered():
    numbers = sorted(entry[0] for entry in PAPER_QUERIES)
    assert numbers == list(range(1, 31))


def test_bounds_are_exact_for_column_paths(indexed_db):
    """db2-fn:xmlcolumn paths get *exact* upper bounds from the
    summaries (lows stay 0: filtering can drop any document)."""
    inference = infer_module(
        parse_xquery(f"{XMLCOL}/order/lineitem"), database=indexed_db)
    assert inference.body_type.high == 8   # total lineitems, exactly

    inference = infer_module(
        parse_xquery(f"{XMLCOL}//order"), database=indexed_db)
    assert inference.body_type.high == 7   # one root order per document


def test_statically_empty_path_is_se005(indexed_db):
    inference = infer_module(
        parse_xquery(f"{XMLCOL}//order/warehouse"), database=indexed_db)
    assert inference.body_type.is_empty
    assert any(finding.code.code == "SE005"
               for finding in inference.diagnostics)
