"""Property: autopilot DDL never changes answers.

For a randomized interleaving of DML (inserts and deletes against the
paper tables) with workload observation and autopilot ``apply`` calls,
all 30 paper queries must answer **byte-identically** to a database
that saw the same DML but never built an index — indexes are an access
path, not a semantics change (Definition 1), and the autopilot must
preserve that under any schedule.

Second property: every index the advisor recommends passes
:func:`repro.core.eligibility.check_index` against at least one
predicate of the statement that motivated it — the advisor never
recommends DDL the planner would refuse to use.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.autopilot.candidates import _statement_candidates
from repro.core.eligibility import check_index
from repro.storage.catalog import Database
from repro.storage.xmlindex import XmlIndex
from repro.workload.paperqueries import (PAPER_ORDERS, PAPER_QUERIES,
                                         load_paper_fixture,
                                         run_paper_query)

QUERY_NUMBERS = sorted(PAPER_QUERIES)

EXTRA_ORDERS = [
    (9000 + position,
     f"<order><custid>{7000 + position}</custid>"
     f"<lineitem price=\"{25 * (position + 1)}\" "
     f"quantity=\"{position + 1}\"><product><id>x{position}</id>"
     f"</product></lineitem></order>")
    for position in range(4)
]

#: Step vocabulary for the randomized schedule.
#: ('insert', k) / ('delete', ordid) / ('observe', query#) / ('apply',)
STEPS = (
    [("insert", position) for position in range(len(EXTRA_ORDERS))] +
    [("delete", ordid) for ordid, _doc in PAPER_ORDERS[:3]] +
    [("observe", number) for number in (1, 2, 3, 4, 11, 13, 21)] +
    [("apply",)] * 3
)


def answers(database) -> dict[int, str]:
    return {number: run_paper_query(database, number)
            for number in QUERY_NUMBERS}


def run_schedule(database, schedule, pilot=None):
    """Apply DML steps; observe/apply only when a pilot is attached."""
    for step in schedule:
        if step[0] == "insert":
            ordid, document = EXTRA_ORDERS[step[1]]
            database.insert("orders",
                            {"ordid": ordid, "orddoc": document})
        elif step[0] == "delete":
            target = step[1]
            database.delete_rows(
                "orders", lambda values: values["ordid"] == target)
        elif step[0] == "observe":
            if pilot is not None:
                run_paper_query(database, step[1])
        elif pilot is not None:     # 'apply'
            pilot.apply(limit=2)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=st.permutations(STEPS))
def test_autopilot_ddl_never_changes_answers(schedule):
    piloted = Database()
    load_paper_fixture(piloted, with_indexes=False)
    plain = Database()
    load_paper_fixture(plain, with_indexes=False)

    run_schedule(piloted, schedule, pilot=piloted.autopilot())
    run_schedule(plain, schedule, pilot=None)

    assert answers(piloted) == answers(plain)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(numbers=st.sets(st.sampled_from(QUERY_NUMBERS),
                       min_size=1, max_size=8))
def test_advisor_never_recommends_an_ineligible_index(numbers):
    database = Database()
    load_paper_fixture(database, with_indexes=False)
    pilot = database.autopilot()
    for number in sorted(numbers):
        run_paper_query(database, number)
    for candidate in pilot.advise():
        index = XmlIndex(candidate.name, candidate.table,
                         candidate.column, candidate.pattern,
                         candidate.index_type)
        eligible_somewhere = False
        for profile in pilot.profiler.statements():
            if profile.fingerprint not in candidate.statements:
                continue
            for predicate in _statement_candidates(database, profile):
                if check_index(index, predicate).eligible:
                    eligible_somewhere = True
        assert eligible_somewhere, \
            f"advisor recommended unusable DDL: {candidate.ddl}"
