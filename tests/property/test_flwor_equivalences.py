"""Property-based tests of the paper's query-equivalence claims.

Section 3.4 asserts several semantic (in)equivalences between FLWOR
formulations.  These must hold on *every* collection, so we check them
over randomly generated ones:

* Query 20 ≡ Query 21 (path-in-where vs let + where);
* Query 17's cardinality = number of qualifying lineitems, while
  Query 18's = number of documents;
* Query 19 returns one element per order; Query 22 drops empties;
* predicate-in-path ≡ predicate-in-where for for-clauses.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database

prices = st.one_of(
    st.integers(min_value=0, max_value=300),
    st.sampled_from(["20 USD", ""]),
)
collections = st.lists(st.lists(prices, max_size=3), max_size=10)


def build_db(collection) -> Database:
    database = Database(index_order=4)
    database.create_table("t", [("d", "XML")])
    for item_prices in collection:
        items = "".join(f'<lineitem price="{price}"/>'
                        for price in item_prices)
        database.insert("t", {"d": f"<order>{items}</order>"})
    database.create_xml_index("idx", "t", "d", "//lineitem/@price",
                              "DOUBLE")
    return database


Q20 = ("for $ord in db2-fn:xmlcolumn('T.D')/order "
       "where $ord/lineitem/@price > 100 "
       "return <result>{$ord/lineitem}</result>")
Q21 = ("for $ord in db2-fn:xmlcolumn('T.D')/order "
       "let $price := $ord/lineitem/@price where $price > 100 "
       "return <result>{$ord/lineitem}</result>")


@settings(max_examples=40, deadline=None)
@given(collections)
def test_query20_equals_query21(collection):
    database = build_db(collection)
    for use_indexes in (True, False):
        left = database.xquery(Q20, use_indexes=use_indexes)
        right = database.xquery(Q21, use_indexes=use_indexes)
        assert left.serialize() == right.serialize()


@settings(max_examples=40, deadline=None)
@given(collections)
def test_for_vs_let_cardinalities(collection):
    database = build_db(collection)
    q17 = database.xquery(
        "for $doc in db2-fn:xmlcolumn('T.D') "
        "for $item in $doc//lineitem[@price > 100] "
        "return <result>{$item}</result>")
    q18 = database.xquery(
        "for $doc in db2-fn:xmlcolumn('T.D') "
        "let $item := $doc//lineitem[@price > 100] "
        "return <result>{$item}</result>")
    qualifying = sum(
        1 for item_prices in collection for price in item_prices
        if isinstance(price, int) and price > 100)
    assert len(q17) == qualifying
    assert len(q18) == len(collection)


@settings(max_examples=40, deadline=None)
@given(collections)
def test_constructor_vs_bindout_cardinalities(collection):
    database = build_db(collection)
    q19 = database.xquery(
        "for $ord in db2-fn:xmlcolumn('T.D')/order "
        "return <result>{$ord/lineitem[@price > 100]}</result>")
    q22 = database.xquery(
        "for $ord in db2-fn:xmlcolumn('T.D')/order "
        "return $ord/lineitem[@price > 100]")
    assert len(q19) == len(collection)
    qualifying = sum(
        1 for item_prices in collection for price in item_prices
        if isinstance(price, int) and price > 100)
    assert len(q22) == qualifying


@settings(max_examples=40, deadline=None)
@given(collections)
def test_predicate_position_equivalence_in_for(collection):
    """For for-clauses, §3.4: "it does not matter whether the predicate
    is embedded in the path expression ... or is in the where-clause"."""
    database = build_db(collection)
    in_path = database.xquery(
        "for $i in db2-fn:xmlcolumn('T.D')//lineitem[@price > 100] "
        "return $i")
    in_where = database.xquery(
        "for $i in db2-fn:xmlcolumn('T.D')//lineitem "
        "where $i/@price > 100 return $i")
    assert in_path.serialize() == in_where.serialize()
    # When no document contains the path at all, the static-analysis
    # pass prunes the branch before any index is probed; otherwise the
    # index must serve both phrasings.
    for result in (in_path, in_where):
        if any("static prune" in note for note in
               result.stats.plan_notes):
            assert result.stats.indexes_used == []
            assert len(result) == 0
        else:
            assert result.stats.indexes_used == ["idx"]


@settings(max_examples=40, deadline=None)
@given(collections)
def test_query9_shape_boolean_vs_filter(collection):
    """The standalone analogue of Query 8 vs Query 9: EBV of a boolean
    body is not 'exists', and the filter form never returns more."""
    database = build_db(collection)
    filter_form = database.xquery(
        "for $d in db2-fn:xmlcolumn('T.D') "
        "where $d//lineitem[@price > 100] return $d",
        use_indexes=False)
    boolean_form = database.xquery(
        "for $d in db2-fn:xmlcolumn('T.D') "
        "where $d//lineitem/@price > 100 return $d",
        use_indexes=False)
    # For *where* clauses the two agree (EBV of the comparison); the
    # divergence the paper warns about is XMLEXISTS's non-empty test.
    assert filter_form.serialize() == boolean_form.serialize()
