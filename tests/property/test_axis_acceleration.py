"""Property tests: interval-encoded axes vs naive recursive oracles.

The ``(pre, post, level)`` encoding turns descendant/ancestor/following/
preceding into interval tests and document-order sorting into a key
sort.  These tests pit every accelerated axis against a dumb recursive
walk on randomized trees — including after ``insert_child`` /
``remove_child`` / ``remove_attribute`` mutations, which must invalidate
the cached numbering (the stamp) rather than serve stale intervals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.pathsummary import PathSummary, build_summary, get_summary
from repro.xdm.nodes import (AttributeNode, DocumentNode, ElementNode,
                             TextNode)
from repro.xdm.qname import QName
from repro.xdm.sequence import document_order
from repro.xquery.evaluator import _axis_nodes

TAGS = ("a", "b", "c")


@st.composite
def tree_specs(draw, depth=0):
    """(tag, attr-count, children) nested tuples; ``None`` = text node."""
    tag = draw(st.sampled_from(TAGS))
    attr_count = draw(st.integers(min_value=0, max_value=2))
    children = []
    if depth < 3:
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            if draw(st.booleans()):
                children.append(draw(tree_specs(depth=depth + 1)))
            else:
                children.append(None)
    return (tag, attr_count, tuple(children))


def build_element(spec) -> ElementNode:
    tag, attr_count, children = spec
    element = ElementNode(QName("", tag))
    for i in range(attr_count):
        element.add_attribute(AttributeNode(QName("", f"x{i}"), str(i)))
    for child in children:
        element.append_child(TextNode("t") if child is None
                             else build_element(child))
    return element


def build_document(spec) -> DocumentNode:
    document = DocumentNode()
    document.append_child(build_element(spec))
    return document


# ---------------------------------------------------------------------------
# Naive oracles: recursion and parent-chain walks only, no intervals.
# ---------------------------------------------------------------------------

def ordered_nodes(node):
    """Document order incl. attributes (element, its attributes, children)."""
    out = [node]
    out.extend(node.attributes)
    for child in node.children:
        out.extend(ordered_nodes(child))
    return out


def oracle_descendants(node):
    out = []
    for child in node.children:
        out.append(child)
        out.extend(oracle_descendants(child))
    return out


def oracle_ancestors(node):
    out = []
    current = node.parent
    while current is not None:
        out.append(current)
        current = current.parent
    return out


def oracle_siblings(node):
    if node.parent is None or node.kind == "attribute":
        return [], []
    siblings = node.parent.children
    index = next(i for i, sibling in enumerate(siblings)
                 if sibling is node)
    return list(reversed(siblings[:index])), siblings[index + 1:]


def oracle_following(node):
    """Nodes strictly after ``node`` in doc order, minus its subtree and
    attributes (XPath's following axis)."""
    tree = [n for n in ordered_nodes(node.root) if n.kind != "attribute"]
    index = tree.index(node)
    own = set(map(id, oracle_descendants(node)))
    return [n for n in tree[index + 1:] if id(n) not in own]


def oracle_preceding(node):
    tree = [n for n in ordered_nodes(node.root) if n.kind != "attribute"]
    index = tree.index(node)
    ancestors = set(map(id, oracle_ancestors(node)))
    return [n for n in reversed(tree[:index]) if id(n) not in ancestors]


def ids(nodes):
    return [id(n) for n in nodes]


def assert_axes_match_oracles(document: DocumentNode) -> None:
    everything = ordered_nodes(document)
    tree_nodes = [n for n in everything if n.kind != "attribute"]
    for node in everything:
        assert ids(_axis_nodes(node, "descendant")) == \
            ids(oracle_descendants(node))
        assert ids(_axis_nodes(node, "ancestor")) == \
            ids(oracle_ancestors(node))
        preceding_sib, following_sib = oracle_siblings(node)
        assert ids(_axis_nodes(node, "following-sibling")) == \
            ids(following_sib)
        assert ids(_axis_nodes(node, "preceding-sibling")) == \
            ids(preceding_sib)
        if node.kind == "attribute":
            # The spec anchors an attribute's following/preceding at its
            # parent element.
            assert ids(_axis_nodes(node, "following")) == \
                ids(oracle_following(node.parent))
            assert ids(_axis_nodes(node, "preceding")) == \
                ids(oracle_preceding(node.parent))
        else:
            assert ids(_axis_nodes(node, "following")) == \
                ids(oracle_following(node))
            assert ids(_axis_nodes(node, "preceding")) == \
                ids(oracle_preceding(node))
    # Interval containment tests agree with the parent-chain oracle.
    for outer in tree_nodes:
        ancestor_ids = set(ids(oracle_ancestors(outer)))
        for inner in tree_nodes:
            expected = id(inner) in ancestor_ids
            assert inner.is_ancestor_of(outer) is expected
            assert outer.is_descendant_of(inner) is expected


def assert_order_sort_matches(document: DocumentNode, shuffled) -> None:
    expected = [n for n in ordered_nodes(document)]
    assert ids(document_order(shuffled)) == ids(expected)


def assert_summary_fresh(document: DocumentNode) -> None:
    """The registered summary equals one rebuilt from scratch."""
    refreshed = get_summary(document, build=True)
    fresh = PathSummary.build(document)
    assert {path: ids(nodes) for path, nodes in refreshed.entries.items()} \
        == {path: ids(nodes) for path, nodes in fresh.entries.items()}


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(spec=tree_specs(), data=st.data())
def test_axes_match_naive_oracle(spec, data):
    document = build_document(spec)
    assert_axes_match_oracles(document)
    everything = ordered_nodes(document)
    shuffled = data.draw(st.permutations(everything))
    # Duplicates must collapse: document_order dedups by identity.
    assert_order_sort_matches(document, list(shuffled) + shuffled[:3])


@settings(max_examples=200, deadline=None)
@given(spec=tree_specs(),
       ops=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 1000),
                              st.integers(0, 1000)),
                    min_size=1, max_size=4),
       data=st.data())
def test_axes_match_oracle_after_mutation(spec, ops, data):
    document = build_document(spec)
    build_summary(document)
    # Force the numbering so mutations must *invalidate*, not just
    # compute fresh.
    document.structure()
    assert_axes_match_oracles(document)

    fresh_tag = iter(range(10_000))
    for op, pick, position in ops:
        elements = [n for n in ordered_nodes(document)
                    if n.kind == "element"]
        if op == 0:  # insert a new element under a random element
            parent = elements[pick % len(elements)]
            parent.insert_child(position % (len(parent.children) + 1),
                                ElementNode(QName("", f"n{next(fresh_tag)}")))
        elif op == 1:  # insert a text node
            parent = elements[pick % len(elements)]
            parent.insert_child(position % (len(parent.children) + 1),
                                TextNode("m"))
        elif op == 2:  # remove a child (keep the root element in place)
            candidates = [n for n in elements if n.children]
            if not candidates:
                continue
            parent = candidates[pick % len(candidates)]
            parent.remove_child(parent.children[position
                                                % len(parent.children)])
        else:  # remove an attribute
            candidates = [n for n in elements if n.attributes]
            if not candidates:
                continue
            parent = candidates[pick % len(candidates)]
            parent.remove_attribute(
                parent.attributes[position % len(parent.attributes)])

    assert_axes_match_oracles(document)
    everything = ordered_nodes(document)
    shuffled = data.draw(st.permutations(everything))
    assert_order_sort_matches(document, list(shuffled))
    assert_summary_fresh(document)
