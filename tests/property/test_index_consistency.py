"""Property: mid-mutation index failures never skew observable state.

For a failure injected at *any* index-insert site — each xml index,
then the relational index — during an insert, the database afterwards
is indistinguishable from one that never attempted the insert:
catalog row counts, xml-index and rel-index contents, and per-document
path summaries all match, and every one of the paper's 30 queries is
byte-identical to the never-failed oracle.  When the injection point
lies beyond the last site the insert succeeds, and the state must
instead match an oracle that performed the same insert.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage.catalog import Database
from repro.storage.pathsummary import get_summary
from repro.storage.table import StoredDocument
from repro.workload.paperqueries import (PAPER_QUERIES,
                                         load_paper_fixture,
                                         run_paper_query)


class Boom(RuntimeError):
    pass


class Injector:
    """Raises at the ``fail_at``-th index-insert call, counts the rest."""

    def __init__(self, fail_at: int):
        self.fail_at = fail_at
        self.calls = 0

    def wrap(self, bound_method):
        def inner(*args, **kwargs):
            site = self.calls
            self.calls += 1
            if site == self.fail_at:
                raise Boom(f"injected failure at index site {site}")
            return bound_method(*args, **kwargs)
        return inner


def build_database() -> Database:
    database = Database()
    load_paper_fixture(database)          # 3 xml indexes via DDL
    database.create_relational_index("idx_ordid", "orders", "ordid")
    return database


def order_xml(prices: list[str], custid: int | None) -> str:
    parts = ["<order>"]
    if custid is not None:
        parts.append(f"<custid>{custid}</custid>")
    for price in prices:
        parts.append(f"<lineitem price=\"{price}\">"
                     f"<product><id>x</id></product></lineitem>")
    parts.append("</order>")
    return "".join(parts)


def observable_state(database: Database) -> dict:
    state = {
        "rows": {name: len(table.rows)
                 for name, table in database.tables.items()},
        "xml_indexes": {name: len(index)
                        for name, index in database.xml_indexes.items()},
        "rel_indexes": {name: len(index)
                        for name, index in database.rel_indexes.items()},
    }
    summaries = []
    for row in database.table("orders").rows:
        stored = row.values["orddoc"]
        assert isinstance(stored, StoredDocument)
        summary = get_summary(stored.document, build=True)
        summaries.append(sorted(
            (tuple(str(component) for component in path), count)
            for path, count in summary.counts().items()))
    state["summaries"] = sorted(map(tuple, summaries))
    return state


# An insert into orders touches three index sites in order:
# li_price, o_custid (xml), then idx_ordid (rel).  fail_at == 3 is
# past the last site: the insert succeeds.
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fail_at=st.integers(min_value=0, max_value=3),
       prices=st.lists(
           st.sampled_from(["99.50", "150", "20 USD", "0", "7.25"]),
           max_size=3),
       custid=st.one_of(st.none(),
                        st.integers(min_value=1001, max_value=1003)))
def test_injected_failure_leaves_state_consistent(fail_at, prices, custid):
    subject = build_database()
    oracle = build_database()
    extra = {"ordid": 99, "orddoc": order_xml(prices, custid)}

    injector = Injector(fail_at)
    li_price = subject.xml_indexes["li_price"]
    o_custid = subject.xml_indexes["o_custid"]
    idx_ordid = subject.rel_indexes["idx_ordid"]
    patched = [(li_price, "index_document"),
               (o_custid, "index_document"),
               (idx_ordid, "insert_row")]
    originals = [getattr(obj, name) for obj, name in patched]
    for (obj, name), original in zip(patched, originals):
        setattr(obj, name, injector.wrap(original))
    try:
        subject.insert("orders", extra)
        succeeded = True
    except Boom:
        succeeded = False
    finally:
        for (obj, name), original in zip(patched, originals):
            setattr(obj, name, original)

    assert succeeded == (fail_at >= 3)
    if succeeded:
        oracle.insert("orders", extra)

    assert observable_state(subject) == observable_state(oracle)
    for number in PAPER_QUERIES:
        assert (run_paper_query(subject, number)
                == run_paper_query(oracle, number)), (
            f"query {number} diverged after injection at site {fail_at}")
