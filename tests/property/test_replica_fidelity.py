"""Replica fidelity: checkpoint + shipped WAL tail == the primary.

Hypothesis drives a randomized DDL+DML workload against a durable
primary — inserts, predicate deletes, index create/drop, scratch-table
create/drop, and checkpoints at arbitrary cut points.  A replica is
then bootstrapped exactly the way the process pool does it: the latest
on-disk checkpoint document (or nothing, if the workload never
checkpointed) plus :func:`repro.durability.wal.tail_wal` of everything
after it.  The oracle is the paper's own workload: all 30 numbered
queries must answer **byte-identically** on primary and replica —
indexes, path summaries and schemas are derived state the replica must
rebuild from the log alone.

The freshness watermark is tested at the same boundary: a replica
built from the checkpoint but *without* the tail sits behind the
primary's LSN and must refuse (:class:`StaleReplicaError`) rather than
serve the stale snapshot.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.durability import WAL_NAME, DurableDatabase
from repro.durability.checkpoint import CHECKPOINT_NAME
from repro.durability.wal import tail_wal
from repro.errors import ReplicationError, StaleReplicaError
from repro.parallel import ReplicaDatabase, build_replica
from repro.workload.paperqueries import (PAPER_ORDERS, PAPER_QUERIES,
                                         load_paper_fixture,
                                         run_paper_query)

# Each op is (kind, argument) — interpreted by _apply_op so hypothesis
# shrinks over plain data, not callables.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 6)),
        st.tuples(st.just("delete"), st.integers(2, 5)),
        st.tuples(st.just("toggle-index"), st.integers(0, 2)),
        st.tuples(st.just("toggle-table"), st.just(0)),
        st.tuples(st.just("checkpoint"), st.just(0)),
    ),
    min_size=0, max_size=10)

_NEXT_ORDID = 100


def _apply_op(database: DurableDatabase, op: tuple[str, int]) -> None:
    global _NEXT_ORDID
    kind, argument = op
    if kind == "insert":
        _NEXT_ORDID += 1
        database.insert("orders", {"ordid": _NEXT_ORDID,
                                   "orddoc": PAPER_ORDERS[argument][1]})
    elif kind == "delete":
        database.delete_rows(
            "orders",
            lambda values: values["ordid"] >= 100
            and values["ordid"] % argument == 0)
    elif kind == "toggle-index":
        name = f"prop_idx_{argument}"
        if name in database.xml_indexes:
            database.drop_index(name)
        else:
            database.create_xml_index(
                name, "orders", "orddoc",
                "//lineitem/@quantity", "DOUBLE")
    elif kind == "toggle-table":
        if "scratch" in database.tables:
            database.drop_table("scratch")
        else:
            database.create_table("scratch", [("k", "INTEGER"),
                                              ("v", "VARCHAR(8)")])
    elif kind == "checkpoint":
        database.checkpoint()


def _ship_replica(database: DurableDatabase,
                  directory: Path) -> ReplicaDatabase:
    """Bootstrap exactly as the pool's workers do: checkpoint + tail."""
    database.sync()
    checkpoint_path = directory / CHECKPOINT_NAME
    state = (json.loads(checkpoint_path.read_text())
             if checkpoint_path.exists() else None)
    after_lsn = state["last_lsn"] if state else 0
    records = tail_wal(directory / WAL_NAME, after_lsn=after_lsn)
    return build_replica(state, records,
                         index_order=database.index_order)


class TestReplicaFidelity:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=_OPS)
    def test_all_30_paper_queries_byte_identical(self, ops):
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp)
            with DurableDatabase(directory) as database:
                load_paper_fixture(database)
                for op in ops:
                    _apply_op(database, op)
                replica = _ship_replica(database, directory)
                assert replica.last_applied_lsn == \
                    database.wal.last_lsn
                for number in PAPER_QUERIES:
                    assert run_paper_query(replica, number) == \
                        run_paper_query(database, number), \
                        f"paper query {number} diverged for ops {ops}"

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=_OPS)
    def test_behind_the_watermark_refuses_stale_reads(self, ops):
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp)
            with DurableDatabase(directory) as database:
                load_paper_fixture(database)
                database.checkpoint()
                for op in ops:
                    # Keep the workload strictly past the checkpoint so
                    # a tail-less replica is genuinely behind.
                    if op[0] != "checkpoint":
                        _apply_op(database, op)
                database.insert("orders",
                                {"ordid": 9999,
                                 "orddoc": PAPER_ORDERS[0][1]})
                database.sync()
                state = json.loads(
                    (directory / CHECKPOINT_NAME).read_text())
                stale = build_replica(state, [],
                                      index_order=database.index_order)
                required = database.wal.last_lsn
                assert stale.last_applied_lsn < required
                with pytest.raises(StaleReplicaError) as excinfo:
                    stale.ensure_fresh(required)
                assert excinfo.value.required_lsn == required
                assert excinfo.value.last_applied_lsn == \
                    stale.last_applied_lsn
                # ...and the missing tail catches it up exactly.
                for lsn, record in tail_wal(directory / WAL_NAME,
                                            after_lsn=state["last_lsn"]):
                    stale.apply_wal_record(lsn, record)
                stale.ensure_fresh(required)
                for number in (1, 3, 11, 25):
                    assert run_paper_query(stale, number) == \
                        run_paper_query(database, number)


class TestReplicaSealing:
    def test_direct_writes_refused_after_bootstrap(self, tmp_path):
        with DurableDatabase(tmp_path / "state") as database:
            load_paper_fixture(database)
            replica = _ship_replica(database, tmp_path / "state")
        with pytest.raises(ReplicationError):
            replica.insert("orders", {"ordid": 1,
                                      "orddoc": "<order/>"})
        with pytest.raises(ReplicationError):
            replica.create_table("t", [("x", "INTEGER")])
        with pytest.raises(ReplicationError):
            replica.delete_rows("orders")

    def test_idempotent_redelivery_is_skipped(self, tmp_path):
        with DurableDatabase(tmp_path / "state") as database:
            load_paper_fixture(database)
            database.sync()
            records = tail_wal(tmp_path / "state" / WAL_NAME)
            replica = build_replica(None, records)
            before = replica.last_applied_lsn
            # Ship the same tail again: every record must be skipped.
            assert all(not replica.apply_wal_record(lsn, record)
                       for lsn, record in records)
            assert replica.last_applied_lsn == before
            assert run_paper_query(replica, 1) == \
                run_paper_query(database, 1)
