"""Property-based tests: XML serialize/parse round-trips.

The durability checkpoints store documents as serialized text, so the
serializer output must be a *fixed point*: serialize → parse →
serialize is byte-identical for every document the engine can hold,
across comments, processing instructions, namespaces, mixed content,
and attribute edge characters.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xdm.nodes import (AttributeNode, CommentNode, DocumentNode,
                             ElementNode, ProcessingInstructionNode,
                             TextNode)
from repro.xdm.qname import QName
from repro.xmlio import parse_document, serialize

names = st.sampled_from(["a", "b", "order", "lineitem", "price", "x1"])
# Text without '\r' (XML line-end normalization folds CR) — content is
# otherwise arbitrary and must round-trip through escaping.
texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    min_size=1, max_size=20)
pi_targets = st.sampled_from(["style", "target", "app"])


@st.composite
def processing_instructions(draw):
    content = draw(texts).replace("?>", "__").strip()
    return ProcessingInstructionNode(draw(pi_targets), content)


@st.composite
def elements(draw, depth: int = 0):
    name = draw(names)
    attribute_names = draw(st.lists(names, unique=True, max_size=3))
    attributes = [AttributeNode(QName("", attribute_name), draw(texts))
                  for attribute_name in attribute_names]
    children = []
    if depth < 3:
        for kind in draw(st.lists(
                st.sampled_from(["text", "element", "comment", "pi"]),
                max_size=4)):
            if kind == "text":
                children.append(TextNode(draw(texts)))
            elif kind == "comment":
                comment = draw(texts).replace("--", "xx").rstrip("-")
                children.append(CommentNode(comment))
            elif kind == "pi":
                children.append(draw(processing_instructions()))
            else:
                children.append(draw(elements(depth=depth + 1)))
    merged = []
    for child in children:  # adjacent text merges on reparse: pre-merge
        if merged and child.kind == "text" and merged[-1].kind == "text":
            merged[-1] = TextNode(merged[-1].content + child.content)
        else:
            merged.append(child)
    return ElementNode(QName("", name), attributes=attributes,
                       children=merged)


@given(elements())
def test_serialize_parse_roundtrip(root):
    document = DocumentNode([root])
    text = serialize(document)
    reparsed = parse_document(text)
    assert serialize(reparsed) == text
    assert _shape(reparsed.root_element) == _shape(root)


def _shape(node):
    if node.kind == "element":
        return ("element", node.name.local,
                sorted((attribute.name.local, attribute.string_value())
                       for attribute in node.attributes),
                [_shape(child) for child in node.children])
    return (node.kind, node.string_value())


@given(elements())
def test_string_value_preserved(root):
    document = DocumentNode([root])
    reparsed = parse_document(serialize(document))
    assert reparsed.string_value() == document.string_value()


# Serialized text the checkpoint layer must treat as a fixed point:
# serialize(parse(text)) == text, covering comments, PIs, namespace
# declarations (default and prefixed, including re-declaration), mixed
# content, and attribute values with every escapable character.
FIXED_POINT_DOCUMENTS = [
    "<a/>",
    "<a b=\"1\"/>",
    "<a><!--note--><b/><?pi data?></a>",
    "<a><?pi?>text<b/>tail</a>",
    "<order xmlns=\"http://example.com/o\">"
    "<custid>7</custid></order>",
    "<p:a xmlns:p=\"urn:one\"><p:b/>"
    "<q:c xmlns:q=\"urn:two\" q:attr=\"v\"/></p:a>",
    "<p:a xmlns:p=\"urn:one\">"
    "<p:inner xmlns:p=\"urn:redeclared\"/></p:a>",
    "<a attr=\"&lt;&amp;&quot;'&gt;\">&lt;body&amp;&gt;</a>",
    "<price currency=\"USD\">99.50<note>mixed</note>USD</price>",
    "<a>  leading and trailing  </a>",
    "<a><b/><c/><b/></a>",
]


@pytest.mark.parametrize("text", FIXED_POINT_DOCUMENTS)
def test_serializer_is_fixed_point(text):
    once = serialize(parse_document(text))
    assert once == text
    assert serialize(parse_document(once)) == once


def test_empty_text_child_collapses_to_self_closing():
    """`<a></a>` reparses as childless, so an element whose children
    serialize to nothing must emit `<a/>` — otherwise checkpointed
    documents drift on every save/recover cycle."""
    root = ElementNode(QName("", "a"), children=[TextNode("")])
    text = serialize(DocumentNode([root]))
    assert text == "<a/>"
    assert serialize(parse_document(text)) == text


@given(elements())
def test_double_roundtrip_byte_identical(root):
    """serialize∘parse is idempotent: the second pass changes nothing."""
    once = serialize(parse_document(serialize(DocumentNode([root]))))
    assert serialize(parse_document(once)) == once
