"""Property-based tests: XML serialize/parse round-trips."""

from hypothesis import given
from hypothesis import strategies as st

from repro.xdm.nodes import (AttributeNode, CommentNode, DocumentNode,
                             ElementNode, TextNode)
from repro.xdm.qname import QName
from repro.xmlio import parse_document, serialize

names = st.sampled_from(["a", "b", "order", "lineitem", "price", "x1"])
# Text without '\r' (XML line-end normalization folds CR) — content is
# otherwise arbitrary and must round-trip through escaping.
texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    min_size=1, max_size=20)


@st.composite
def elements(draw, depth: int = 0):
    name = draw(names)
    attribute_names = draw(st.lists(names, unique=True, max_size=3))
    attributes = [AttributeNode(QName("", attribute_name), draw(texts))
                  for attribute_name in attribute_names]
    children = []
    if depth < 3:
        for kind in draw(st.lists(
                st.sampled_from(["text", "element", "comment"]),
                max_size=4)):
            if kind == "text":
                children.append(TextNode(draw(texts)))
            elif kind == "comment":
                comment = draw(texts).replace("--", "xx").rstrip("-")
                children.append(CommentNode(comment))
            else:
                children.append(draw(elements(depth=depth + 1)))
    merged = []
    for child in children:  # adjacent text merges on reparse: pre-merge
        if merged and child.kind == "text" and merged[-1].kind == "text":
            merged[-1] = TextNode(merged[-1].content + child.content)
        else:
            merged.append(child)
    return ElementNode(QName("", name), attributes=attributes,
                       children=merged)


@given(elements())
def test_serialize_parse_roundtrip(root):
    document = DocumentNode([root])
    text = serialize(document)
    reparsed = parse_document(text)
    assert serialize(reparsed) == text
    assert _shape(reparsed.root_element) == _shape(root)


def _shape(node):
    if node.kind == "element":
        return ("element", node.name.local,
                sorted((attribute.name.local, attribute.string_value())
                       for attribute in node.attributes),
                [_shape(child) for child in node.children])
    return (node.kind, node.string_value())


@given(elements())
def test_string_value_preserved(root):
    document = DocumentNode([root])
    reparsed = parse_document(serialize(document))
    assert reparsed.string_value() == document.string_value()
