"""Property-based tests: B+Tree vs a dictionary model."""

import pytest
from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, rule)

from repro.storage.btree import BPlusTree

keys = st.integers(min_value=-50, max_value=50)
values = st.integers(min_value=0, max_value=5)


@given(st.lists(st.tuples(keys, values)))
def test_insert_matches_model(pairs):
    tree = BPlusTree(order=4)
    model = defaultdict(list)
    for key, value in pairs:
        tree.insert(key, value)
        model[key].append(value)
    tree.check_invariants()
    assert list(tree.keys()) == sorted(model)
    for key, bucket in model.items():
        assert sorted(tree.get(key)) == sorted(bucket)
    assert len(tree) == sum(len(bucket) for bucket in model.values())


@given(st.lists(st.tuples(keys, values), max_size=80),
       keys, keys, st.booleans(), st.booleans())
def test_range_scan_matches_model(pairs, low, high, low_inc, high_inc):
    tree = BPlusTree(order=4)
    model = []
    for key, value in pairs:
        tree.insert(key, value)
        model.append((key, value))
    expected = sorted(
        (key, value) for key, value in model
        if (key > low or (low_inc and key == low)) and
           (key < high or (high_inc and key == high)))
    got = sorted(tree.scan(low, high, low_inc, high_inc))
    assert got == expected


#: (key, value, is_delete) — one interleaved operation.
operations = st.lists(st.tuples(keys, values, st.booleans()), max_size=120)


@given(operations, keys, keys, st.booleans(), st.booleans())
def test_delete_then_range_scan_matches_model(ops, low, high, low_inc,
                                              high_inc):
    """Random insert/delete interleavings, then scans vs the model.

    This is the property that pins leaf-chain maintenance under
    deletion: after merges/borrows, a full scan and an arbitrary range
    scan must both agree with a dictionary model — a mis-spliced
    ``next`` pointer duplicates or drops entries even when ``keys()``
    still looks sorted.
    """
    tree = BPlusTree(order=4)
    model: dict[int, list[int]] = defaultdict(list)
    for key, value, is_delete in ops:
        if is_delete:
            assert tree.delete(key, value) == \
                (value in model.get(key, []))
            if value in model.get(key, []):
                model[key].remove(value)
                if not model[key]:
                    del model[key]
        else:
            tree.insert(key, value)
            model[key].append(value)
    tree.check_invariants()
    expected_full = sorted((key, value) for key, bucket in model.items()
                           for value in bucket)
    assert sorted(tree.scan()) == expected_full
    expected_range = [
        (key, value) for key, value in expected_full
        if (key > low or (low_inc and key == low)) and
           (key < high or (high_inc and key == high))]
    assert sorted(tree.scan(low, high, low_inc, high_inc)) == \
        sorted(expected_range)


class _UnsplicedTree(BPlusTree):
    """BPlusTree with the leaf-merge ``next`` splice removed — the
    regression the invariant checker and scan property must catch."""

    def _merge(self, parent, left_index, left, right):
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.buckets.extend(right.buckets)
            # BUG under test: ``left.next = right.next`` omitted, so the
            # chain still runs through the detached ``right`` leaf.
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)


def _mass_delete(tree):
    for key in range(12):
        tree.insert(key, key)
    for key in range(12):
        tree.delete(key)
        tree.check_invariants()


def test_merge_splices_leaf_next_pointer():
    """Deleting down through leaf merges keeps the chain exactly the
    leaves reachable by descent; the unspliced mutant must be caught."""
    _mass_delete(BPlusTree(order=4))  # the real tree survives

    with pytest.raises(AssertionError):
        _mass_delete(_UnsplicedTree(order=4))


def test_delete_then_full_scan_after_merges():
    """Deterministic merge cascade: scans stay duplicate-free."""
    tree = BPlusTree(order=4)
    for key in range(20):
        tree.insert(key, key * 10)
    for key in list(range(0, 20, 2)):
        assert tree.delete(key)
        tree.check_invariants()
        remaining = sorted(k for k in range(20)
                           if k > key and k % 2 == 0 or k % 2 == 1)
        assert [k for k, _v in tree.scan()] == remaining


class BTreeMachine(RuleBasedStateMachine):
    """Stateful test: interleaved inserts/deletes keep invariants."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)
        self.model: dict[int, list[int]] = defaultdict(list)

    @rule(key=keys, value=values)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key].append(value)

    @rule(key=keys, value=values)
    def delete_entry(self, key, value):
        expected = value in self.model.get(key, [])
        got = self.tree.delete(key, value)
        assert got == expected
        if expected:
            self.model[key].remove(value)
            if not self.model[key]:
                del self.model[key]

    @rule(key=keys)
    def delete_key(self, key):
        expected = key in self.model
        got = self.tree.delete(key)
        assert got == expected
        self.model.pop(key, None)

    @invariant()
    def matches_model(self):
        self.tree.check_invariants()
        assert list(self.tree.keys()) == sorted(self.model)
        assert len(self.tree) == sum(len(bucket)
                                     for bucket in self.model.values())

    @invariant()
    def full_scan_matches_model(self):
        # Walks the leaf chain including buckets: catches chain damage
        # that keys()/key_count-based checks cannot see.
        assert sorted(self.tree.scan()) == sorted(
            (key, value) for key, bucket in self.model.items()
            for value in bucket)


TestBTreeMachine = BTreeMachine.TestCase
TestBTreeMachine.settings = settings(max_examples=30,
                                     stateful_step_count=40,
                                     deadline=None)
