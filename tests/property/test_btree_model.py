"""Property-based tests: B+Tree vs a dictionary model."""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, rule)

from repro.storage.btree import BPlusTree

keys = st.integers(min_value=-50, max_value=50)
values = st.integers(min_value=0, max_value=5)


@given(st.lists(st.tuples(keys, values)))
def test_insert_matches_model(pairs):
    tree = BPlusTree(order=4)
    model = defaultdict(list)
    for key, value in pairs:
        tree.insert(key, value)
        model[key].append(value)
    tree.check_invariants()
    assert list(tree.keys()) == sorted(model)
    for key, bucket in model.items():
        assert sorted(tree.get(key)) == sorted(bucket)
    assert len(tree) == sum(len(bucket) for bucket in model.values())


@given(st.lists(st.tuples(keys, values), max_size=80),
       keys, keys, st.booleans(), st.booleans())
def test_range_scan_matches_model(pairs, low, high, low_inc, high_inc):
    tree = BPlusTree(order=4)
    model = []
    for key, value in pairs:
        tree.insert(key, value)
        model.append((key, value))
    expected = sorted(
        (key, value) for key, value in model
        if (key > low or (low_inc and key == low)) and
           (key < high or (high_inc and key == high)))
    got = sorted(tree.scan(low, high, low_inc, high_inc))
    assert got == expected


class BTreeMachine(RuleBasedStateMachine):
    """Stateful test: interleaved inserts/deletes keep invariants."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)
        self.model: dict[int, list[int]] = defaultdict(list)

    @rule(key=keys, value=values)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key].append(value)

    @rule(key=keys, value=values)
    def delete_entry(self, key, value):
        expected = value in self.model.get(key, [])
        got = self.tree.delete(key, value)
        assert got == expected
        if expected:
            self.model[key].remove(value)
            if not self.model[key]:
                del self.model[key]

    @rule(key=keys)
    def delete_key(self, key):
        expected = key in self.model
        got = self.tree.delete(key)
        assert got == expected
        self.model.pop(key, None)

    @invariant()
    def matches_model(self):
        self.tree.check_invariants()
        assert list(self.tree.keys()) == sorted(self.model)
        assert len(self.tree) == sum(len(bucket)
                                     for bucket in self.model.values())


TestBTreeMachine = BTreeMachine.TestCase
TestBTreeMachine.settings = settings(max_examples=30,
                                     stateful_step_count=40,
                                     deadline=None)
