"""Property-based soundness test for pattern containment.

If ``pattern_contains(P, Q)`` then every concrete feasible path matched
by Q must be matched by P — checked against randomly generated patterns
and randomly generated document paths.  (The reverse direction —
completeness — is covered by the curated table in unit tests.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import (PathComponent, parse_xmlpattern,
                                 pattern_contains)

names = st.sampled_from(["a", "b", "c", "order", "lineitem", "price"])
uris = st.sampled_from(["", "http://one", "http://two"])


@st.composite
def pattern_texts(draw) -> str:
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        separator = draw(st.sampled_from(["/", "//"]))
        test = draw(st.sampled_from(
            ["NAME", "*", "*:NAME", "@NAME", "@*", "text()", "node()"]))
        test = test.replace("NAME", draw(names))
        steps.append(f"{separator}{test}")
    text = "".join(steps)
    # Attribute / text steps only make sense in final position —
    # rearrange by truncating after the first such step.
    for index, step in enumerate(steps[:-1]):
        if "@" in step or "text()" in step:
            text = "".join(steps[:index + 1])
            break
    return text


@st.composite
def document_paths(draw) -> list[PathComponent]:
    """Feasible root-to-node paths: intermediates are elements, and an
    attribute/text node always hangs off an element (depth >= 2)."""
    depth = draw(st.integers(min_value=1, max_value=5))
    final_kind = draw(st.sampled_from(["element", "attribute", "text"]))
    if final_kind != "element":
        depth = max(depth, 2)
    path = [PathComponent("element", draw(uris), draw(names))
            for _ in range(depth - 1)]
    if final_kind == "element":
        path.append(PathComponent("element", draw(uris), draw(names)))
    elif final_kind == "attribute":
        path.append(PathComponent("attribute", "", draw(names)))
    else:
        path.append(PathComponent("text"))
    return path


@settings(max_examples=300, deadline=None)
@given(pattern_texts(), pattern_texts(), document_paths())
def test_containment_soundness(index_text, query_text, path):
    index_pattern = parse_xmlpattern(index_text)
    query_pattern = parse_xmlpattern(query_text)
    if pattern_contains(index_pattern, query_pattern):
        if query_pattern.matches_path(path):
            assert index_pattern.matches_path(path), (
                f"containment claimed {index_text!r} ⊇ {query_text!r} "
                f"but {path} matches only the query")


@settings(max_examples=100, deadline=None)
@given(pattern_texts())
def test_containment_reflexive(text):
    pattern = parse_xmlpattern(text)
    assert pattern_contains(pattern, pattern)


@settings(max_examples=100, deadline=None)
@given(pattern_texts(), document_paths())
def test_wildcard_attribute_superset(text, path):
    """//@* must contain every attribute-final pattern."""
    pattern = parse_xmlpattern(text)
    broad = parse_xmlpattern("//@*")
    final_kinds = {test.kind for test in pattern.final_tests()}
    if final_kinds == {"attribute"}:
        assert pattern_contains(broad, pattern)
