"""Property-based test of Definition 1 — the paper's core invariant.

    An index I is eligible to answer predicate P of query Q iff for any
    collection D:  Q(D) = Q(I(P, D)).

We generate random order collections (numeric, string, missing and
multi-valued prices; attribute and element forms; namespaces) and a
family of queries the analyzer deems index-eligible, then check that
executing with index prefiltering returns exactly the same sequence as
a full collection scan.  Queries the analyzer rejects are *also*
executed both ways — a correct analyzer never makes them disagree
because rejected queries simply run unfiltered, but this guards the
plumbing.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database

prices = st.one_of(
    st.integers(min_value=0, max_value=300),
    st.floats(min_value=0, max_value=300, allow_nan=False,
              allow_infinity=False).map(lambda value: round(value, 2)),
    st.sampled_from(["20 USD", "n/a", ""]),
)

lineitems = st.lists(prices, min_size=0, max_size=3)


def order_doc(item_prices, use_elements: bool) -> str:
    pieces = []
    for price in item_prices:
        if use_elements:
            pieces.append(f"<lineitem><price>{price}</price></lineitem>")
        else:
            pieces.append(f'<lineitem price="{price}"/>')
    return f"<order>{''.join(pieces)}</order>"


collections = st.lists(
    st.tuples(lineitems, st.booleans()), min_size=0, max_size=12)

QUERIES = [
    "for $i in db2-fn:xmlcolumn('T.D')//order[lineitem/@price>100] "
    "return $i",
    "db2-fn:xmlcolumn('T.D')//lineitem[@price > 100]",
    "db2-fn:xmlcolumn('T.D')//lineitem[@price = 150]",
    "db2-fn:xmlcolumn('T.D')//lineitem[@price >= 100 and @price <= 200]",
    "db2-fn:xmlcolumn('T.D')//lineitem[price > 100 and price < 200]",
    "db2-fn:xmlcolumn('T.D')//lineitem[price/data()[. > 50 and . < 250]]",
    "for $o in db2-fn:xmlcolumn('T.D')/order "
    "where $o/lineitem/@price > 100 return $o",
    "for $o in db2-fn:xmlcolumn('T.D')/order "
    "let $p := $o/lineitem/@price where $p > 42.5 return $o",
    "for $o in db2-fn:xmlcolumn('T.D')/order "
    "return $o/lineitem[@price < 50]",
    "for $o in db2-fn:xmlcolumn('T.D')/order "
    "where $o/lineitem/@price > 50 or $o/lineitem/price > 250 return $o",
    'db2-fn:xmlcolumn(\'T.D\')//order[lineitem/@price > "100"]',
]


def build_db(collection) -> Database:
    database = Database(index_order=4)
    database.create_table("t", [("d", "XML")])
    for item_prices, use_elements in collection:
        database.insert("t", {"d": order_doc(item_prices, use_elements)})
    database.create_xml_index("idx_attr", "t", "d",
                              "//lineitem/@price", "DOUBLE")
    database.create_xml_index("idx_elem", "t", "d",
                              "//lineitem/price", "DOUBLE")
    database.create_xml_index("idx_str", "t", "d",
                              "//lineitem/@price", "VARCHAR")
    return database


@settings(max_examples=60, deadline=None)
@given(collections, st.integers(min_value=0, max_value=len(QUERIES) - 1))
def test_definition1_invariant(collection, query_index):
    database = build_db(collection)
    query = QUERIES[query_index]
    with_index = database.xquery(query, use_indexes=True)
    without = database.xquery(query, use_indexes=False)
    assert with_index.serialize() == without.serialize(), \
        f"Definition 1 violated for {query!r}"


@settings(max_examples=25, deadline=None)
@given(collections)
def test_prefilter_never_scans_more(collection):
    database = build_db(collection)
    query = ("for $i in db2-fn:xmlcolumn('T.D')"
             "//order[lineitem/@price>100] return $i")
    with_index = database.xquery(query, use_indexes=True)
    without = database.xquery(query, use_indexes=False)
    assert with_index.stats.docs_scanned <= without.stats.docs_scanned


@settings(max_examples=25, deadline=None)
@given(collections, st.randoms(use_true_random=False))
def test_index_maintenance_under_deletes(collection, rng):
    database = build_db(collection)
    doomed = {stored.doc_id for stored in database.documents("t", "d")
              if rng.random() < 0.5}
    database.delete_rows(
        "t", lambda values: values["d"] is not None and
        values["d"].doc_id in doomed)
    query = "db2-fn:xmlcolumn('T.D')//lineitem[@price > 100]"
    with_index = database.xquery(query, use_indexes=True)
    without = database.xquery(query, use_indexes=False)
    assert with_index.serialize() == without.serialize()
