"""Shared fixtures: the paper's 3-table schema with engineered documents.

The fixture documents are chosen to hit every edge the paper discusses:
mixed-content prices ("99.50USD"), string prices ("20 USD"), multi-price
elements (250/50), namespaces, and missing-price orders.
"""

from __future__ import annotations

import pytest

from repro import Database


@pytest.fixture()
def db() -> Database:
    return Database()


#: (ordid, document) — the running examples from the paper, §2.2/§3.
PAPER_ORDERS = [
    # Doc 1: the §2.2 example with no price attribute at all.
    (1, "<order><date>January 1, 2001</date>"
        "<lineitem><product><id>widget</id></product></lineitem>"
        "</order>"),
    # Doc 2: the §2.2 example with price 99.50.
    (2, "<order><date>January 1, 2002</date>"
        "<lineitem price=\"99.50\"><product><id>gadget</id></product>"
        "</lineitem></order>"),
    # Doc 3: qualifying order (price 150) plus a cheap item, custid.
    (3, "<order><custid>1001</custid>"
        "<lineitem price=\"150\" quantity=\"2\">"
        "<product><id>17</id></product></lineitem>"
        "<lineitem price=\"90\"><product><id>18</id></product>"
        "</lineitem></order>"),
    # Doc 4: string price "20 USD" (the §3.1 example).
    (4, "<order><custid>1002</custid>"
        "<lineitem price=\"20 USD\"><product><id>19</id></product>"
        "</lineitem></order>"),
    # Doc 5: element prices with the §3.10 multi-price 250/50 hazard.
    (5, "<order><custid>1001</custid>"
        "<lineitem><price>250</price><price>50</price>"
        "<product><id>20</id></product></lineitem></order>"),
    # Doc 6: the §3.8 mixed-content price (99.50USD as string value).
    (6, "<order><date>January 1, 2003</date><custid>1003</custid>"
        "<lineitem><price>99.50<currency>USD</currency></price>"
        "<product><id>21</id></product></lineitem></order>"),
    # Doc 7: price in range, element form.
    (7, "<order><custid>1002</custid>"
        "<lineitem><price>120</price><product><id>17</id></product>"
        "</lineitem></order>"),
]

PAPER_CUSTOMERS = [
    (1, "<customer><id>1001</id><name>Ann</name><nation>1</nation>"
        "</customer>"),
    (2, "<customer><id>1002</id><name>Bob</name><nation>2</nation>"
        "</customer>"),
    (3, "<customer><id>1003</id><name>Cyd</name><nation>1</nation>"
        "</customer>"),
]

PAPER_PRODUCTS = [
    ("17", "trusty widget"),
    ("18", "spare gadget"),
    ("19", "imported flange"),
    ("20", "bulk sprocket"),
    ("21", "mixed bundle"),
]


@pytest.fixture()
def paper_db() -> Database:
    """The paper's schema, loaded with the engineered documents."""
    database = Database()
    database.create_table("customer", [("cid", "INTEGER"),
                                       ("cdoc", "XML")])
    database.create_table("orders", [("ordid", "INTEGER"),
                                     ("orddoc", "XML")])
    database.create_table("products", [("id", "VARCHAR(13)"),
                                       ("name", "VARCHAR(32)")])
    for ordid, document in PAPER_ORDERS:
        database.insert("orders", {"ordid": ordid, "orddoc": document})
    for cid, document in PAPER_CUSTOMERS:
        database.insert("customer", {"cid": cid, "cdoc": document})
    for product_id, name in PAPER_PRODUCTS:
        database.insert("products", {"id": product_id, "name": name})
    return database


@pytest.fixture()
def indexed_db(paper_db: Database) -> Database:
    """paper_db plus the paper's running-example indexes."""
    paper_db.execute(
        "CREATE INDEX li_price ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")
    paper_db.execute(
        "CREATE INDEX o_custid ON orders(orddoc) "
        "USING XMLPATTERN '//custid' AS DOUBLE")
    paper_db.execute(
        "CREATE INDEX c_custid ON customer(cdoc) "
        "USING XMLPATTERN '/customer/id' AS DOUBLE")
    return paper_db


def assert_same_results(database: Database, query: str) -> None:
    """Definition 1 as a test helper: index and scan runs must agree."""
    with_index = database.xquery(query, use_indexes=True)
    without = database.xquery(query, use_indexes=False)
    assert with_index.serialize() == without.serialize()
