"""Shared fixtures: the paper's 3-table schema with engineered documents.

The fixture documents live in :mod:`repro.workload.paperqueries` (one
canonical home shared with the CLI's ``repro ingest``/``repro qN``
commands and the durability crash-matrix oracle); this module re-exports
them so existing ``from tests.conftest import PAPER_ORDERS`` imports
keep working.

The documents are chosen to hit every edge the paper discusses: mixed-
content prices ("99.50USD"), string prices ("20 USD"), multi-price
elements (250/50), namespaces, and missing-price orders.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.workload.paperqueries import (PAPER_CUSTOMERS, PAPER_ORDERS,
                                         PAPER_PRODUCTS,
                                         load_paper_fixture)

__all__ = ["PAPER_ORDERS", "PAPER_CUSTOMERS", "PAPER_PRODUCTS",
           "assert_same_results"]


@pytest.fixture(autouse=True)
def _sanitizer_hard_failure():
    """Make runtime-sanitizer findings fail the test that caused them.

    The sanitizer (``REPRO_SANITIZE=1``) records violations instead of
    raising — it must observe the engine, not change its control flow.
    Under pytest that soft contract becomes hard: any violation left
    behind by a test fails that test with the rendered stacks.  A
    no-op when the sanitizer is off.
    """
    from repro.analysis import sanitizer
    sanitizer.drain()   # do not blame this test for earlier leftovers
    yield
    leftover = sanitizer.drain()
    if leftover:
        report = "\n\n".join(v.render() for v in leftover)
        pytest.fail(
            f"concurrency sanitizer recorded {len(leftover)} "
            f"violation(s):\n{report}")


@pytest.fixture()
def db() -> Database:
    return Database()


@pytest.fixture()
def paper_db() -> Database:
    """The paper's schema, loaded with the engineered documents."""
    database = Database()
    load_paper_fixture(database, with_indexes=False)
    return database


@pytest.fixture()
def indexed_db(paper_db: Database) -> Database:
    """paper_db plus the paper's running-example indexes."""
    paper_db.execute(
        "CREATE INDEX li_price ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")
    paper_db.execute(
        "CREATE INDEX o_custid ON orders(orddoc) "
        "USING XMLPATTERN '//custid' AS DOUBLE")
    paper_db.execute(
        "CREATE INDEX c_custid ON customer(cdoc) "
        "USING XMLPATTERN '/customer/id' AS DOUBLE")
    return paper_db


def assert_same_results(database: Database, query: str) -> None:
    """Definition 1 as a test helper: index and scan runs must agree."""
    with_index = database.xquery(query, use_indexes=True)
    without = database.xquery(query, use_indexes=False)
    assert with_index.serialize() == without.serialize()
