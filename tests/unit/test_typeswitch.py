"""Unit tests for typeswitch — dynamic-type dispatch for
schema-flexible data (the paper's §1 motivation)."""

import pytest

from repro.errors import XQueryStaticError
from repro.xmlio import parse_document, serialize_sequence
from repro.xquery.evaluator import evaluate as ev


def run(query: str, **variables) -> str:
    bound = {name: value if isinstance(value, list) else [value]
             for name, value in variables.items()}
    return serialize_sequence(ev(query, variables=bound))


class TestTypeswitch:
    def test_dispatch_on_atomic_type(self):
        query = ("typeswitch ({}) "
                 "case xs:integer return 'int' "
                 "case xs:string return 'str' "
                 "default return 'other'")
        assert run(query.format("1")) == "int"
        assert run(query.format("'x'")) == "str"
        assert run(query.format("1.5")) == "other"

    def test_dispatch_on_node_kind(self):
        query = ("typeswitch ($x) "
                 "case element() return 'element' "
                 "case attribute() return 'attribute' "
                 "case text() return 'text' "
                 "default return 'other'")
        doc = parse_document("<a b='1'>t</a>")
        root = doc.root_element
        assert run(query, x=root) == "element"
        assert run(query, x=root.attributes[0]) == "attribute"
        assert run(query, x=root.children[0]) == "text"
        assert run(query, x=doc) == "other"

    def test_case_variable_binding(self):
        query = ("typeswitch (5) "
                 "case $n as xs:integer return $n * 2 "
                 "default return 0")
        assert run(query) == "10"

    def test_default_variable_binding(self):
        query = ("typeswitch ('x') "
                 "case xs:integer return 0 "
                 "default $v return concat($v, '!')")
        assert run(query) == "x!"

    def test_occurrence_indicators(self):
        query = ("typeswitch ($x) "
                 "case xs:integer+ return 'some ints' "
                 "case xs:integer* return 'maybe ints' "
                 "default return 'other'")
        from repro.xdm import atomic
        assert run(query, x=[atomic.integer(1), atomic.integer(2)]) == \
            "some ints"
        assert run(query, x=[]) == "maybe ints"

    def test_first_matching_case_wins(self):
        query = ("typeswitch (1) "
                 "case item() return 'first' "
                 "case xs:integer return 'second' "
                 "default return 'none'")
        assert run(query) == "first"

    def test_untyped_attribute_dispatch(self):
        doc = parse_document("<a p='99.5'/>")
        query = ("typeswitch (data($x/@p)) "
                 "case xdt:untypedAtomic return 'untyped' "
                 "default return 'typed'")
        assert run(query, x=doc.root_element) == "untyped"

    def test_requires_case_clause(self):
        with pytest.raises(XQueryStaticError):
            ev("typeswitch (1) default return 0")

    def test_nested_in_flwor(self):
        query = ("for $x in (1, 'a', 2.5) return typeswitch ($x) "
                 "case xs:integer return 'i' "
                 "case xs:string return 's' "
                 "default return 'd'")
        assert run(query) == "i s d"

    def test_schema_evolution_dispatch(self):
        """The practical §2.1 use: branch on postal-code type."""
        from repro.schema import Schema, validate
        numeric = parse_document("<c><pc>95141</pc></c>")
        validate(numeric, Schema("v1").declare("pc", "xs:double"))
        stringy = parse_document("<c><pc>K1A 0B1</pc></c>")
        validate(stringy, Schema("v2").declare("pc", "xs:string"))
        query = ("typeswitch (data($d/c/pc)) "
                 "case xs:double return 'zip' "
                 "case xs:string return 'postal' "
                 "default return '?'")
        assert run(query, d=numeric) == "zip"
        assert run(query, d=stringy) == "postal"
