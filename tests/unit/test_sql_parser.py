"""Unit tests for the SQL/XML parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.parser import parse_statement


class TestSelect:
    def test_basic_select(self):
        statement = parse_statement(
            "SELECT ordid, orddoc FROM orders WHERE ordid = 1")
        assert len(statement.items) == 2
        assert statement.from_refs[0].name == "orders"
        assert isinstance(statement.where, ast.Comparison)

    def test_aliases(self):
        statement = parse_statement(
            "SELECT o.ordid FROM orders o, customer AS c")
        assert statement.from_refs[0].alias == "o"
        assert statement.from_refs[1].alias == "c"
        assert statement.items[0].expr.qualifier == "o"

    def test_select_item_alias(self):
        statement = parse_statement("SELECT ordid AS x FROM orders")
        assert statement.items[0].alias == "x"

    def test_condition_tree(self):
        statement = parse_statement(
            "SELECT a FROM t WHERE a = 1 AND (b = 2 OR NOT c = 3)")
        assert isinstance(statement.where, ast.AndCond)
        assert isinstance(statement.where.right, ast.OrCond)
        assert isinstance(statement.where.right.right, ast.NotCond)

    def test_and_or_precedence(self):
        statement = parse_statement(
            "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(statement.where, ast.OrCond)
        assert isinstance(statement.where.right, ast.AndCond)

    def test_is_null(self):
        statement = parse_statement(
            "SELECT a FROM t WHERE a IS NOT NULL")
        assert isinstance(statement.where, ast.IsNullCond)
        assert statement.where.negated

    def test_order_by(self):
        statement = parse_statement(
            "SELECT a FROM t ORDER BY a DESC, b")
        assert statement.order_by[0][1] is True
        assert statement.order_by[1][1] is False

    def test_values(self):
        statement = parse_statement("VALUES (1, 'two')")
        assert isinstance(statement, ast.ValuesStmt)
        assert statement.exprs[1].value == "two"

    def test_trailing_comma_in_from_tolerated(self):
        # Queries 15/16 in the paper have a trailing comma.
        statement = parse_statement(
            "SELECT a FROM orders o, customer c, WHERE a = 1")
        assert len(statement.from_refs) == 2

    def test_string_escape(self):
        statement = parse_statement("VALUES ('it''s')")
        assert statement.exprs[0].value == "it's"

    def test_negative_number(self):
        statement = parse_statement("VALUES (-5)")
        assert statement.exprs[0].value == -5


class TestXMLFunctions:
    def test_xmlquery_passing(self):
        statement = parse_statement(
            "SELECT XMLQuery('$o//a' passing orddoc as \"o\") FROM orders")
        expr = statement.items[0].expr
        assert isinstance(expr, ast.XMLQueryExpr)
        assert expr.passing[0].variable == "o"

    def test_xmlexists(self):
        statement = parse_statement(
            "SELECT a FROM t WHERE XMLEXISTS('$d//x' PASSING doc AS \"d\")")
        assert isinstance(statement.where, ast.XMLExistsExpr)

    def test_xmlcast(self):
        statement = parse_statement(
            "SELECT XMLCAST(XMLQUERY('$d/a' passing doc as \"d\") "
            "AS VARCHAR(13)) FROM t")
        cast_expr = statement.items[0].expr
        assert isinstance(cast_expr, ast.XMLCastExpr)
        assert cast_expr.target.length == 13

    def test_xmltable_full(self):
        statement = parse_statement(
            "SELECT o.ordid, t.lineitem FROM orders o, "
            "XMLTable('$order//lineitem' passing o.orddoc as \"order\" "
            "COLUMNS \"lineitem\" XML BY REF PATH '.', "
            "\"price\" DECIMAL(6,3) PATH '@price', "
            "seq FOR ORDINALITY) as t(lineitem, price, seq)")
        xmltable = statement.from_refs[1]
        assert isinstance(xmltable, ast.XMLTableRef)
        assert xmltable.alias == "t"
        assert xmltable.columns[0].by_ref
        assert xmltable.columns[1].sql_type.scale == 3
        assert xmltable.columns[2].for_ordinality
        assert xmltable.column_aliases == ["lineitem", "price", "seq"]

    def test_xmlelement(self):
        statement = parse_statement(
            "SELECT XMLELEMENT(NAME result, XMLATTRIBUTES(a AS x), b) "
            "FROM t")
        element = statement.items[0].expr
        assert isinstance(element, ast.XMLElementExpr)
        assert element.attributes[0][0] == "x"
        assert len(element.content) == 1

    def test_xmlforest_and_concat(self):
        statement = parse_statement(
            "SELECT XMLCONCAT(XMLFOREST(a, b AS bee), c) FROM t")
        concat = statement.items[0].expr
        assert isinstance(concat, ast.XMLConcatExpr)
        forest = concat.items[0]
        assert [name for name, _expr in forest.items] == ["a", "bee"]


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT FROM t",
        "SELECT a",
        "UPDATE t SET a = 1",
        "SELECT a FROM t WHERE",
        "SELECT XMLCAST(a AS BLOB) FROM t",
        "SELECT a FROM t trailing garbage $$",
    ])
    def test_rejects(self, bad):
        with pytest.raises(SQLSyntaxError):
            parse_statement(bad)
