"""Unit tests for the reader-writer lock behind the Database."""

import threading
import time

import pytest

from repro.analysis import sanitizer
from repro.core.rwlock import RWLock
from repro.obs.metrics import METRICS, enabled_metrics


class TestBasics:
    def test_readers_share(self):
        lock = RWLock()
        with lock.read():
            assert lock.readers == 1
            with lock.read():           # reentrant on the same thread
                assert lock.readers == 2
            assert lock.readers == 1
        assert lock.readers == 0

    def test_write_is_exclusive_and_reentrant(self):
        lock = RWLock()
        with lock.write():
            assert lock.write_held
            with lock.write():
                assert lock.write_held
            assert lock.write_held
        assert not lock.write_held

    def test_writer_may_take_read_side(self):
        lock = RWLock()
        with lock.write():
            with lock.read():           # write-implies-read
                assert lock.readers == 1
        assert lock.readers == 0
        assert not lock.write_held

    def test_read_to_write_upgrade_raises(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()
        assert lock.readers == 0
        # Under REPRO_SANITIZE=1 the runtime sanitizer also flags this
        # deliberate upgrade attempt (SA402's dynamic twin); swallow
        # the finding so the autouse hard-failure fixture stays green.
        sanitizer.drain()

    def test_unbalanced_release_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestExclusion:
    def test_writer_blocks_until_readers_drain(self):
        lock = RWLock()
        order = []
        reader_in = threading.Event()
        release_reader = threading.Event()

        def reader():
            with lock.read():
                order.append("reader-in")
                reader_in.set()
                release_reader.wait(5)
            order.append("reader-out")

        def writer():
            reader_in.wait(5)
            with lock.write():
                order.append("writer-in")

        threads = [threading.Thread(target=reader),
                   threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        reader_in.wait(5)
        time.sleep(0.05)                # give the writer time to queue
        assert "writer-in" not in order
        release_reader.set()
        for thread in threads:
            thread.join(5)
        assert order == ["reader-in", "reader-out", "writer-in"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        events = {name: threading.Event()
                  for name in ("r1_in", "release_r1", "w_done", "r2_done")}
        order = []

        def first_reader():
            with lock.read():
                events["r1_in"].set()
                events["release_r1"].wait(5)

        def writer():
            events["r1_in"].wait(5)
            with lock.write():
                order.append("writer")
            events["w_done"].set()

        def second_reader():
            events["r1_in"].wait(5)
            time.sleep(0.05)            # let the writer start waiting
            with lock.read():
                order.append("reader2")
            events["r2_done"].set()

        threads = [threading.Thread(target=target) for target in
                   (first_reader, writer, second_reader)]
        for thread in threads:
            thread.start()
        events["r1_in"].wait(5)
        time.sleep(0.1)
        # Writer preference: reader2 must queue behind the writer.
        assert order == []
        events["release_r1"].set()
        for thread in threads:
            thread.join(5)
        assert order == ["writer", "reader2"]

    def test_parallel_readers_make_progress_together(self):
        lock = RWLock()
        barrier = threading.Barrier(4, timeout=5)

        def reader():
            with lock.read():
                barrier.wait()          # deadlocks unless all 4 share

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5)
        assert lock.readers == 0


class TestMetrics:
    def test_acquisitions_and_waits_are_counted(self):
        lock = RWLock()
        with enabled_metrics():
            with lock.read():
                pass
            with lock.write():
                pass
            snapshot = METRICS.snapshot()
        assert snapshot["counters"]["rwlock.read_acquires"] >= 1
        assert snapshot["counters"]["rwlock.write_acquires"] >= 1
