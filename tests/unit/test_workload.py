"""Unit tests for the workload generators."""

from repro import Database
from repro.workload import (OrderProfile, WorkloadGenerator,
                            populate_paper_schema)
from repro.xmlio import parse_document


class TestDeterminism:
    def test_same_seed_same_workload(self):
        first = WorkloadGenerator(seed=7).workload(orders=20)
        second = WorkloadGenerator(seed=7).workload(orders=20)
        assert first.orders == second.orders
        assert first.customers == second.customers
        assert first.products == second.products

    def test_different_seed_differs(self):
        first = WorkloadGenerator(seed=7).workload(orders=20)
        second = WorkloadGenerator(seed=8).workload(orders=20)
        assert first.orders != second.orders


class TestDocumentShapes:
    def test_orders_are_well_formed(self):
        generator = WorkloadGenerator(seed=1)
        workload = generator.workload(orders=30)
        for text in workload.orders:
            document = parse_document(text)
            root = document.root_element
            assert root.name.local == "order"
            assert any(child.name and child.name.local == "lineitem"
                       for child in root.children)

    def test_price_bounds_respected(self):
        profile = OrderProfile(price_low=50, price_high=60)
        generator = WorkloadGenerator(seed=2)
        workload = generator.workload(orders=40, profile=profile)
        for text in workload.orders:
            document = parse_document(text)
            for node in document.root_element.descendants_or_self():
                attribute = (node.attribute("price")
                             if node.kind == "element" else None)
                if attribute is not None:
                    assert 50 <= float(attribute.string_value()) <= 60

    def test_string_price_fraction(self):
        profile = OrderProfile(string_price_fraction=1.0,
                               max_lineitems=1)
        generator = WorkloadGenerator(seed=3)
        workload = generator.workload(orders=10, profile=profile)
        assert all("USD" in text for text in workload.orders)

    def test_element_prices_with_mixed_content(self):
        profile = OrderProfile(element_prices=True,
                               mixed_text_fraction=1.0)
        generator = WorkloadGenerator(seed=4)
        text = generator.order_document(1, 1, ["P1"], profile)
        assert "<currency>USD</currency>" in text
        parse_document(text)

    def test_namespaced_orders(self):
        profile = OrderProfile(namespace="http://ournamespaces.com/order")
        generator = WorkloadGenerator(seed=5)
        text = generator.order_document(1, 1, ["P1"], profile)
        document = parse_document(text)
        assert document.root_element.name.uri == \
            "http://ournamespaces.com/order"

    def test_canadian_customers(self):
        generator = WorkloadGenerator(seed=6)
        canadian = generator.customer_document(1, canadian=True)
        us = generator.customer_document(2, canadian=False)
        assert "<nation>2</nation>" in canadian
        assert "<nation>1</nation>" in us
        document = parse_document(canadian)
        postal = document.root_element.children[-1].children[-1]
        assert not postal.string_value().isdigit()

    def test_rss_feed_well_formed(self):
        generator = WorkloadGenerator(seed=7)
        document = parse_document(generator.rss_feed(1, item_count=10))
        items = [node for node in
                 document.root_element.descendants_or_self()
                 if node.name and node.name.local == "item"]
        assert len(items) == 10


class TestPopulate:
    def test_populate_counts_and_indexes(self):
        database = Database()
        populate_paper_schema(database, orders=25, customers=5,
                              products=4)
        assert len(database.table("orders")) == 25
        assert len(database.table("customer")) == 5
        assert len(database.table("products")) == 4
        assert {"li_price", "o_custid", "c_custid"} <= \
            set(database.xml_indexes)

    def test_populate_without_indexes(self):
        database = Database()
        populate_paper_schema(database, orders=5, customers=2,
                              products=2, with_indexes=False)
        assert database.xml_indexes == {}
