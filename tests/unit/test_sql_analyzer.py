"""Unit tests for the SQL statement analyzer (context classification)."""

import pytest

from repro.core.predicates import PredicateContext
from repro.sql.analyzer import (body_is_boolean, collect_embedded,
                                extract_sql_candidates, split_conjuncts)
from repro.sql.parser import parse_statement
from repro.xquery.parser import parse_xquery


class TestBooleanBodyDetection:
    @pytest.mark.parametrize("body,expected", [
        ("$o//a/@p > 100", True),                  # comparison
        ("$o//a[@p > 100]", False),                # path with filter
        ("not($o//a)", True),                      # boolean function
        ("exists($o//a)", True),
        ("$o//a/@p > 1 and $o//b", True),          # and-expr
        ("some $x in $o//a satisfies $x > 1", True),
        ("$o//a", False),
        ("count($o//a)", False),                   # numeric, not boolean
    ])
    def test_detection(self, body, expected):
        assert body_is_boolean(parse_xquery(body)) is expected


class TestContextClassification:
    def classify(self, paper_db, statement: str) -> dict[str, str]:
        embedded = collect_embedded(paper_db,
                                    parse_statement(statement))
        return {entry.text: entry.sql_context.value for entry in embedded}

    def test_select_list(self, paper_db):
        contexts = self.classify(
            paper_db,
            "SELECT XMLQUERY('$o//a' PASSING orddoc AS \"o\") "
            "FROM orders")
        assert list(contexts.values()) == [
            PredicateContext.SQL_SELECT_LIST.value]

    def test_where_xmlexists(self, paper_db):
        contexts = self.classify(
            paper_db,
            "SELECT ordid FROM orders WHERE XMLEXISTS("
            "'$o//a[@p > 1]' PASSING orddoc AS \"o\")")
        assert PredicateContext.SQL_WHERE_XMLEXISTS.value in \
            contexts.values()

    def test_boolean_xmlexists(self, paper_db):
        contexts = self.classify(
            paper_db,
            "SELECT ordid FROM orders WHERE XMLEXISTS("
            "'$o//a/@p > 1' PASSING orddoc AS \"o\")")
        assert PredicateContext.SQL_BOOLEAN_XMLEXISTS.value in \
            contexts.values()

    def test_xmltable_row_and_columns(self, paper_db):
        contexts = self.classify(
            paper_db,
            "SELECT t.x FROM orders o, XMLTABLE('$d//lineitem' "
            "PASSING o.orddoc AS \"d\" COLUMNS x DOUBLE "
            "PATH '@price[. > 1]') AS t")
        values = set(contexts.values())
        assert PredicateContext.SQL_XMLTABLE_ROW.value in values
        assert PredicateContext.SQL_XMLTABLE_COLUMN.value in values

    def test_passing_variable_types(self, paper_db):
        statement = parse_statement(
            "SELECT p.name FROM products p, orders o WHERE XMLEXISTS("
            "'$d//id[. eq $pid]' PASSING o.orddoc AS \"d\", "
            "p.id AS \"pid\")")
        embedded = collect_embedded(paper_db, statement)[0]
        from repro.core.predicates import Origin, SQLTypedValue
        assert isinstance(embedded.scope["d"], Origin)
        assert embedded.scope["d"].column == "orders.orddoc"
        assert isinstance(embedded.scope["pid"], SQLTypedValue)
        assert embedded.scope["pid"].sql_type == "VARCHAR"
        assert embedded.alias_of_var == {"d": "o", "pid": "p"}

    def test_sql_comparison_flagged(self, paper_db):
        candidates = extract_sql_candidates(
            paper_db,
            "SELECT ordid FROM orders o WHERE 'x' = XMLCAST(XMLQUERY("
            "'$d/order/custid' PASSING o.orddoc AS \"d\") "
            "AS VARCHAR(10))")
        flagged = [candidate for candidate in candidates
                   if candidate.uses_sql_comparison]
        assert flagged
        assert str(flagged[0].path) == "/order/custid"


class TestConjunctSplitting:
    def test_split(self):
        statement = parse_statement(
            "SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3")
        assert len(split_conjuncts(statement.where)) == 3

    def test_or_not_split(self):
        statement = parse_statement(
            "SELECT a FROM t WHERE a = 1 OR b = 2")
        assert len(split_conjuncts(statement.where)) == 1
