"""Unit tests for the columnar node store (``repro.storage.columnar``).

The store is the accelerator-table representation of one parsed
document: parallel (pre, post, level, kind, parent, text) columns in
document order, path partitions for pattern matching, and a lazy
``materialize()`` that rebuilds a serialize-identical XDM tree with
the original node identities.
"""

import pytest

from repro.storage.columnar import (ColumnStore, KIND_ATTRIBUTE,
                                    KIND_DOCUMENT, get_store,
                                    ingest_document, store_for_node)
from repro.xdm.nodes import DocumentNode
from repro.xmlio import parse_document
from repro.xmlio.serializer import serialize

COMPLEX_XML = (
    "<?xml version=\"1.0\"?>"
    "<order xmlns:m=\"urn:meta\" m:origin=\"paper\">"
    "<!-- running example -->"
    "<date>January 1, 2002</date>"
    "<lineitem price=\"99.50\" quantity=\"2\">"
    "<product><id>gadget</id></product>"
    "</lineitem>"
    "<lineitem><price>250</price><price>50</price>"
    "<m:note>bulk<em>discount</em></m:note></lineitem>"
    "<?audit checked?>"
    "</order>")


def build(xml: str = COMPLEX_XML):
    document = parse_document(xml)
    store = ColumnStore.from_document(document)
    return document, store


def walk_all(node):
    """Every node including attributes, in document (pre) order."""
    yield node
    for attribute in node.attributes:
        yield attribute
    for child in node.children:
        yield from walk_all(child)


class TestColumnLayout:
    def test_slot_equals_pre_number(self):
        document, store = build()
        for slot, node in enumerate(walk_all(document)):
            assert store.nodes[slot] is node
            assert node._order[1] == slot

    def test_post_level_columns_match_structure(self):
        document, store = build()
        for slot, node in enumerate(walk_all(document)):
            assert store.post[slot] == node._post
            assert store.level[slot] == node._level

    def test_parent_column(self):
        document, store = build()
        for slot, node in enumerate(walk_all(document)):
            if node is document:
                assert store.parent[slot] == -1
            else:
                parent_slot = store.parent[slot]
                assert store.nodes[parent_slot] is node.parent

    def test_subtree_end_is_contiguous_descendant_range(self):
        document, store = build()
        for slot, node in enumerate(walk_all(document)):
            expected = sum(1 for _ in walk_all(node))
            assert store.subtree_end[slot] - slot == expected

    def test_node_ids_column_records_identity(self):
        document, store = build()
        for slot, node in enumerate(walk_all(document)):
            assert store.node_ids[slot] == node.node_id

    def test_text_of_matches_string_value(self):
        document, store = build()
        for slot, node in enumerate(walk_all(document)):
            if node.kind in ("attribute", "text", "comment",
                             "processing-instruction"):
                assert store.text_of(slot) == node.string_value()


class TestAxisScans:
    def test_descendants_or_self_equals_object_walk(self):
        document, store = build()
        for node in walk_all(document):
            if node.kind == "attribute":
                continue
            expected = [n.node_id for n in node.descendants_or_self()]
            got = [n.node_id for n in store.descendants_or_self(node)]
            assert got == expected

    def test_following_axis(self):
        document, store = build()
        everything = [n for n in walk_all(document)
                      if n.kind != "attribute"]
        for anchor in everything:
            if anchor is document:
                continue
            expected = [n.node_id for n in everything
                        if n._order[1] > anchor._order[1]
                        and not anchor.is_ancestor_of(n)]
            got = [n.node_id for n in store.following(anchor)]
            assert got == expected

    def test_preceding_axis(self):
        document, store = build()
        everything = [n for n in walk_all(document)
                      if n.kind != "attribute"]
        for anchor in everything:
            if anchor is document:
                continue
            expected = [n.node_id for n in everything
                        if n._order[1] < anchor._order[1]
                        and not n.is_ancestor_of(anchor)]
            got = [n.node_id for n in store.preceding(anchor)]
            assert got == expected

    def test_partitions_cover_every_slot_once(self):
        # Every slot except the document node (which has no path)
        # appears in exactly one path partition.
        _document, store = build()
        seen = sorted(slot for slots in store.partitions
                      for slot in slots)
        assert seen == list(range(1, len(store.post)))


class TestMaterialize:
    def test_round_trip_is_serialize_identical(self):
        document, store = build()
        rebuilt = store.materialize()
        assert isinstance(rebuilt, DocumentNode)
        assert serialize(rebuilt) == serialize(document)

    def test_round_trip_preserves_node_ids(self):
        document, store = build()
        rebuilt = store.materialize()
        original = [n.node_id for n in walk_all(document)]
        restored = [n.node_id for n in walk_all(rebuilt)]
        assert restored == original

    def test_materialized_tree_is_attached_to_store(self):
        _document, store = build()
        rebuilt = store.materialize()
        assert rebuilt.column_store is store
        assert get_store(rebuilt) is store
        assert rebuilt.path_summary is not None


class TestPayloadRoundTrip:
    def test_payload_round_trip_serialize_identical(self):
        document, store = build()
        payload = store.to_payload()
        restored = ColumnStore.from_payload(payload)
        assert serialize(restored.materialize()) == serialize(document)

    def test_payload_round_trip_preserves_node_ids(self):
        document, store = build()
        restored = ColumnStore.from_payload(store.to_payload())
        rebuilt = restored.materialize()
        original = [n.node_id for n in walk_all(document)]
        assert [n.node_id for n in walk_all(rebuilt)] == original

    def test_restored_ids_never_collide_with_new_nodes(self):
        # from_payload reserves the restored id range, so a document
        # parsed afterwards mints strictly larger node ids (replica
        # bootstrap relies on this for cross-tree document order).
        document, store = build()
        restored = ColumnStore.from_payload(store.to_payload())
        highest = max(restored.node_ids)
        fresh = parse_document("<a><b/></a>")
        assert min(n.node_id for n in walk_all(fresh)) > highest


class TestStoreLifecycle:
    def test_get_store_requires_valid_stamp(self):
        document, store = build("<a><b>x</b></a>")
        assert get_store(document) is store
        # Mutating the tree invalidates the stamp: the store must no
        # longer be offered for that document.
        element = document.root_element
        element.remove_child(element.children[0])
        assert get_store(document) is None

    def test_store_for_node_walks_to_root(self):
        document, store = build("<a><b><c/></b></a>")
        leaf = document.root_element.children[0].children[0]
        assert store_for_node(leaf) is store

    def test_ingest_document_reuses_current_store(self):
        document = parse_document("<a><b/></a>")
        first = ingest_document(document)
        assert ingest_document(document) is first

    def test_detach_clears_tree_references(self):
        _document, store = build("<a><b/></a>")
        store.detach()
        assert store.nodes is None
        # Columns survive detach: a later materialize still works.
        rebuilt = store.materialize()
        assert serialize(rebuilt) == "<a><b/></a>"

    def test_kind_column_codes(self):
        _document, store = build()
        assert store.kind[0] == KIND_DOCUMENT
        assert KIND_ATTRIBUTE in set(store.kind)


class TestEdgeShapes:
    @pytest.mark.parametrize("xml", [
        "<a/>",
        "<a>text only</a>",
        "<a><!-- c --><?pi d?></a>",
        "<a xmlns=\"urn:d\"><b attr=\"1\"/></a>",
        "<a>mixed<b/>tail</a>",
    ])
    def test_small_shapes_round_trip(self, xml):
        document, store = build(xml)
        assert serialize(store.materialize()) == serialize(document)
        restored = ColumnStore.from_payload(store.to_payload())
        assert serialize(restored.materialize()) == serialize(document)
