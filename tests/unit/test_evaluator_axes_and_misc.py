"""Additional evaluator coverage: sibling/ancestor axes, stable sort,
multi-binding quantifiers, remaining function-library corners."""

import pytest

from repro.errors import XQueryTypeError
from repro.xmlio import parse_document, serialize_sequence
from repro.xquery.evaluator import evaluate as ev

DOC = parse_document(
    "<root><a id='1'/><b id='2'/><a id='3'><inner/></a><c id='4'/>"
    "</root>")


def run(query: str, **variables) -> str:
    bound = {name: value if isinstance(value, list) else [value]
             for name, value in variables.items()}
    return serialize_sequence(ev(query, variables=bound))


class TestExtendedAxes:
    def test_following_sibling(self):
        assert run("$d/root/b/following-sibling::*/@id/data(.)",
                   d=DOC) == "3 4"

    def test_preceding_sibling(self):
        assert run("$d/root/c/preceding-sibling::a/@id/data(.)",
                   d=DOC) == "1 3"

    def test_preceding_sibling_positional(self):
        # Reverse axis: position 1 is the nearest preceding sibling.
        assert run("$d/root/c/preceding-sibling::*[1]/@id/data(.)",
                   d=DOC) == "3"

    def test_ancestor(self):
        assert run("count($d//inner/ancestor::*)", d=DOC) == "2"

    def test_ancestor_or_self(self):
        assert run("count($d//inner/ancestor-or-self::*)", d=DOC) == "3"

    def test_attribute_has_no_siblings(self):
        assert run("count(($d//@id)[1]/following-sibling::*)",
                   d=DOC) == "0"

    def test_parent_of_attribute(self):
        assert run("($d//@id)[3]/../local-name(.)", d=DOC) == "a"


class TestOrderByStability:
    def test_multi_key(self):
        query = ("for $p in (<p a='2' b='1'/>, <p a='1' b='2'/>, "
                 "<p a='1' b='1'/>) "
                 "order by $p/@a, $p/@b descending "
                 "return concat($p/@a, ':', $p/@b)")
        assert run(query) == "1:2 1:1 2:1"

    def test_stable_for_equal_keys(self):
        query = ("for $x at $i in ('c', 'a', 'b') "
                 "order by 1 return $x")
        assert run(query) == "c a b"   # original order preserved


class TestQuantifiers:
    def test_multi_binding_some(self):
        assert run("some $x in (1,2), $y in (10,20) "
                   "satisfies $x + $y = 22") == "true"

    def test_multi_binding_every(self):
        assert run("every $x in (1,2), $y in (10,20) "
                   "satisfies $x < $y") == "true"
        assert run("every $x in (1,2), $y in (1,20) "
                   "satisfies $x < $y") == "false"


class TestFunctionCorners:
    def test_matches_replace_tokenize(self):
        assert run("matches('abc123', '[0-9]+')") == "true"
        assert run("replace('a-b-c', '-', '+')") == "a+b+c"
        assert run("tokenize('a,b,c', ',')") == "a b c"

    def test_min_max_strings(self):
        assert run("min(('pear', 'apple'))") == "apple"
        assert run("max(('pear', 'apple'))") == "pear"

    def test_min_max_untyped_are_numeric(self):
        doc = parse_document("<a><v>10</v><v>9</v></a>")
        assert run("max($d//v)", d=doc) == "10"  # numeric, not '9'

    def test_sum_with_zero_default(self):
        assert run("sum((), 'none')") == "none"

    def test_avg_decimal(self):
        assert run("avg((1.0, 2.0))") == "1.5"

    def test_subsequence_unbounded(self):
        assert run("subsequence((1,2,3,4), 3)") == "3 4"

    def test_string_of_context_item(self):
        doc = parse_document("<a>txt</a>")
        assert run("$d/a/string()", d=doc) == "txt"

    def test_concat_with_empty_args(self):
        assert run("concat('a', (), 'b')") == "ab"

    def test_castable_multi_item_false(self):
        assert run("(1, 2) castable as xs:double") == "false"

    def test_instance_of_empty(self):
        assert run("() instance of xs:integer?") == "true"
        assert run("() instance of xs:integer") == "false"

    def test_number_of_node(self):
        doc = parse_document("<a><v>7</v></a>")
        assert run("number($d//v) + 1", d=doc) == "8"


class TestArithmeticCorners:
    def test_idiv_negative(self):
        assert run("-7 idiv 2") == "-3"  # truncation toward zero

    def test_mod_double(self):
        assert run("7.5 mod 2") == "1.5"

    def test_decimal_division_exact(self):
        assert run("1 div 4") == "0.25"

    def test_mixed_decimal_double(self):
        result = ev("1.5 + 1e0")
        assert result[0].type_name == "xs:double"

    def test_unary_plus(self):
        assert run("+5") == "5"
        assert run("--5") == "5"


class TestComputedDocument:
    def test_document_constructor(self):
        assert run("document { <a><b/></a> }/a/b instance of element()"
                   ) == "true"

    def test_document_constructor_enables_absolute_paths(self):
        assert run("count(document { <a><b/></a> }//b)") == "1"

    def test_attribute_in_document_rejected(self):
        with pytest.raises(XQueryTypeError):
            ev("document { attribute x {'1'} }")
