"""Unit tests for schema-lite validation (§2.1 / §3.1 scenarios)."""

import pytest

from repro.errors import SchemaValidationError
from repro.schema import Schema, TypeDeclaration, validate
from repro.xdm import atomic
from repro.xmlio import parse_document


class TestDeclarations:
    def test_suffix_matching(self):
        declaration = TypeDeclaration("lineitem/@price", "xs:double")
        assert declaration.matches(("order", "lineitem", "@price"))
        assert not declaration.matches(("order", "product", "@price"))
        assert not declaration.matches(("@price",))

    def test_most_specific_wins(self):
        schema = (Schema("s")
                  .declare("id", "xs:string")
                  .declare("product/id", "xs:double"))
        chosen = schema.lookup(("order", "product", "id"))
        assert chosen.type_name == "xs:double"

    def test_attribute_must_be_last(self):
        with pytest.raises(SchemaValidationError):
            TypeDeclaration("@x/y", "xs:string")


class TestValidation:
    def test_annotates_elements_and_attributes(self):
        doc = parse_document(
            "<order><custid>1001</custid>"
            "<lineitem price='99.50'/></order>")
        schema = (Schema("s")
                  .declare("custid", "xs:double")
                  .declare("lineitem/@price", "xs:double"))
        validate(doc, schema)
        custid = doc.root_element.children[0]
        assert custid.typed_value()[0].type_name == atomic.T_DOUBLE
        price = doc.root_element.children[1].attributes[0]
        assert price.typed_value()[0].value == 99.5

    def test_strict_rejects_nonconforming(self):
        # The §2.1 postal-code story: a numeric schema rejects "K1A 0B1".
        doc = parse_document(
            "<customer><address><postalcode>K1A 0B1</postalcode>"
            "</address></customer>")
        schema = Schema("v1").declare("address/postalcode", "xs:double")
        with pytest.raises(SchemaValidationError):
            validate(doc, schema)

    def test_lenient_leaves_untyped(self):
        doc = parse_document("<a><n>not a number</n></a>")
        schema = Schema("s", strict=False).declare("n", "xs:double")
        validate(doc, schema)
        node = doc.root_element.children[0]
        assert node.typed_value()[0].type_name == atomic.T_UNTYPED

    def test_list_types(self):
        doc = parse_document("<a><nums>1 2 3</nums></a>")
        schema = Schema("s").declare("nums", "xs:double", is_list=True)
        validate(doc, schema)
        values = doc.root_element.children[0].typed_value()
        assert [value.value for value in values] == [1.0, 2.0, 3.0]

    def test_xsi_type_override(self):
        doc = parse_document(
            '<a xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">'
            '<v xsi:type="xs:double">42</v></a>')
        schema = Schema("s").declare("v", "xs:string")
        validate(doc, schema)
        node = doc.root_element.children[0]
        assert node.typed_value()[0].type_name == atomic.T_DOUBLE

    def test_elements_with_children_not_simple_typed(self):
        doc = parse_document("<a><v><inner>1</inner></v></a>")
        schema = Schema("s").declare("v", "xs:double")
        validate(doc, schema)  # should not raise: v is complex
        node = doc.root_element.children[0]
        assert node.type_annotation == "xdt:untyped"

    def test_unknown_type_rejected(self):
        doc = parse_document("<a><v>1</v></a>")
        schema = Schema("s").declare("v", "xs:imaginary")
        with pytest.raises(SchemaValidationError):
            validate(doc, schema)

    def test_per_document_schemas_coexist(self):
        """Two documents in one 'column', different schema versions."""
        from repro import Database
        from repro.workload import intl_customer_schema, us_customer_schema

        db = Database()
        db.create_table("customer", [("cdoc", "XML")])
        db.register_schema(us_customer_schema())
        db.register_schema(intl_customer_schema())
        us = ("<customer><id>1</id><name>A</name><nation>1</nation>"
              "<address><postalcode>95141</postalcode></address>"
              "</customer>")
        ca = ("<customer><id>2</id><name>B</name><nation>2</nation>"
              "<address><postalcode>K1A 0B1</postalcode></address>"
              "</customer>")
        db.insert("customer", {"cdoc": us}, schema="customer-v1")
        db.insert("customer", {"cdoc": ca}, schema="customer-v2")
        # The v1 schema would reject the Canadian document.
        with pytest.raises(SchemaValidationError):
            db.insert("customer", {"cdoc": ca}, schema="customer-v1")
        assert len(db.documents("customer", "cdoc")) == 2
