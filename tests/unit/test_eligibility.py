"""Unit tests for the eligibility checker and its reason codes."""

import pytest

from repro.core import Reason, analyze_eligibility
from repro.core.eligibility import check_index
from repro.core.predicates import extract_candidates
from repro.xquery.parser import parse_xquery

XMLCOL = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"


def verdict_for(indexed_db, index_name: str, query: str):
    module = parse_xquery(query)
    candidates = extract_candidates(module)
    index = indexed_db.xml_indexes[index_name]
    matching = [candidate for candidate in candidates
                if candidate.column == f"{index.table}.{index.column}"]
    assert matching, "no candidate extracted for the index's column"
    return check_index(index, matching[0])


class TestVerdicts:
    def test_query1_eligible(self, indexed_db):
        verdict = verdict_for(
            indexed_db, "li_price",
            f"for $i in {XMLCOL}//order[lineitem/@price>100] return $i")
        assert verdict.eligible
        assert verdict.reasons == [Reason.ELIGIBLE]

    def test_query2_wildcard_not_contained(self, indexed_db):
        verdict = verdict_for(
            indexed_db, "li_price",
            f"for $i in {XMLCOL}//order[lineitem/@*>100] return $i")
        assert not verdict.eligible
        assert Reason.PATTERN_NOT_CONTAINED in verdict.reasons

    def test_query3_type_mismatch(self, indexed_db):
        verdict = verdict_for(
            indexed_db, "li_price",
            f'for $i in {XMLCOL}//order[lineitem/@price > "100"] '
            f"return $i")
        assert not verdict.eligible
        assert Reason.TYPE_MISMATCH in verdict.reasons

    def test_untyped_join_unknown(self, indexed_db):
        verdict = verdict_for(
            indexed_db, "o_custid",
            f"for $i in {XMLCOL}/order "
            f"for $j in db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer "
            f"where $i/custid = $j/id return $i")
        assert not verdict.eligible
        assert Reason.TYPE_UNKNOWN in verdict.reasons

    def test_let_binding_reason(self, indexed_db):
        verdict = verdict_for(
            indexed_db, "li_price",
            f"for $d in {XMLCOL} let $i := $d//lineitem[@price > 100] "
            f"return <r>{{$i}}</r>")
        assert not verdict.eligible
        assert Reason.LET_BINDING in verdict.reasons

    def test_constructor_reason(self, indexed_db):
        verdict = verdict_for(
            indexed_db, "li_price",
            f"for $d in {XMLCOL}/order "
            f"return <r>{{$d/lineitem[@price > 100]}}</r>")
        assert not verdict.eligible
        assert Reason.CONSTRUCTOR_CONTENT in verdict.reasons

    def test_negation_reason(self, indexed_db):
        verdict = verdict_for(
            indexed_db, "li_price",
            f"for $d in {XMLCOL}/order "
            f"where not($d/lineitem/@price > 100) return $d")
        assert not verdict.eligible
        assert Reason.NEGATION in verdict.reasons

    def test_exists_needs_varchar(self, indexed_db):
        query = (f"for $d in {XMLCOL}/order "
                 f"where $d/lineitem/@price return $d")
        verdict = verdict_for(indexed_db, "li_price", query)
        assert not verdict.eligible  # DOUBLE index misses '20 USD'
        indexed_db.execute(
            "CREATE INDEX li_price_str ON orders(orddoc) "
            "USING XMLPATTERN '//lineitem/@price' AS VARCHAR")
        verdict = verdict_for(indexed_db, "li_price_str", query)
        assert verdict.eligible

    def test_text_misalignment_reason(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX price_text ON orders(orddoc) "
            "USING XMLPATTERN '//price' AS VARCHAR")
        verdict = verdict_for(
            indexed_db, "price_text",
            f'for $o in {XMLCOL}/order[lineitem/price/text() = "99.50"] '
            f"return $o")
        assert not verdict.eligible
        assert Reason.TEXT_MISALIGNMENT in verdict.reasons

    def test_namespace_mismatch_reason(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX c_nation ON customer(cdoc) "
            "USING XMLPATTERN '//nation' AS DOUBLE")
        module = parse_xquery(
            'declare namespace c="http://ournamespaces.com/customer"; '
            "for $cust in db2-fn:xmlcolumn('CUSTOMER.CDOC')"
            "/c:customer[c:nation = 1] return $cust")
        candidates = extract_candidates(module)
        index = indexed_db.xml_indexes["c_nation"]
        verdict = check_index(index, candidates[0])
        assert not verdict.eligible
        assert Reason.NAMESPACE_MISMATCH in verdict.reasons

    def test_attribute_axis_reason(self, indexed_db):
        indexed_db.execute(
            "CREATE INDEX all_elems ON orders(orddoc) "
            "USING XMLPATTERN '//*' AS VARCHAR")
        verdict = verdict_for(
            indexed_db, "all_elems",
            f"for $d in {XMLCOL}/order where $d//@price return $d")
        assert not verdict.eligible
        assert Reason.ATTRIBUTE_AXIS in verdict.reasons


class TestReportAPI:
    def test_analyze_eligibility_xquery(self, indexed_db):
        report = analyze_eligibility(
            indexed_db,
            f"for $i in {XMLCOL}//order[lineitem/@price>100] return $i")
        assert report.is_index_eligible("li_price")
        assert "li_price" in report.eligible_indexes
        assert "ELIGIBLE" in report.explain()

    def test_analyze_eligibility_sql_auto(self, indexed_db):
        report = analyze_eligibility(
            indexed_db,
            "SELECT ordid FROM orders WHERE XMLEXISTS("
            "'$o//lineitem[@price > 100]' PASSING orddoc AS \"o\")")
        assert report.language == "sql"
        assert report.is_index_eligible("li_price")

    def test_boolean_xmlexists_reason(self, indexed_db):
        report = analyze_eligibility(
            indexed_db,
            "SELECT ordid FROM orders WHERE XMLEXISTS("
            "'$o//lineitem/@price > 100' PASSING orddoc AS \"o\")")
        assert not report.is_index_eligible("li_price")
        reasons = [reason for predicate in report.predicates
                   for verdict in predicate.verdicts
                   for reason in verdict.reasons]
        assert Reason.BOOLEAN_XMLEXISTS in reasons

    def test_no_predicates(self, indexed_db):
        report = analyze_eligibility(indexed_db,
                                     f"count({XMLCOL})")
        assert report.eligible_indexes == []

    def test_reason_metadata(self):
        assert Reason.TYPE_MISMATCH.section == "3.1"
        assert Reason.TYPE_MISMATCH.tip == 1
        assert Reason.BOOLEAN_XMLEXISTS.tip == 3
        assert "3.7" in str(Reason.NAMESPACE_MISMATCH)
