"""Unit tests for the XDM node hierarchy."""

import pytest

from repro.xdm import atomic
from repro.xdm.nodes import (AttributeNode, CommentNode, DocumentNode,
                             ElementNode, ProcessingInstructionNode,
                             TextNode, copy_node)
from repro.xdm.qname import QName
from repro.xdm.sequence import (atomize, document_order,
                                effective_boolean_value)


def build_order() -> DocumentNode:
    price = AttributeNode(QName("", "price"), "99.50")
    item = ElementNode(QName("", "lineitem"), attributes=[price],
                       children=[TextNode("x"),
                                 ElementNode(QName("", "sub")),
                                 TextNode("y")])
    root = ElementNode(QName("", "order"), children=[item])
    return DocumentNode([root])


class TestStructure:
    def test_string_value_concatenates_descendant_text(self):
        doc = build_order()
        assert doc.string_value() == "xy"
        assert doc.root_element.string_value() == "xy"

    def test_attribute_string_value(self):
        doc = build_order()
        item = doc.root_element.children[0]
        assert item.attributes[0].string_value() == "99.50"

    def test_typed_value_untyped(self):
        doc = build_order()
        item = doc.root_element.children[0]
        values = item.attributes[0].typed_value()
        assert values[0].type_name == atomic.T_UNTYPED

    def test_typed_value_after_annotation(self):
        doc = build_order()
        attribute = doc.root_element.children[0].attributes[0]
        attribute.set_typed_value("xs:double", [atomic.double(99.5)])
        assert attribute.typed_value()[0].value == 99.5

    def test_path_steps(self):
        doc = build_order()
        attribute = doc.root_element.children[0].attributes[0]
        steps = attribute.path_steps()
        assert [kind for kind, _name in steps] == \
            ["element", "element", "attribute"]
        assert steps[-1][1].local == "price"

    def test_attribute_cannot_be_child(self):
        element = ElementNode(QName("", "a"))
        with pytest.raises(Exception):
            element.append_child(AttributeNode(QName("", "x"), "1"))

    def test_attribute_lookup(self):
        doc = build_order()
        item = doc.root_element.children[0]
        assert item.attribute("price") is not None
        assert item.attribute("missing") is None

    def test_comment_and_pi_values(self):
        comment = CommentNode(" hello ")
        pi = ProcessingInstructionNode("target", "data")
        assert comment.string_value() == " hello "
        assert pi.string_value() == "data"
        assert pi.name.local == "target"


class TestIdentityAndOrder:
    def test_unique_identity(self):
        first = ElementNode(QName("", "a"))
        second = ElementNode(QName("", "a"))
        assert first.node_id != second.node_id
        assert first.is_same_node(first)

    def test_document_order_within_tree(self):
        doc = build_order()
        nodes = list(doc.descendants_or_self())
        keys = [node.document_order_key() for node in nodes]
        assert keys == sorted(keys)

    def test_attributes_order_between_element_and_children(self):
        doc = build_order()
        item = doc.root_element.children[0]
        attribute = item.attributes[0]
        first_child = item.children[0]
        assert item.document_order_key() < attribute.document_order_key()
        assert attribute.document_order_key() < \
            first_child.document_order_key()

    def test_order_invalidated_by_mutation(self):
        doc = build_order()
        root = doc.root_element
        key_before = root.children[0].document_order_key()
        root.append_child(ElementNode(QName("", "late")))
        # Keys are recomputed and remain consistent.
        assert root.children[0].document_order_key() == key_before
        assert root.children[-1].document_order_key() > key_before

    def test_document_order_helper_dedups(self):
        doc = build_order()
        item = doc.root_element.children[0]
        result = document_order([item, doc.root_element, item])
        assert len(result) == 2
        assert result[0] is doc.root_element


class TestCopy:
    def test_copy_strips_annotations_by_default(self):
        element = ElementNode(QName("", "id"))
        element.set_typed_value("xs:double", [atomic.double(17.0)])
        copied = copy_node(element)
        assert copied.type_annotation == "xdt:untyped"

    def test_copy_preserve_mode(self):
        element = ElementNode(QName("", "id"))
        element.set_typed_value("xs:double", [atomic.double(17.0)])
        copied = copy_node(element, preserve_types=True)
        assert copied.typed_value()[0].value == 17.0

    def test_copy_is_deep_and_fresh(self):
        doc = build_order()
        copied = copy_node(doc.root_element)
        original_ids = {node.node_id for node in
                        doc.root_element.descendants_or_self()}
        copied_ids = {node.node_id for node in
                      copied.descendants_or_self()}
        assert original_ids.isdisjoint(copied_ids)
        assert copied.string_value() == "xy"

    def test_copy_detaches_parent(self):
        doc = build_order()
        copied = copy_node(doc.root_element.children[0])
        assert copied.parent is None


class TestSequenceOps:
    def test_atomize_nodes_and_atomics(self):
        doc = build_order()
        item = doc.root_element.children[0]
        values = atomize([item, atomic.integer(5)])
        assert values[0].value == "xy"
        assert values[1].value == 5

    def test_ebv_rules(self):
        doc = build_order()
        assert effective_boolean_value([doc]) is True
        assert effective_boolean_value([]) is False
        assert effective_boolean_value([atomic.boolean(False)]) is False
        assert effective_boolean_value([atomic.string("")]) is False
        assert effective_boolean_value([atomic.string("x")]) is True
        assert effective_boolean_value([atomic.double(0.0)]) is False

    def test_ebv_multi_atomic_raises(self):
        with pytest.raises(Exception):
            effective_boolean_value([atomic.integer(1), atomic.integer(2)])
