"""Unit tests for advisor internals and catalog introspection."""

import pytest

from repro.core.advisor import TIPS, Advice, advise, advise_index_pattern


class TestAdviceStructure:
    def test_all_twelve_tips_present(self):
        assert set(TIPS) == set(range(1, 13))

    def test_str_rendering(self):
        advice = Advice(3, "3.2", "warning", "msg", "fix")
        assert "Tip 3" in str(advice)
        advice = Advice(None, "3.10", "info", "msg", "fix")
        assert "§3.10" in str(advice)


class TestIndexPatternAdvice:
    def test_star_pattern_warns(self):
        assert any(item.tip == 12
                   for item in advise_index_pattern("//*"))

    def test_node_pattern_warns(self):
        assert any(item.tip == 12
                   for item in advise_index_pattern("//node()"))

    def test_named_element_pattern_ns_info(self):
        advice = advise_index_pattern("//lineitem/@price")
        assert any(item.tip == 10 for item in advice)
        assert all(item.severity == "info" for item in advice)

    def test_attribute_pattern_clean(self):
        assert advise_index_pattern("//@*") == []

    def test_wildcard_namespace_pattern_clean(self):
        advice = advise_index_pattern("//*:nation")
        assert all(item.tip != 10 for item in advice)

    def test_declared_namespace_pattern_clean(self):
        advice = advise_index_pattern(
            'declare default element namespace "http://x"; //nation')
        assert all(item.tip != 10 for item in advice)


class TestAdviseDeduplication:
    def test_repeated_pitfall_reported_once(self, indexed_db):
        query = ("for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') "
                 "let $a := $d//lineitem[@price > 100] "
                 "let $b := $d//lineitem[@price > 200] "
                 "return <r>{$a, $b}</r>")
        advice = advise(indexed_db, query)
        let_warnings = [item for item in advice
                        if item.section == "3.4" and item.tip is None]
        assert let_warnings  # both let predicates are flagged
        # Exact duplicates (same message) are deduplicated.
        messages = [item.message for item in let_warnings]
        assert len(messages) == len(set(messages))


class TestDescribe:
    def test_catalog_summary(self, indexed_db):
        text = indexed_db.describe()
        assert "table orders" in text
        assert "li_price" in text
        assert "XMLPATTERN" in text
        assert "VARCHAR(13)" in text

    def test_describe_mentions_skipped_nodes(self, indexed_db):
        # The '20 USD' price is skipped by the tolerant DOUBLE index.
        assert "1 skipped" in indexed_db.describe()
