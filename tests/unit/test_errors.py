"""Unit tests for the error taxonomy."""

import pytest

from repro.errors import (CastError, CatalogError, PatternSyntaxError,
                          ReproError, SchemaValidationError, SQLCastError,
                          SQLError, SQLSyntaxError, XMLParseError,
                          XQueryDynamicError, XQueryError,
                          XQueryStaticError, XQueryTypeError)


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for exception_type in (XMLParseError, SchemaValidationError,
                               XQueryError, XQueryStaticError,
                               XQueryTypeError, XQueryDynamicError,
                               CastError, SQLError, SQLSyntaxError,
                               SQLCastError, CatalogError,
                               PatternSyntaxError):
            assert issubclass(exception_type, ReproError)

    def test_cast_error_is_type_error(self):
        assert issubclass(CastError, XQueryTypeError)
        assert issubclass(SQLCastError, SQLError)

    def test_xquery_codes_in_message(self):
        assert "[err:XPTY0004]" in str(XQueryTypeError("boom"))
        assert "[err:FORG0001]" in str(CastError("boom"))
        custom = XQueryDynamicError("boom", code="XPDY0050")
        assert "[err:XPDY0050]" in str(custom)
        assert custom.code == "XPDY0050"

    def test_sqlstates(self):
        assert SQLSyntaxError("x").sqlstate == "42601"
        assert SQLCastError("x").sqlstate == "22001"
        assert SQLError("x", "42818").sqlstate == "42818"
        assert "[SQLSTATE 42818]" in str(SQLError("x", "42818"))

    def test_xml_parse_error_location(self):
        error = XMLParseError("bad", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)
        bare = XMLParseError("bad")
        assert "line" not in str(bare)


class TestErrorSurfacing:
    """Errors raised through the public API keep their types."""

    def test_xquery_static_error(self):
        from repro import Database
        with pytest.raises(XQueryStaticError):
            Database().xquery("for $x in")

    def test_sql_syntax_error(self):
        from repro import Database
        database = Database()
        with pytest.raises(SQLSyntaxError):
            database.sql("SELECT FROM WHERE")

    def test_catalog_error(self):
        from repro import Database
        with pytest.raises(CatalogError):
            Database().table("missing")

    def test_pattern_error_through_ddl(self):
        from repro import Database
        database = Database()
        database.create_table("t", [("d", "XML")])
        with pytest.raises(PatternSyntaxError):
            database.create_xml_index("i", "t", "d", "no-slash",
                                      "DOUBLE")
