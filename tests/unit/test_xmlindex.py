"""Unit tests for XML value indexes (§2.1 semantics)."""

import pytest

from repro.core.patterns import parse_xmlpattern
from repro.errors import SchemaValidationError
from repro.storage.xmlindex import XmlIndex
from repro.xmlio import parse_document


def make_index(pattern: str, index_type: str) -> XmlIndex:
    return XmlIndex("test_idx", "orders", "orddoc", pattern, index_type)


class TestIndexing:
    def test_double_index_entries(self):
        index = make_index("//lineitem/@price", "DOUBLE")
        doc = parse_document(
            "<order><lineitem price='99.50'/><lineitem price='150'/>"
            "</order>")
        index.index_document(1, doc)
        assert len(index) == 2
        assert {key for key, _entry in index.tree.items()} == {99.5, 150.0}

    def test_tolerant_skip_on_cast_failure(self):
        # §2.1: "20 USD" is simply not added to a DOUBLE index.
        index = make_index("//lineitem/@price", "DOUBLE")
        doc = parse_document("<order><lineitem price='20 USD'/></order>")
        index.index_document(1, doc)
        assert len(index) == 0
        assert index.skipped_nodes == 1

    def test_varchar_contains_all_nodes(self):
        # §2.1: "all nodes appear in a string index".
        index = make_index("//lineitem/@price", "VARCHAR")
        doc = parse_document(
            "<order><lineitem price='20 USD'/><lineitem price='1'/>"
            "</order>")
        index.index_document(1, doc)
        assert len(index) == 2

    def test_element_string_value_indexed(self):
        # Interior nodes index "the concatenation of all text below".
        index = make_index("//price", "VARCHAR")
        doc = parse_document(
            "<order><price>99.50<currency>USD</currency></price></order>")
        index.index_document(1, doc)
        keys = [key for key, _entry in index.tree.items()]
        assert keys == ["99.50USD"]

    def test_text_node_indexed_separately(self):
        index = make_index("//price/text()", "VARCHAR")
        doc = parse_document(
            "<order><price>99.50<currency>USD</currency></price></order>")
        index.index_document(1, doc)
        keys = [key for key, _entry in index.tree.items()]
        assert keys == ["99.50"]

    def test_broad_attribute_index(self):
        # The §2.1 "//@* as double" broad-index scenario.
        index = make_index("//@*", "DOUBLE")
        doc = parse_document(
            "<a x='1' label='name'><b y='2.5'/></a>")
        index.index_document(1, doc)
        assert len(index) == 2  # 'name' skipped, 1 and 2.5 kept

    def test_typed_annotation_respected(self):
        from repro.schema import Schema, validate
        index = make_index("//v", "VARCHAR")
        doc = parse_document("<a><v>01.50</v></a>")
        validate(doc, Schema("s").declare("v", "xs:double"))
        index.index_document(1, doc)
        # Indexed via the typed value: canonical "1.5", not "01.50".
        keys = [key for key, _entry in index.tree.items()]
        assert keys == ["1.5"]

    def test_list_type_rejected(self):
        # §3.10 footnote 5: list types are prohibited in indexed docs.
        from repro.schema import Schema, validate
        index = make_index("//nums", "DOUBLE")
        doc = parse_document("<a><nums>1 2</nums></a>")
        validate(doc, Schema("s").declare("nums", "xs:double",
                                          is_list=True))
        with pytest.raises(SchemaValidationError):
            index.index_document(1, doc)

    def test_date_index(self):
        index = make_index("//date", "DATE")
        doc = parse_document(
            "<o><date>2006-09-12</date><date>January 1</date></o>")
        index.index_document(1, doc)
        assert len(index) == 1

    def test_timestamp_normalizes_zones(self):
        index = make_index("//t", "TIMESTAMP")
        doc = parse_document(
            "<o><t>2006-09-12T10:00:00Z</t>"
            "<t>2006-09-12T12:00:00+02:00</t></o>")
        index.index_document(1, doc)
        assert index.tree.key_count == 1  # same instant

    def test_namespace_restriction(self):
        # §3.7: a pattern without namespaces indexes only empty-ns nodes.
        index = make_index("//nation", "DOUBLE")
        ns_doc = parse_document(
            '<customer xmlns="http://c"><nation>1</nation></customer>')
        plain_doc = parse_document("<customer><nation>1</nation></customer>")
        index.index_document(1, ns_doc)
        index.index_document(2, plain_doc)
        assert {entry.doc_id for _key, entry in index.tree.items()} == {2}


class TestProbing:
    def make_populated(self) -> XmlIndex:
        index = make_index("//lineitem/@price", "DOUBLE")
        for doc_id, price in enumerate([50, 99.5, 150, 250], start=1):
            index.index_document(doc_id, parse_document(
                f"<order><lineitem price='{price}'/></order>"))
        return index

    def test_range_probe(self):
        index = self.make_populated()
        assert index.matching_documents(low=100) == {3, 4}
        assert index.matching_documents(high=99.5) == {1, 2}
        assert index.matching_documents(low=99.5, high=150) == {2, 3}
        assert index.matching_documents(
            low=99.5, high=150, low_inclusive=False) == {3}

    def test_path_filter_restriction(self):
        # §2.2: the //lineitem/@price index can apply a more
        # restrictive //order/lineitem/@price query path.
        index = make_index("//lineitem/@price", "DOUBLE")
        index.index_document(1, parse_document(
            "<order><lineitem price='150'/></order>"))
        index.index_document(2, parse_document(
            "<quote><lineitem price='150'/></quote>"))
        narrowed = parse_xmlpattern("//order/lineitem/@price")
        assert index.matching_documents(low=100) == {1, 2}
        assert index.matching_documents(
            low=100, path_filter=narrowed) == {1}

    def test_remove_document(self):
        index = self.make_populated()
        doc = parse_document("<order><lineitem price='150'/></order>")
        index.index_document(9, doc)
        assert 9 in index.matching_documents(low=100)
        index.remove_document(9, doc)
        assert 9 not in index.matching_documents(low=100)

    def test_key_for_value(self):
        from repro.xdm import atomic
        index = self.make_populated()
        assert index.key_for_value(atomic.untyped("99.50")) == 99.5
        from repro.errors import CastError
        with pytest.raises(CastError):
            index.key_for_value(atomic.untyped("x"))

    def test_stats_recorded(self):
        from repro.planner.stats import ExecutionStats
        index = self.make_populated()
        stats = ExecutionStats()
        index.matching_documents(low=100, stats=stats)
        assert stats.index_entries_scanned == 2
        assert stats.indexes_used == ["test_idx"]

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaValidationError):
            make_index("//a", "BLOB")
