"""Unit tests for the cost model (selectivity-based probe pruning)."""

import pytest

from repro import Database
from repro.planner.cost import CostModel, KeyHistogram
from repro.storage.btree import BPlusTree


class TestHistogram:
    def make_tree(self, count: int = 1000) -> BPlusTree:
        tree = BPlusTree(order=16)
        for value in range(count):
            tree.insert(float(value), value)
        return tree

    def test_full_range(self):
        histogram = KeyHistogram(self.make_tree())
        assert histogram.range_fraction(None, None) == pytest.approx(
            1.0, abs=0.05)

    def test_half_range(self):
        histogram = KeyHistogram(self.make_tree())
        assert histogram.range_fraction(500.0, None) == pytest.approx(
            0.5, abs=0.1)

    def test_narrow_range(self):
        histogram = KeyHistogram(self.make_tree())
        assert histogram.range_fraction(990.0, None) <= 0.1

    def test_empty_tree(self):
        histogram = KeyHistogram(BPlusTree(order=16))
        assert histogram.range_fraction(None, None) == 0.0

    def test_refresh_after_growth(self):
        tree = BPlusTree(order=16)
        for value in range(100):
            tree.insert(float(value), value)
        histogram = KeyHistogram(tree)
        assert histogram.range_fraction(50.0, None) == pytest.approx(
            0.5, abs=0.15)
        # Grow the high end substantially; estimate must adapt.
        for value in range(100, 400):
            tree.insert(float(value), value)
        assert histogram.range_fraction(200.0, None) == pytest.approx(
            0.5, abs=0.15)

    def test_incomparable_bounds_conservative(self):
        histogram = KeyHistogram(self.make_tree())
        assert histogram.range_fraction("a-string", None) == 1.0


@pytest.fixture()
def priced_db() -> Database:
    database = Database()
    database.create_table("orders", [("orddoc", "XML")])
    for value in range(100):
        database.insert("orders", {
            "orddoc": f"<order><lineitem price='{value}'/></order>"})
    database.create_xml_index("li_price", "orders", "orddoc",
                              "//lineitem/@price", "DOUBLE")
    return database


class TestCostBasedPlanning:
    def test_selective_probe_kept(self, priced_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//lineitem[@price > 95]")
        result = priced_db.xquery(query, cost_based=True)
        assert result.stats.indexes_used == ["li_price"]
        assert result.stats.docs_scanned < 10

    def test_unselective_probe_skipped(self, priced_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//lineitem[@price >= 0]")
        result = priced_db.xquery(query, cost_based=True)
        assert result.stats.indexes_used == []
        assert any("cost model skips" in note
                   for note in result.stats.plan_notes)
        baseline = priced_db.xquery(query, use_indexes=False)
        assert result.serialize() == baseline.serialize()

    def test_rule_based_default_always_probes(self, priced_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//lineitem[@price >= 0]")
        result = priced_db.xquery(query)   # rule-based default
        assert result.stats.indexes_used == ["li_price"]

    def test_threshold_configurable(self, priced_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//lineitem[@price > 40]")
        strict = priced_db.xquery(query, cost_based=True,
                                  prefilter_threshold=0.1)
        assert strict.stats.indexes_used == []
        lax = priced_db.xquery(query, cost_based=True,
                               prefilter_threshold=0.99)
        assert lax.stats.indexes_used == ["li_price"]

    def test_estimate_probe_accounting(self, priced_db):
        model = CostModel(prefilter_threshold=0.5)
        index = priced_db.xml_indexes["li_price"]
        estimate = model.estimate_probe(index, 90.0, None, 100)
        assert estimate.worthwhile
        assert estimate.docs_fraction < 0.3
        estimate = model.estimate_probe(index, None, None, 100)
        assert not estimate.worthwhile

    def test_distinct_doc_count_maintained(self, priced_db):
        index = priced_db.xml_indexes["li_price"]
        assert index.distinct_doc_count() == 100
        removed = priced_db.delete_rows(
            "orders", lambda values:
            "price='5'" in _doc_text(values["orddoc"]))
        assert removed == 1
        assert index.distinct_doc_count() == 99
        priced_db.delete_rows("orders")
        assert index.distinct_doc_count() == 0


def _doc_text(stored) -> str:
    from repro.xmlio import serialize
    return serialize(stored.document).replace('"', "'")


class TestPathSummarySelectivity:
    """Probe estimates consume real path-summary cardinalities."""

    def make_db(self, with_lineitems: int, without: int) -> Database:
        database = Database()
        database.create_table("orders", [("orddoc", "XML")])
        for value in range(with_lineitems):
            database.insert("orders", {
                "orddoc": f"<order><lineitem price='{value}'/></order>"})
        for _ in range(without):
            database.insert("orders", {
                "orddoc": "<order><note>n</note></order>"})
        # A structural index present in *every* document: the histogram
        # alone sees no selectivity, only the path summary does.
        database.create_xml_index("ord_idx", "orders", "orddoc",
                                  "//order", "VARCHAR")
        return database

    def test_docs_with_path_and_cardinality(self):
        database = self.make_db(10, 30)
        assert database.docs_with_path(
            "orders", "orddoc", "//order") == 40
        assert database.docs_with_path(
            "orders", "orddoc", "//order/lineitem") == 10
        assert database.path_cardinality(
            "orders", "orddoc", "//lineitem/@price") == 10

    def test_summary_counts_change_probe_selectivity(self):
        database = self.make_db(10, 30)
        model = CostModel(prefilter_threshold=0.5)
        index = database.xml_indexes["ord_idx"]

        plain = model.estimate_probe(index, None, None, 40)
        sparse = model.estimate_probe(
            index, None, None, 40,
            docs_with_path=database.docs_with_path(
                "orders", "orddoc", "//order/lineitem"))
        assert not plain.worthwhile
        assert sparse.worthwhile
        assert sparse.docs_fraction < plain.docs_fraction
        assert "path summary caps coverage" in sparse.note

        # Change the summary counts (more documents carry the path):
        # the estimated selectivity must follow.
        for value in range(20):
            database.insert("orders", {
                "orddoc": f"<order><lineitem price='{100 + value}'/>"
                          f"</order>"})
        denser = model.estimate_probe(
            index, None, None, 60,
            docs_with_path=database.docs_with_path(
                "orders", "orddoc", "//order/lineitem"))
        assert denser.docs_fraction > sparse.docs_fraction

    def test_planner_consumes_summary_cardinalities(self):
        """End to end: a probe kept only because the path summary shows
        the query's (more restrictive) path is rare (§2.2 residual)."""
        database = Database()
        database.create_table("orders", [("orddoc", "XML")])
        for value in range(35):
            database.insert("orders", {
                "orddoc": f"<order><lineitem price='{value}'/></order>"})
        for value in range(5):
            database.insert("orders", {
                "orddoc": f"<order><special><lineitem price='{value}'/>"
                          f"</special></order>"})
        database.create_xml_index("li_price", "orders", "orddoc",
                                  "//lineitem/@price", "DOUBLE")
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//order/special/lineitem[@price >= 0]")
        result = database.xquery(query, cost_based=True,
                                 prefilter_threshold=0.5)
        assert result.stats.indexes_used == ["li_price"]
        assert any("path summary caps coverage" in note
                   for note in result.stats.plan_notes)
        assert len(result.items) == 5
