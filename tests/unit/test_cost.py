"""Unit tests for the cost model (selectivity-based probe pruning)."""

import pytest

from repro import Database
from repro.planner.cost import CostModel, KeyHistogram
from repro.storage.btree import BPlusTree


class TestHistogram:
    def make_tree(self, count: int = 1000) -> BPlusTree:
        tree = BPlusTree(order=16)
        for value in range(count):
            tree.insert(float(value), value)
        return tree

    def test_full_range(self):
        histogram = KeyHistogram(self.make_tree())
        assert histogram.range_fraction(None, None) == pytest.approx(
            1.0, abs=0.05)

    def test_half_range(self):
        histogram = KeyHistogram(self.make_tree())
        assert histogram.range_fraction(500.0, None) == pytest.approx(
            0.5, abs=0.1)

    def test_narrow_range(self):
        histogram = KeyHistogram(self.make_tree())
        assert histogram.range_fraction(990.0, None) <= 0.1

    def test_empty_tree(self):
        histogram = KeyHistogram(BPlusTree(order=16))
        assert histogram.range_fraction(None, None) == 0.0

    def test_refresh_after_growth(self):
        tree = BPlusTree(order=16)
        for value in range(100):
            tree.insert(float(value), value)
        histogram = KeyHistogram(tree)
        assert histogram.range_fraction(50.0, None) == pytest.approx(
            0.5, abs=0.15)
        # Grow the high end substantially; estimate must adapt.
        for value in range(100, 400):
            tree.insert(float(value), value)
        assert histogram.range_fraction(200.0, None) == pytest.approx(
            0.5, abs=0.15)

    def test_incomparable_bounds_conservative(self):
        histogram = KeyHistogram(self.make_tree())
        assert histogram.range_fraction("a-string", None) == 1.0


@pytest.fixture()
def priced_db() -> Database:
    database = Database()
    database.create_table("orders", [("orddoc", "XML")])
    for value in range(100):
        database.insert("orders", {
            "orddoc": f"<order><lineitem price='{value}'/></order>"})
    database.create_xml_index("li_price", "orders", "orddoc",
                              "//lineitem/@price", "DOUBLE")
    return database


class TestCostBasedPlanning:
    def test_selective_probe_kept(self, priced_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//lineitem[@price > 95]")
        result = priced_db.xquery(query, cost_based=True)
        assert result.stats.indexes_used == ["li_price"]
        assert result.stats.docs_scanned < 10

    def test_unselective_probe_skipped(self, priced_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//lineitem[@price >= 0]")
        result = priced_db.xquery(query, cost_based=True)
        assert result.stats.indexes_used == []
        assert any("cost model skips" in note
                   for note in result.stats.plan_notes)
        baseline = priced_db.xquery(query, use_indexes=False)
        assert result.serialize() == baseline.serialize()

    def test_rule_based_default_always_probes(self, priced_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//lineitem[@price >= 0]")
        result = priced_db.xquery(query)   # rule-based default
        assert result.stats.indexes_used == ["li_price"]

    def test_threshold_configurable(self, priced_db):
        query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                 "//lineitem[@price > 40]")
        strict = priced_db.xquery(query, cost_based=True,
                                  prefilter_threshold=0.1)
        assert strict.stats.indexes_used == []
        lax = priced_db.xquery(query, cost_based=True,
                               prefilter_threshold=0.99)
        assert lax.stats.indexes_used == ["li_price"]

    def test_estimate_probe_accounting(self, priced_db):
        model = CostModel(prefilter_threshold=0.5)
        index = priced_db.xml_indexes["li_price"]
        estimate = model.estimate_probe(index, 90.0, None, 100)
        assert estimate.worthwhile
        assert estimate.docs_fraction < 0.3
        estimate = model.estimate_probe(index, None, None, 100)
        assert not estimate.worthwhile

    def test_distinct_doc_count_maintained(self, priced_db):
        index = priced_db.xml_indexes["li_price"]
        assert index.distinct_doc_count() == 100
        removed = priced_db.delete_rows(
            "orders", lambda values:
            "price='5'" in _doc_text(values["orddoc"]))
        assert removed == 1
        assert index.distinct_doc_count() == 99
        priced_db.delete_rows("orders")
        assert index.distinct_doc_count() == 0


def _doc_text(stored) -> str:
    from repro.xmlio import serialize
    return serialize(stored.document).replace('"', "'")
