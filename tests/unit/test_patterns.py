"""Unit tests for XMLPATTERN parsing, matching, and containment."""

import pytest

from repro.core.patterns import (PathComponent, erase_namespaces,
                                 parse_xmlpattern, pattern_contains)
from repro.errors import PatternSyntaxError


def path(*specs: str) -> list[PathComponent]:
    """'e:uri:local' / 'a:uri:local' / 't' / 'c' / 'p:target' specs."""
    kinds = {"e": "element", "a": "attribute", "t": "text", "c": "comment",
             "p": "processing-instruction"}
    components = []
    for spec in specs:
        parts = spec.split(":")
        kind = kinds[parts[0]]
        if kind in ("element", "attribute"):
            uri = parts[1] if len(parts) > 2 else ""
            local = parts[-1]
            components.append(PathComponent(kind, uri, local))
        elif kind == "processing-instruction":
            components.append(PathComponent(kind, "", parts[1]))
        else:
            components.append(PathComponent(kind))
    return components


class TestParsing:
    def test_simple(self):
        pattern = parse_xmlpattern("/order/lineitem/@price")
        assert pattern.max_steps == 3

    def test_namespace_declarations(self):
        pattern = parse_xmlpattern(
            'declare default element namespace "http://d"; '
            'declare namespace c="http://c"; //c:nation/x')
        alternative = pattern.alternatives[0]
        assert alternative.steps[0].test.uri == "http://c"
        assert alternative.steps[1].test.uri == "http://d"

    def test_attribute_has_no_default_namespace(self):
        pattern = parse_xmlpattern(
            'declare default element namespace "http://d"; //@price')
        assert pattern.alternatives[0].steps[0].test.uri == ""

    def test_kind_tests(self):
        for text in ["//text()", "//comment()", "//node()",
                     "//processing-instruction()",
                     "//processing-instruction(style)"]:
            parse_xmlpattern(text)

    @pytest.mark.parametrize("bad", [
        "order/x",          # missing leading slash
        "//a[1]",           # predicates not allowed
        "//",               # empty step
        "//p:x",            # undeclared prefix
        "",                 # empty
        "//a/self::b extra",  # trailing junk
    ])
    def test_rejects(self, bad):
        with pytest.raises(PatternSyntaxError):
            parse_xmlpattern(bad)


class TestMatching:
    def test_exact(self):
        pattern = parse_xmlpattern("/order/lineitem/@price")
        assert pattern.matches_path(path("e:order", "e:lineitem",
                                         "a:price"))
        assert not pattern.matches_path(path("e:order", "a:price"))
        assert not pattern.matches_path(
            path("e:x", "e:order", "e:lineitem", "a:price"))

    def test_descendant_gap(self):
        pattern = parse_xmlpattern("//lineitem/@price")
        assert pattern.matches_path(path("e:lineitem", "a:price"))
        assert pattern.matches_path(path("e:a", "e:b", "e:lineitem",
                                         "a:price"))
        assert not pattern.matches_path(path("e:lineitem", "e:x",
                                             "a:price"))

    def test_wildcards(self):
        pattern = parse_xmlpattern("//@*")
        assert pattern.matches_path(path("e:any", "a:thing"))
        assert not pattern.matches_path(path("e:any", "e:thing"))

    def test_namespace_matching(self):
        pattern = parse_xmlpattern(
            'declare namespace c="http://c"; //c:nation')
        assert pattern.matches_path(
            [PathComponent("element", "http://c", "nation")])
        assert not pattern.matches_path(
            [PathComponent("element", "", "nation")])

    def test_namespace_wildcard(self):
        pattern = parse_xmlpattern("//*:nation")
        assert pattern.matches_path(
            [PathComponent("element", "http://any", "nation")])

    def test_text_step(self):
        pattern = parse_xmlpattern("//price/text()")
        assert pattern.matches_path(path("e:price", "t"))
        assert not pattern.matches_path(path("e:price"))

    def test_self_axis_merges(self):
        pattern = parse_xmlpattern("//lineitem/self::node()")
        assert pattern.matches_path(path("e:a", "e:lineitem"))

    def test_descendant_axis_explicit(self):
        pattern = parse_xmlpattern("/a/descendant::b")
        assert pattern.matches_path(path("e:a", "e:b"))
        assert pattern.matches_path(path("e:a", "e:x", "e:b"))
        assert not pattern.matches_path(path("e:a"))

    def test_matches_node(self):
        from repro.xmlio import parse_document
        doc = parse_document("<order><lineitem price='1'/></order>")
        price = doc.root_element.children[0].attributes[0]
        assert parse_xmlpattern("//lineitem/@price").matches_node(price)
        assert not parse_xmlpattern("//order/@price").matches_node(price)


# Containment ground truth from the paper's sections.
CONTAINMENT_CASES = [
    # (index pattern, query pattern, contained?)
    ("//lineitem/@price", "//order/lineitem/@price", True),   # §2.2 Q1
    ("//order/lineitem/@price", "//lineitem/@price", False),
    ("//lineitem/@price", "//order/lineitem/@*", False),      # §2.2 Q2
    ("//custid", "//order/custid", True),                     # §3.1 Q4
    ("/customer/id", "/customer/id", True),
    ("/customer/id", "//id", False),
    ("//id", "/customer/id", True),
    ("//nation",
     'declare default element namespace "http://o"; //nation',
     False),                                                   # §3.7 Q28
    ('declare default element namespace "http://o"; //nation',
     'declare default element namespace "http://o"; //nation', True),
    ("//*:nation",
     'declare default element namespace "http://o"; //nation', True),
    ("//@price",
     'declare default element namespace "http://o"; '
     "//lineitem/@price", True),                               # §3.7
    ("//price", "//lineitem/price/text()", False),             # §3.8 Q29
    ("//price/text()", "//lineitem/price/text()", True),
    ("//price", "//lineitem/price", True),
    ("//*", "//@price", False),                                # §3.9
    ("//node()", "//@price", False),
    ("//@*", "//@price", True),                                # Tip 12
    ("/descendant-or-self::node()/attribute::*", "//@price", True),
    ("//a//b", "//a/b", True),
    ("//a/b", "//a//b", False),
    ("//a/*/b", "//a/c/b", True),
    ("//a/c/b", "//a/*/b", False),
    ("//a", "//a/text()", False),
    ("//text()", "//a/text()", True),
    ("//node()", "//a/text()", True),
    ("//node()", "//a/comment()", True),
    ("//comment()", "//a", False),
]


class TestContainment:
    @pytest.mark.parametrize("index,query,expected", CONTAINMENT_CASES)
    def test_table(self, index, query, expected):
        assert pattern_contains(parse_xmlpattern(index),
                                parse_xmlpattern(query)) is expected

    def test_reflexive(self):
        for text, _query, _expected in CONTAINMENT_CASES[:8]:
            pattern = parse_xmlpattern(text)
            assert pattern_contains(pattern, pattern)

    def test_erase_namespaces_diagnosis(self):
        ns_query = parse_xmlpattern(
            'declare default element namespace "http://o"; //nation')
        plain = parse_xmlpattern("//nation")
        assert not pattern_contains(plain, ns_query)
        assert pattern_contains(erase_namespaces(plain),
                                erase_namespaces(ns_query))
