"""Regression tests for the conformance bugfix sweep.

Each class pins one bug that shipped before the fix:

* ``fn:substring`` used Python ``round()`` (banker's rounding) and
  raised ``ValueError`` on NaN/INF positions;
* ``fn:substring-after`` with an empty separator returned ``""``
  instead of the input string;
* SQL doc filters silently dropped rows that reference no XML
  documents (a dead always-False arm in ``_rows_for``);
* ``fn:number`` and ``_bounds_for`` swallowed *every* exception, so
  injected programming bugs (TypeError) vanished into NaN / a skipped
  index probe instead of failing loudly.
"""

import pytest

from repro import Database
from repro.errors import CastError
from repro.planner.plan import _bounds_for
from repro.core.predicates import PredicateCandidate
from repro.xmlio import serialize_sequence
from repro.xquery.evaluator import evaluate as ev


def run(query: str) -> str:
    return serialize_sequence(ev(query))


class TestSubstringRounding:
    def test_half_rounds_toward_positive_infinity(self):
        # Python round(2.5) == 2 (banker's); XPath fn:round(2.5) eq 3.
        assert run("substring('12345', 2.5)") == "345"

    def test_half_length_rounds_too(self):
        # start round(1.5)=2, length round(2.5)=3 -> positions 2..4.
        assert run("substring('12345', 1.5, 2.5)") == "234"

    def test_exact_positions_unchanged(self):
        assert run("substring('hamburger', 5, 3)") == "urg"

    def test_nan_start_is_empty(self):
        # F&O 7.4.3: NaN comparisons are false -> zero-length string
        # (the old code raised ValueError on non-finite positions).
        assert run("substring('12345', xs:double('NaN'))") == ""

    def test_nan_length_is_empty(self):
        assert run("substring('12345', 1, xs:double('NaN'))") == ""

    def test_infinite_length_keeps_tail(self):
        assert run("substring('12345', -42, xs:double('INF'))") == "12345"

    def test_minus_inf_start_plus_inf_length_is_empty(self):
        # -INF + INF is NaN, so no position qualifies.
        assert run("substring('12345', xs:double('-INF'), "
                   "xs:double('INF'))") == ""

    def test_negative_start_clips(self):
        assert run("substring('motor car', 0)") == "motor car"
        assert run("substring('12345', -2, 5)") == "12"


class TestSubstringBeforeAfterEmptySeparator:
    def test_substring_after_empty_separator_returns_input(self):
        # F&O 7.5.5: "" occurs before the first character, so the
        # remainder after it is the whole string (old code: "").
        assert run("substring-after('a=b', '')") == "a=b"

    def test_substring_before_empty_separator_returns_empty(self):
        # F&O 7.5.4: everything before "" is the zero-length string.
        assert run("substring-before('a=b', '')") == ""

    def test_separator_found(self):
        assert run("substring-after('a=b', '=')") == "b"
        assert run("substring-before('a=b', '=')") == "a"

    def test_separator_missing(self):
        assert run("substring-after('abc', 'x')") == ""
        assert run("substring-before('abc', 'x')") == ""


class TestDocFilterKeepsDoclessRows:
    @pytest.fixture()
    def mixed_db(self):
        db = Database()
        db.create_table("t", [("id", "INTEGER"), ("doc", "XML")])
        db.insert("t", {"id": 1,
                        "doc": "<item><price>150</price></item>"})
        db.insert("t", {"id": 2,
                        "doc": "<item><price>10</price></item>"})
        # The relational-only row: no XML document at all.
        db.insert("t", {"id": 3, "doc": None})
        db.execute("CREATE INDEX px ON t(doc) USING XMLPATTERN "
                   "'/item/price' AS DOUBLE")
        return db

    def test_rows_for_keeps_null_xml_row_under_doc_filter(self, mixed_db):
        # Unit-level pin on _rows_for: with a doc filter installed, a
        # row whose XML column is NULL must survive to the residual
        # WHERE (the old dead-arm filter dropped it outright).
        from repro.sql.executor import _SQLExecutor, alias_table_map
        from repro.sql.parser import parse_statement
        statement = parse_statement(
            "SELECT id FROM t WHERE XMLEXISTS('$DOC/item[price > 100]' "
            "PASSING doc AS \"DOC\")")
        executor = _SQLExecutor(mixed_db, use_indexes=True)
        plan = executor._plan(statement, alias_table_map(statement))
        ref = statement.from_refs[0]
        assert ref.alias in plan.doc_filters, "index prefilter expected"
        rows = executor._rows_for(ref, plan, [], {})
        ids = {row.values["id"] for row in rows}
        assert 3 in ids, "doc-less row must not be dropped by the " \
                         "doc filter"
        assert 1 in ids
        assert 2 not in ids, "filtered-out document should be pruned"

    def test_end_to_end_xmlexists_still_correct(self, mixed_db):
        result = mixed_db.sql(
            "SELECT id FROM t WHERE XMLEXISTS('$DOC/item[price > 100]' "
            "PASSING doc AS \"DOC\")")
        assert [row[0] for row in result.rows] == [1]
        unindexed = mixed_db.sql(
            "SELECT id FROM t WHERE XMLEXISTS('$DOC/item[price > 100]' "
            "PASSING doc AS \"DOC\")", use_indexes=False)
        assert result.rows == unindexed.rows


class TestNarrowedExceptionHandling:
    def test_fn_number_uncastable_is_nan(self):
        assert run("number('not a number')") == "NaN"

    def test_fn_number_propagates_injected_type_error(self, monkeypatch):
        # Mutant-style: if atomic.cast itself breaks with a TypeError,
        # fn:number must not turn the bug into NaN.
        from repro.xquery import functions as functions_module

        def broken_cast(value, target):
            raise TypeError("injected programming bug")

        monkeypatch.setattr(functions_module.atomic, "cast", broken_cast)
        with pytest.raises(TypeError, match="injected"):
            run("number('42')")

    @staticmethod
    def _candidate():
        from repro.core.predicates import PredicateContext
        from repro.xdm import atomic
        return PredicateCandidate(
            column="t.doc", path=None, op="=", operand_type="DOUBLE",
            operand_value=atomic.string("boom"),
            context=PredicateContext.WHERE_CLAUSE)

    def test_bounds_for_skips_probe_on_cast_error(self):
        class CastFailIndex:
            def key_for_value(self, value):
                raise CastError("uncastable bound")

        assert _bounds_for(self._candidate(), CastFailIndex()) is None

    def test_bounds_for_propagates_injected_type_error(self):
        class BuggyIndex:
            def key_for_value(self, value):
                raise TypeError("injected programming bug")

        with pytest.raises(TypeError, match="injected"):
            _bounds_for(self._candidate(), BuggyIndex())
