"""Unit tests for the XQuery parser."""

import pytest

from repro.errors import XQueryStaticError
from repro.xquery import ast
from repro.xquery.parser import parse_xquery


def body(source: str):
    return parse_xquery(source).body


class TestLiteralsAndPrimaries:
    def test_numeric_literal_types(self):
        # §3.1 hinges on this: 100 is numeric, "100" is a string.
        assert body("100").value.type_name == "xs:integer"
        assert body("99.50").value.type_name == "xs:decimal"
        assert body("1e3").value.type_name == "xs:double"
        assert body('"100"').value.type_name == "xs:string"

    def test_string_escapes(self):
        assert body("'it''s'").value.value == "it's"
        assert body('"a&amp;b"').value.value == "a&b"

    def test_variable(self):
        assert body("$x").name == "x"

    def test_parenthesized_empty(self):
        assert body("()").items == []

    def test_comments_ignored(self):
        assert body("(: note (: nested :) :) 1").value.value == 1


class TestPaths:
    def test_relative_child_steps(self):
        path = body("$d/order/lineitem")
        assert isinstance(path, ast.PathExpr)
        assert len(path.steps) == 3
        assert path.steps[1].test.local == "order"

    def test_descendant_shorthand(self):
        path = body("$d//lineitem")
        kinds = [step.test for step in path.steps[1:]]
        assert isinstance(kinds[0], ast.KindTest)
        assert path.steps[2].test.local == "lineitem"

    def test_attribute_step(self):
        path = body("$d/@price")
        assert path.steps[1].axis == "attribute"

    def test_explicit_axes(self):
        path = body("$d/descendant-or-self::node()/attribute::*")
        assert path.steps[1].axis == "descendant-or-self"
        assert path.steps[2].axis == "attribute"

    def test_wildcards(self):
        module = parse_xquery(
            'declare namespace ns="http://n"; $d/*:nation/ns:*/node()')
        path = module.body
        first = path.steps[1].test
        assert first.uri is None and first.local == "nation"
        second = path.steps[2].test
        assert second.uri == "http://n" and second.local is None

    def test_predicates(self):
        path = body("$d/lineitem[@price > 100][2]")
        assert len(path.steps[1].predicates) == 2

    def test_leading_slash_absolute(self):
        path = body("/order")
        assert path.absolute == "/"

    def test_double_slash_absolute(self):
        path = body("//order")
        assert path.absolute == "//"

    def test_function_call_step(self):
        path = body("$i/custid/xs:double(.)")
        assert isinstance(path.steps[2], ast.ExprStep)

    def test_parent_abbreviation(self):
        path = body("$d/..")
        assert path.steps[1].axis == "parent"

    def test_kind_test_steps(self):
        path = body("$d/text()")
        assert path.steps[1].test.kind == "text"


class TestExpressions:
    def test_flwor_shape(self):
        expr = body("for $i in (1,2) let $j := $i where $j > 1 "
                    "order by $j descending return $j")
        kinds = [type(clause).__name__ for clause in expr.clauses]
        assert kinds == ["ForClause", "LetClause", "WhereClause",
                         "OrderByClause"]
        assert expr.clauses[3].specs[0].descending

    def test_multi_variable_for(self):
        expr = body("for $i in (1), $j in (2) return $i")
        assert len(expr.clauses) == 2

    def test_quantified(self):
        expr = body("some $x in (1,2) satisfies $x eq 2")
        assert expr.quantifier == "some"

    def test_comparison_operator_classes(self):
        assert isinstance(body("1 = 2"), ast.GeneralComparison)
        assert isinstance(body("1 eq 2"), ast.ValueComparison)
        assert isinstance(body("$a is $b"), ast.NodeComparison)
        assert isinstance(body("$a << $b"), ast.NodeComparison)

    def test_precedence_and_or(self):
        expr = body("1 = 1 or 2 = 2 and 3 = 3")
        assert isinstance(expr, ast.OrExpr)
        assert isinstance(expr.right, ast.AndExpr)

    def test_arithmetic_precedence(self):
        expr = body("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_set_operators(self):
        assert body("$a union $b").op == "union"
        assert body("$a | $b").op == "union"
        assert body("$a except $b").op == "except"
        assert body("$a intersect $b").op == "intersect"

    def test_cast_and_castable(self):
        assert isinstance(body("'1' cast as xs:double"), ast.CastExpr)
        assert isinstance(body("'1' castable as xs:double?"),
                          ast.CastableExpr)

    def test_treat_and_instance(self):
        treat = body("$x treat as document-node()")
        assert treat.sequence_type.item_type == "document-node"
        inst = body("$x instance of xs:string*")
        assert inst.sequence_type.occurrence == "*"

    def test_if_expression(self):
        assert isinstance(body("if (1) then 2 else 3"), ast.IfExpr)

    def test_range(self):
        assert isinstance(body("1 to 5"), ast.RangeExpr)


class TestConstructors:
    def test_direct_element(self):
        ctor = body('<result a="1" b="{2+3}">text{$x}</result>')
        assert ctor.name == "result"
        assert len(ctor.attributes) == 2
        assert ctor.content[0] == "text"
        assert isinstance(ctor.content[1], ast.VarRef)

    def test_nested_elements(self):
        ctor = body("<a><b/><c>x</c></a>")
        assert len(ctor.content) == 2

    def test_namespace_declaration_on_constructor(self):
        ctor = body('<a xmlns="http://n" xmlns:p="http://p"/>')
        assert ctor.namespace_declarations[""] == "http://n"
        assert ctor.namespace_declarations["p"] == "http://p"

    def test_boundary_whitespace_stripped(self):
        ctor = body("<a>\n  <b/>\n</a>")
        assert all(not isinstance(piece, str) for piece in ctor.content)

    def test_brace_escapes(self):
        ctor = body("<a>{{literal}}</a>")
        assert ctor.content == ["{literal}"]

    def test_computed_constructors(self):
        assert isinstance(body("element foo {1}"),
                          ast.ComputedElementConstructor)
        assert isinstance(body("attribute bar {'x'}"),
                          ast.ComputedAttributeConstructor)
        assert isinstance(body("text {'x'}"), ast.ComputedTextConstructor)
        assert isinstance(body("document { <a/> }"),
                          ast.ComputedDocumentConstructor)

    def test_element_named_element_is_name_test(self):
        path = body("$d/element")
        assert path.steps[1].test.local == "element"


class TestProlog:
    def test_namespace_declarations(self):
        module = parse_xquery(
            'declare default element namespace "http://d"; '
            'declare namespace c="http://c"; $x')
        assert module.prolog.default_element_namespace == "http://d"
        assert module.prolog.namespaces["c"] == "http://c"

    def test_construction_mode(self):
        module = parse_xquery("declare construction preserve; 1")
        assert module.prolog.construction_mode == "preserve"

    def test_default_ns_applies_to_name_tests(self):
        module = parse_xquery(
            'declare default element namespace "http://d"; $x/order')
        step = module.body.steps[1]
        assert step.test.uri == "http://d"

    def test_default_ns_not_applied_to_attributes(self):
        module = parse_xquery(
            'declare default element namespace "http://d"; $x/@price')
        assert module.body.steps[1].test.uri == ""


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "for $x in",                    # incomplete FLWOR
        "1 +",                          # dangling operator
        "<a>",                          # unterminated constructor
        "<a></b>",                      # mismatched constructor tags
        "$x/unknown:name",              # undeclared prefix
        "'unterminated",                # bad string
        "(: unterminated",              # bad comment
        "1 2",                          # trailing input
        "let $x := 1",                  # FLWOR without return
    ])
    def test_rejects(self, bad):
        with pytest.raises(XQueryStaticError):
            parse_xquery(bad)
