"""Unit tests for the autopilot layers: fingerprinting and workload
profiling, cost calibration (damped update, clamping, persistence),
XMLPATTERN rendering, candidate generation/validation, and the
buffer-pool scan-resistance fix for bulk index builds."""

import json

import pytest

from repro.autopilot.calibrate import (FACTOR_MAX, FACTOR_MIN,
                                       CostCalibration)
from repro.autopilot.candidates import (generate_candidates,
                                        render_xmlpattern)
from repro.autopilot.profiler import WorkloadProfiler, fingerprint
from repro.core.eligibility import check_index
from repro.core.patterns import parse_xmlpattern, pattern_contains
from repro.planner.cost import CostModel
from repro.planner.stats import ExecutionStats
from repro.storage.catalog import Database
from repro.workload.paperqueries import (PAPER_QUERIES,
                                         load_paper_fixture,
                                         run_paper_query)


class TestFingerprint:
    def test_numeric_literals_are_masked(self):
        a = fingerprint("//order[lineitem/@price > 100]")
        b = fingerprint("//order[lineitem/@price > 250.5]")
        assert a == b
        assert "?" in a

    def test_string_literals_are_preserved(self):
        # Masking strings would merge distinct collections into one
        # workload entry — the collection IS the statement's identity.
        a = fingerprint("db2-fn:xmlcolumn('ORDERS.ORDDOC')//order")
        b = fingerprint("db2-fn:xmlcolumn('CUSTOMER.CDOC')//order")
        assert a != b

    def test_identifiers_with_digits_survive(self):
        assert "db2-fn" in fingerprint("db2-fn:xmlcolumn('T.C')")

    def test_whitespace_collapses(self):
        assert fingerprint("for  $i \n in //a") == \
            fingerprint("for $i in //a")


class TestWorkloadProfiler:
    def _stats(self, docs=5):
        stats = ExecutionStats()
        stats.docs_scanned = docs
        return stats

    def test_aggregates_by_fingerprint(self):
        profiler = WorkloadProfiler()
        profiler.observe_query("//a[@x > 1]", "xquery",
                               self._stats(4), 0.01)
        profiler.observe_query("//a[@x > 99]", "xquery",
                               self._stats(6), 0.03)
        profiles = profiler.statements()
        assert len(profiles) == 1
        assert profiles[0].count == 2
        assert profiles[0].mean_docs_scanned == 5.0

    def test_eviction_keeps_hot_statements(self):
        profiler = WorkloadProfiler(max_statements=2)
        for _ in range(5):
            profiler.observe_query("'hot'", "xquery", self._stats(), 0.0)
        profiler.observe_query("'warm'", "xquery", self._stats(), 0.0)
        profiler.observe_query("'cold'", "xquery", self._stats(), 0.0)
        kept = {profile.fingerprint
                for profile in profiler.statements()}
        assert "'hot'" in kept
        assert len(kept) == 2

    def test_write_counts(self):
        profiler = WorkloadProfiler()
        profiler.observe_write("orders")
        profiler.observe_write("orders", count=3)
        assert profiler.write_rate("orders") == 4
        assert profiler.write_rate("customer") == 0


class TestCostCalibration:
    def test_underestimate_raises_factor(self):
        calibration = CostCalibration()
        q_error = calibration.observe(estimated=10, actual=100)
        assert q_error == pytest.approx(10.0)
        assert calibration.factor > 1.0

    def test_overestimate_lowers_factor(self):
        calibration = CostCalibration()
        calibration.observe(estimated=100, actual=10)
        assert calibration.factor < 1.0

    def test_damping_and_clamp(self):
        calibration = CostCalibration()
        for _ in range(100):
            calibration.observe(estimated=1, actual=10_000)
        assert calibration.factor == FACTOR_MAX
        for _ in range(200):
            calibration.observe(estimated=10_000, actual=1)
        assert calibration.factor == FACTOR_MIN

    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / CostCalibration.FILENAME
        calibration = CostCalibration(path=path)
        calibration.observe(10, 40)
        calibration.save()
        loaded = CostCalibration.load(path)
        assert loaded.factor == pytest.approx(calibration.factor)
        assert len(loaded.samples) == 1

    def test_corrupt_file_starts_fresh(self, tmp_path):
        path = tmp_path / CostCalibration.FILENAME
        path.write_bytes(b"{not json")
        loaded = CostCalibration.load(path)
        assert loaded.factor == 1.0
        assert not loaded.samples

    def test_missing_file_starts_fresh(self, tmp_path):
        loaded = CostCalibration.load(tmp_path / "absent.json")
        assert loaded.factor == 1.0

    def test_cost_model_folds_factor_in(self, paper_db):
        load = paper_db
        index = load.create_xml_index(
            "li_price", "orders", "orddoc", "//lineitem/@price",
            "DOUBLE")
        total = len(load.documents("orders", "orddoc"))
        plain = CostModel().estimate_probe(index, 10.0, 60.0, total)
        boosted = CostModel(
            calibration=CostCalibration(factor=4.0)).estimate_probe(
            index, 10.0, 60.0, total)
        assert boosted.docs_fraction >= plain.docs_fraction
        assert "calibration x4.00" in boosted.note

    def test_cost_model_clamps_corrupt_factor(self):
        class Corrupt:
            factor = 1e9
        assert CostModel(calibration=Corrupt()).calibration_factor == 10.0


class TestRenderXmlpattern:
    def _roundtrip(self, text):
        return render_xmlpattern(parse_xmlpattern(text))

    def test_exact_linear_path(self):
        assert self._roundtrip("/order/custid") == "/order/custid"

    def test_gap_and_attribute(self):
        assert self._roundtrip("//lineitem/@price") == \
            "//lineitem/@price"

    def test_text_step(self):
        assert self._roundtrip("/order/price/text()") == \
            "/order/price/text()"

    def test_namespace_gets_declared(self):
        rendered = self._roundtrip(
            'declare namespace s="urn:shop"; /s:order/s:custid')
        assert rendered.startswith('declare namespace p1="urn:shop"; ')
        assert rendered.endswith("/p1:order/p1:custid")
        # and it parses back to a pattern containing the original
        original = parse_xmlpattern(
            'declare namespace s="urn:shop"; /s:order/s:custid')
        assert pattern_contains(parse_xmlpattern(rendered), original)

    def test_wildcard_local_renders_star_colon(self):
        assert self._roundtrip("/*:order/*:custid") == \
            "/*:order/*:custid"

    def test_bare_wildcard_is_not_recommended(self):
        assert self._roundtrip("//*") is None


class TestCandidateGeneration:
    def _profiled(self, database, queries):
        pilot = database.autopilot()
        for number in queries:
            run_paper_query(database, number)
        return pilot

    def test_candidates_cover_paper_indexes(self, paper_db):
        pilot = self._profiled(paper_db, sorted(PAPER_QUERIES)[:12])
        advice = pilot.advise()
        patterns = {candidate.pattern for candidate in advice}
        assert "//lineitem/@price" in patterns
        assert "/customer/id" in patterns

    def test_every_recommendation_is_eligible(self, paper_db):
        """The advisor must never advise DDL it would refuse to use."""
        from repro.autopilot.candidates import _statement_candidates
        from repro.storage.xmlindex import XmlIndex
        pilot = self._profiled(paper_db, sorted(PAPER_QUERIES))
        for candidate in pilot.advise():
            index = XmlIndex(candidate.name, candidate.table,
                             candidate.column, candidate.pattern,
                             candidate.index_type)
            served_any = False
            for profile in pilot.profiler.statements():
                if profile.fingerprint not in candidate.statements:
                    continue
                for predicate in _statement_candidates(paper_db,
                                                       profile):
                    if check_index(index, predicate).eligible:
                        served_any = True
            assert served_any, candidate.ddl

    def test_no_advice_when_predicates_are_served(self, indexed_db):
        # Q1/Q2's numeric price predicates are served by li_price;
        # nothing is left to recommend.  (Q3's *string* comparison
        # would legitimately earn a VARCHAR recommendation — a DOUBLE
        # index cannot serve it, §3.1.)
        pilot = self._profiled(indexed_db, [1, 2])
        assert pilot.advise() == []

    def test_writes_penalize_benefit(self, paper_db):
        pilot = self._profiled(paper_db, [1])
        baseline = {candidate.name: candidate.benefit
                    for candidate in pilot.advise()}
        pilot.profiler.observe_write("orders", count=10)
        penalized = {candidate.name: candidate.benefit
                     for candidate in pilot.advise()}
        for name, benefit in penalized.items():
            assert benefit < baseline[name]

    def test_containment_dedupe(self, paper_db):
        pilot = self._profiled(paper_db, sorted(PAPER_QUERIES))
        advice = pilot.advise()
        doubles = [candidate for candidate in advice
                   if candidate.index_type == "DOUBLE"]
        for i, first in enumerate(doubles):
            for second in doubles[i + 1:]:
                if (first.table, first.column) != (second.table,
                                                   second.column):
                    continue
                assert not pattern_contains(
                    parse_xmlpattern(first.pattern),
                    parse_xmlpattern(second.pattern))

    def test_json_report_is_serializable(self, paper_db):
        pilot = self._profiled(paper_db, [1, 2])
        pilot.advise()
        json.dumps(pilot.to_dict())


class TestBulkBuildPoolCharge:
    """Satellite 1: index builds charge the buffer pool and stay
    within budget instead of stacking every materialized tree."""

    BUDGET = 2000

    def _watch_peak(self, database):
        pool = database.buffer_pool
        peaks = []
        original = pool.release

        def watching_release(stored):
            peaks.append(pool.resident_bytes)
            original(stored)
        pool.release = watching_release
        return peaks

    @pytest.mark.parametrize("online", [False, True])
    def test_build_stays_within_budget(self, online):
        database = Database(buffer_pool_bytes=self.BUDGET)
        load_paper_fixture(database, with_indexes=False)
        pool = database.buffer_pool
        peaks = self._watch_peak(database)
        # Full per-document cost: columns plus the materialized tree
        # the build holds while indexing it (the largest fixture doc
        # alone exceeds this budget — that is the bound, not zero).
        biggest = max(
            stored._store.nbytes() + stored._store.materialized_nbytes()
            for stored in database.documents("orders", "orddoc"))
        if online:
            database.create_xml_index_online(
                "li_price", "orders", "orddoc", "//lineitem/@price",
                "DOUBLE")
        else:
            database.create_xml_index(
                "li_price", "orders", "orddoc", "//lineitem/@price",
                "DOUBLE")
        assert peaks, "release was never called during the build"
        # Transient overshoot is bounded by the document in hand, not
        # by the collection size (the pre-fix peak was 6x the budget).
        assert max(peaks) <= self.BUDGET + biggest
        assert pool.resident_bytes <= self.BUDGET

    def test_build_answers_match_unbudgeted(self):
        budgeted = Database(buffer_pool_bytes=self.BUDGET)
        unbudgeted = Database()
        for database in (budgeted, unbudgeted):
            load_paper_fixture(database, with_indexes=False)
            database.create_xml_index(
                "li_price", "orders", "orddoc", "//lineitem/@price",
                "DOUBLE")
        for number in (1, 2, 4):
            assert run_paper_query(budgeted, number) == \
                run_paper_query(unbudgeted, number)
