"""Unit tests for user-defined XQuery functions (declare function)."""

import pytest

from repro.errors import (XQueryDynamicError, XQueryStaticError,
                          XQueryTypeError)
from repro.xmlio import parse_document, serialize_sequence
from repro.xquery.evaluator import evaluate as ev


def run(query: str, **variables) -> str:
    bound = {name: value if isinstance(value, list) else [value]
             for name, value in variables.items()}
    return serialize_sequence(ev(query, variables=bound))


class TestDeclaredFunctions:
    def test_simple_function(self):
        assert run("declare function local:double($x) { $x * 2 }; "
                   "local:double(21)") == "42"

    def test_typed_parameters(self):
        assert run("declare function local:inc($x as xs:integer) "
                   "as xs:integer { $x + 1 }; local:inc(1)") == "2"

    def test_parameter_type_enforced(self):
        with pytest.raises(XQueryTypeError):
            ev("declare function local:inc($x as xs:integer) "
               "{ $x + 1 }; local:inc('one')")

    def test_return_type_enforced(self):
        with pytest.raises(XQueryTypeError):
            ev("declare function local:bad($x) as xs:string { $x }; "
               "local:bad(1)")

    def test_multiple_parameters(self):
        assert run("declare function local:area($w, $h) { $w * $h }; "
                   "local:area(6, 7)") == "42"

    def test_arity_overloading(self):
        assert run(
            "declare function local:pad($s) { local:pad($s, '!') }; "
            "declare function local:pad($s, $end) "
            "{ concat($s, $end) }; "
            "local:pad('hi')") == "hi!"

    def test_recursion(self):
        assert run(
            "declare function local:fact($n as xs:integer) "
            "as xs:integer { if ($n le 1) then 1 "
            "else $n * local:fact($n - 1) }; local:fact(6)") == "720"

    def test_runaway_recursion_capped(self):
        with pytest.raises(XQueryDynamicError):
            ev("declare function local:loop($n) { local:loop($n) }; "
               "local:loop(1)")

    def test_body_does_not_see_outer_variables(self):
        with pytest.raises(XQueryDynamicError):
            ev("declare function local:leak() { $outer }; "
               "for $outer in (1) return local:leak()")

    def test_functions_over_nodes(self):
        doc = parse_document(
            "<order><lineitem price='150'/><lineitem price='90'/>"
            "</order>")
        query = ("declare function local:expensive($o) "
                 "{ $o//lineitem[@price > 100] }; "
                 "count(local:expensive($d))")
        assert run(query, d=doc) == "1"

    def test_unprefixed_declaration_rejected(self):
        with pytest.raises(XQueryStaticError):
            ev("declare function bare($x) { $x }; bare(1)")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(XQueryStaticError):
            ev("declare function local:f($x) { $x }; "
               "declare function local:f($y) { $y }; local:f(1)")

    def test_builtin_still_reachable(self):
        assert run("declare function local:f($x) { count($x) }; "
                   "local:f((1, 2, 3))") == "3"

    def test_function_with_constructor_body(self):
        assert run("declare function local:wrap($x) "
                   "{ <wrapped>{$x}</wrapped> }; "
                   "local:wrap('v')") == "<wrapped>v</wrapped>"

    def test_database_access_inside_function(self):
        from repro import Database
        db = Database()
        db.create_table("t", [("d", "XML")])
        db.insert("t", {"d": "<a><v>1</v></a>"})
        db.insert("t", {"d": "<a><v>2</v></a>"})
        result = db.xquery(
            "declare function local:all() "
            "{ db2-fn:xmlcolumn('T.D')//v }; sum(local:all())")
        assert result.serialize() == ["3"]
