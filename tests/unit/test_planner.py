"""Unit tests for planner internals: probes, prefilters, stats."""

import pytest

from repro import Database
from repro.core.predicates import extract_candidates
from repro.planner.plan import (PrefilteredDatabase, _bounds_for,
                                plan_prefilters)
from repro.planner.stats import ExecutionStats
from repro.xquery.parser import parse_xquery


@pytest.fixture()
def small_db() -> Database:
    database = Database()
    database.create_table("t", [("d", "XML")])
    for value in [10, 50, 150, 250]:
        database.insert("t", {
            "d": f"<a><b price='{value}'/></a>"})
    database.create_xml_index("idx", "t", "d", "//b/@price", "DOUBLE")
    return database


def candidates_for(query: str):
    return extract_candidates(parse_xquery(query))


class TestBounds:
    @pytest.mark.parametrize("op,low,high,low_inc,high_inc", [
        ("=", 100.0, 100.0, True, True),
        (">", 100.0, None, False, True),
        (">=", 100.0, None, True, True),
        ("<", None, 100.0, True, False),
        ("<=", None, 100.0, True, True),
        ("gt", 100.0, None, False, True),
    ])
    def test_range_translation(self, small_db, op, low, high, low_inc,
                               high_inc):
        query = f"db2-fn:xmlcolumn('T.D')//b[@price {op} 100]"
        candidate = candidates_for(query)[0]
        index = small_db.xml_indexes["idx"]
        probe = _bounds_for(candidate, index)
        assert probe is not None
        assert probe.low == low and probe.high == high
        assert probe.low_inclusive == low_inc
        assert probe.high_inclusive == high_inc

    def test_ne_not_translated(self, small_db):
        query = "db2-fn:xmlcolumn('T.D')//b[@price != 100]"
        candidate = candidates_for(query)[0]
        assert _bounds_for(candidate, small_db.xml_indexes["idx"]) is None

    def test_exists_full_range(self, small_db):
        query = ("for $x in db2-fn:xmlcolumn('T.D')/a "
                 "where $x/b/@price return $x")
        candidate = candidates_for(query)[0]
        small_db.create_xml_index("idx_str", "t", "d", "//b/@price",
                                  "VARCHAR")
        probe = _bounds_for(candidate, small_db.xml_indexes["idx_str"])
        assert probe is not None
        assert probe.low is None and probe.high is None

    def test_incompatible_literal_skipped(self, small_db):
        # A DATE literal cannot become a DOUBLE key.
        query = ("db2-fn:xmlcolumn('T.D')"
                 "//b[@price/xs:date(.) > xs:date('2006-01-01')]")
        candidate = candidates_for(query)[0]
        assert _bounds_for(candidate, small_db.xml_indexes["idx"]) is None


class TestPlanPrefilters:
    def test_conjuncts_intersect(self, small_db):
        query = ("db2-fn:xmlcolumn('T.D')"
                 "//a[b/@price > 40][b/@price < 200]")
        stats = ExecutionStats()
        prefilters = plan_prefilters(small_db, candidates_for(query),
                                     stats)
        docs = prefilters["t.d"].run(stats)
        assert len(docs) == 2  # 50 and 150

    def test_disjunction_union(self, small_db):
        query = ("for $x in db2-fn:xmlcolumn('T.D')/a where "
                 "$x/b/@price < 20 or $x/b/@price > 200 return $x")
        stats = ExecutionStats()
        prefilters = plan_prefilters(small_db, candidates_for(query),
                                     stats)
        docs = prefilters["t.d"].run(stats)
        assert len(docs) == 2  # 10 and 250

    def test_partial_disjunction_not_planned(self, small_db):
        # One branch unindexable (text() path) -> whole OR unusable.
        query = ("for $x in db2-fn:xmlcolumn('T.D')/a where "
                 "$x/b/@price < 20 or $x/b/text() = 'x' return $x")
        stats = ExecutionStats()
        prefilters = plan_prefilters(small_db, candidates_for(query),
                                     stats)
        assert "t.d" not in prefilters

    def test_no_candidates_no_prefilters(self, small_db):
        stats = ExecutionStats()
        assert plan_prefilters(small_db, [], stats) == {}


class TestPrefilteredDatabase:
    def test_filters_column(self, small_db):
        docs = small_db.documents("t", "d")
        keep = {docs[0].doc_id}
        view = PrefilteredDatabase(small_db, {"t.d": keep})
        assert len(view.xmlcolumn("T.D")) == 1
        # Other attributes delegate to the base database.
        assert view.table("t") is small_db.table("t")

    def test_other_columns_unfiltered(self, small_db):
        small_db.create_table("u", [("d", "XML")])
        small_db.insert("u", {"d": "<x/>"})
        view = PrefilteredDatabase(small_db, {"t.d": set()})
        assert len(view.xmlcolumn("U.D")) == 1
        assert view.xmlcolumn("T.D") == []

    def test_stats_count_filtered_docs(self, small_db):
        docs = small_db.documents("t", "d")
        keep = {doc.doc_id for doc in docs[:2]}
        view = PrefilteredDatabase(small_db, {"t.d": keep})
        stats = ExecutionStats()
        view.xmlcolumn("t.d", stats=stats)
        assert stats.docs_scanned == 2


class TestStats:
    def test_explain_mentions_counters(self):
        stats = ExecutionStats()
        stats.docs_scanned = 3
        stats.record_index_use("idx")
        stats.note("hello")
        text = stats.explain()
        assert "docs_scanned=3" in text
        assert "hello" in text
        assert "idx" in text

    def test_index_use_dedup_but_scan_count(self):
        stats = ExecutionStats()
        stats.record_index_use("idx")
        stats.record_index_use("idx")
        assert stats.indexes_used == ["idx"]
        assert stats.index_scans == 2
