"""Unit tests for the server wire protocol and the query guard.

The framing layer (``repro.server.protocol``) must survive hostile
input — torn frames, oversized declared lengths, non-JSON bodies — and
the guard (``repro.xquery.guard``) must trip deadlines and budgets
from inside the evaluator's hot loops.
"""

from __future__ import annotations

import asyncio
import io

import pytest

from repro.errors import (ProtocolError, QueryLimitError,
                          QueryTimeoutError)
from repro.server.protocol import (HEADER, decode_payload, encode_frame,
                                   read_frame_async, read_frame_sync)
from repro.storage.catalog import Database
from repro.xquery.guard import QueryGuard, active_guard, guarded


def read_async(data: bytes, **kwargs):
    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame_async(reader, **kwargs)
    return asyncio.run(_run())


class TestFraming:
    def test_roundtrip(self):
        payload = {"op": "query", "statement": "1 + 1", "n": [1, None]}
        frame = encode_frame(payload)
        (length,) = HEADER.unpack(frame[:4])
        assert length == len(frame) - 4
        assert read_async(frame) == payload

    def test_non_ascii_roundtrip(self):
        payload = {"statement": "<café>ü</café>"}
        assert read_async(encode_frame(payload)) == payload

    def test_clean_eof_returns_none(self):
        assert read_async(b"") is None

    def test_torn_header_is_connection_error(self):
        with pytest.raises(ConnectionError):
            read_async(b"\x00\x00")

    def test_torn_body_is_connection_error(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(ConnectionError):
            read_async(frame[:-3])

    def test_oversized_frame_rejected_before_body_read(self):
        # Header declares 10MB; only the header is on the wire.  The
        # limit check must fire without waiting for (or allocating)
        # the body.
        with pytest.raises(ProtocolError) as info:
            read_async(HEADER.pack(10 * 1024 * 1024),
                       max_frame_bytes=1024)
        assert info.value.sqlstate == "08P01"

    def test_malformed_json_rejected(self):
        body = b"not json at all"
        with pytest.raises(ProtocolError):
            read_async(HEADER.pack(len(body)) + body)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2, 3]")

    def test_sync_reader_matches_async(self):
        payload = {"op": "stats"}
        stream = io.BytesIO(encode_frame(payload))
        assert read_frame_sync(stream) == payload

    def test_sync_reader_torn_frame(self):
        stream = io.BytesIO(encode_frame({"op": "x"})[:-1])
        with pytest.raises(ConnectionError):
            read_frame_sync(stream)


class TestQueryGuard:
    def test_inactive_by_default(self):
        assert active_guard() is None

    def test_guarded_installs_and_restores(self):
        guard = QueryGuard()
        with guarded(guard):
            assert active_guard() is guard
        assert active_guard() is None

    def test_deadline_trips_on_tick(self):
        guard = QueryGuard(timeout_seconds=-1.0)  # already expired
        with pytest.raises(QueryTimeoutError) as info:
            guard.tick(QueryGuard.CHECK_EVERY)
        assert info.value.sqlstate == "57014"

    def test_cancel_trips_next_check(self):
        guard = QueryGuard()
        guard.cancel()
        with pytest.raises(QueryTimeoutError):
            guard.tick(QueryGuard.CHECK_EVERY)

    def test_row_budget(self):
        guard = QueryGuard(max_rows=10)
        guard.check_items(10)  # at the cap: fine
        with pytest.raises(QueryLimitError) as info:
            guard.check_items(11)
        assert info.value.sqlstate == "54000"

    def test_byte_budget_accumulates(self):
        guard = QueryGuard(max_bytes=100)
        guard.charge_bytes(60)
        with pytest.raises(QueryLimitError):
            guard.charge_bytes(60)

    def test_evaluator_honors_deadline_mid_flight(self):
        """An expired deadline aborts a FLWOR *while it runs* — the
        evaluator's own loop trips it, not a post-hoc check."""
        database = Database()
        database.create_table("t", [("d", "XML")])
        database.insert("t", {"d": "<r>" + "<x>1</x>" * 600 + "</r>"})
        guard = QueryGuard(timeout_seconds=-1.0)
        with guarded(guard):
            with pytest.raises(QueryTimeoutError):
                database.xquery(
                    "for $a in db2-fn:xmlcolumn('T.D')//x, "
                    "    $b in db2-fn:xmlcolumn('T.D')//x "
                    "return $a + $b")

    def test_evaluator_honors_row_budget_mid_flight(self):
        database = Database()
        database.create_table("t", [("d", "XML")])
        database.insert("t", {"d": "<r>" + "<x>1</x>" * 50 + "</r>"})
        guard = QueryGuard(max_rows=10)
        with guarded(guard):
            with pytest.raises(QueryLimitError):
                database.xquery(
                    "for $x in db2-fn:xmlcolumn('T.D')//x return $x")

    def test_unguarded_query_is_unlimited(self):
        database = Database()
        database.create_table("t", [("d", "XML")])
        database.insert("t", {"d": "<r>" + "<x>1</x>" * 50 + "</r>"})
        result = database.xquery(
            "for $x in db2-fn:xmlcolumn('T.D')//x return $x")
        assert len(result.items) == 50
