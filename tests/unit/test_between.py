"""Unit tests for between detection (§3.10)."""

from repro.core.between import detect_between
from repro.core.predicates import extract_candidates
from repro.xquery.parser import parse_xquery

XMLCOL = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"


def groups(query: str):
    return detect_between(extract_candidates(parse_xquery(query)))


class TestDetection:
    def test_attribute_pair_single_scan(self):
        found = groups(f"{XMLCOL}//lineitem[@price>100 and @price<200]")
        assert len(found) == 1
        assert found[0].single_scan

    def test_element_general_pair_two_scans(self):
        found = groups(f"{XMLCOL}//lineitem[price > 100 and price < 200]")
        assert len(found) == 1
        assert not found[0].single_scan

    def test_value_comparison_single_scan(self):
        found = groups(f"{XMLCOL}//lineitem[price gt 100 and "
                       f"price lt 200]")
        assert len(found) == 1
        assert found[0].single_scan

    def test_self_axis_single_scan(self):
        found = groups(f"{XMLCOL}//lineitem/price"
                       f"[. > 100 and . < 200]")
        assert len(found) == 1
        assert found[0].single_scan

    def test_data_step_single_scan(self):
        found = groups(f"{XMLCOL}//lineitem[price/data()"
                       f"[. > 100 and . < 200]]")
        assert len(found) == 1
        assert found[0].single_scan

    def test_different_paths_not_paired(self):
        found = groups(f"{XMLCOL}//lineitem[@price > 100 and "
                       f"@quantity < 5]")
        assert found == []

    def test_unrelated_conjunctions_not_paired(self):
        found = groups(
            f"for $a in {XMLCOL}//lineitem[@price > 100] "
            f"for $b in {XMLCOL}//lineitem[@price < 200] return ($a,$b)")
        assert found == []

    def test_same_direction_not_paired(self):
        found = groups(f"{XMLCOL}//lineitem[@price > 100 and "
                       f"@price > 200]")
        assert found == []

    def test_inclusive_operators_pair(self):
        found = groups(f"{XMLCOL}//lineitem[@price >= 100 and "
                       f"@price <= 200]")
        assert len(found) == 1
        assert found[0].single_scan

    def test_description_mentions_mode(self):
        found = groups(f"{XMLCOL}//lineitem[@price>100 and @price<200]")
        assert "single range scan" in found[0].description
