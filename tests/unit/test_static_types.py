"""Unit tests for the XDM sequence-type lattice (repro.static.types).

The lattice is the foundation under every static verdict: occurrence
arithmetic feeds the planner's cardinality seeds, the §3.1 category
algebra decides incomparability (SE004) and index types (Tip 1).
"""

import pytest

from repro.static.types import (ANY, EMPTY, ItemType, SeqType, atomized,
                                category_of, comparison_categories,
                                concat_type, index_type_for, item,
                                iterate, one, opt, star,
                                statically_incomparable, union_type)

ELEM = item("element", None, "order")
ATTR = item("attribute", None, "price")
DOUBLE = item("xs:double")
STRING = item("xs:string")
DATE = item("xs:date")
UNTYPED = item("xdt:untypedAtomic")


class TestOccurrence:
    def test_exact_bounds_map_to_indicators(self):
        assert SeqType(frozenset({ELEM}), 0, 0).occurrence == "0"
        assert SeqType(frozenset({ELEM}), 1, 1).occurrence == "1"
        assert SeqType(frozenset({ELEM}), 0, 1).occurrence == "?"
        assert SeqType(frozenset({ELEM}), 0, None).occurrence == "*"
        assert SeqType(frozenset({ELEM}), 2, 9).occurrence == "+"

    def test_invalid_bounds_are_clamped(self):
        clamped = SeqType(frozenset({ELEM}), 3, 1)
        assert (clamped.low, clamped.high) == (3, 3)

    def test_display(self):
        assert str(EMPTY) == "empty-sequence()"
        assert str(one(ELEM)) == "element(order)"
        assert str(star([ELEM])) == "element(order)*"
        assert str(opt(DOUBLE)) == "xs:double?"
        assert "|" in str(star([ELEM, ATTR]))

    def test_bounds_text(self):
        assert one(ELEM).bounds_text() == "[1, 1]"
        assert star([ELEM]).bounds_text() == "[0, ∞]"

    def test_helpers(self):
        assert one(ELEM).with_bounds(0, 5).high == 5
        assert one(ELEM).at_least_empty().possibly_empty
        assert EMPTY.is_empty and not one(ELEM).is_empty


class TestLatticeOperations:
    def test_union_takes_widest_bounds(self):
        merged = union_type(one(ELEM), star([ATTR]))
        assert merged.items == frozenset({ELEM, ATTR})
        assert (merged.low, merged.high) == (0, None)

    def test_concat_adds_bounds(self):
        joined = concat_type(one(ELEM), opt(ATTR))
        assert (joined.low, joined.high) == (1, 2)
        assert joined.items == frozenset({ELEM, ATTR})

    def test_concat_with_unbounded_stays_unbounded(self):
        assert concat_type(one(ELEM), star([ELEM])).high is None

    def test_iterate_is_exactly_one_prime(self):
        bound = iterate(SeqType(frozenset({ELEM}), 0, 7))
        assert (bound.low, bound.high) == (1, 1)
        assert iterate(EMPTY).is_empty

    def test_atomized_nodes_become_untyped(self):
        data = atomized(star([ELEM, DOUBLE]))
        assert UNTYPED in data.items and DOUBLE in data.items
        assert not any(entry.is_node for entry in data.items)
        assert atomized(EMPTY).is_empty


class TestComparability:
    def test_categories(self):
        assert category_of(DOUBLE) == "numeric"
        assert category_of(item("xs:integer")) == "numeric"
        assert category_of(STRING) == "string"
        assert category_of(DATE) == "date"
        assert category_of(UNTYPED) == "any"
        assert category_of(ELEM) == "any"

    def test_disjoint_concrete_categories_incomparable(self):
        assert statically_incomparable(one(DOUBLE), one(STRING))
        assert statically_incomparable(one(DOUBLE), one(DATE))
        assert not statically_incomparable(one(DOUBLE),
                                           one(item("xs:integer")))

    def test_untyped_is_comparable_with_everything(self):
        assert not statically_incomparable(one(UNTYPED), one(DOUBLE))
        assert not statically_incomparable(one(ELEM), one(STRING))

    def test_empty_operand_is_not_an_error(self):
        # An empty sequence makes the comparison empty/false — legal.
        assert not statically_incomparable(EMPTY, one(DOUBLE))

    def test_comparison_categories_atomize_first(self):
        assert comparison_categories(star([ELEM])) == frozenset({"any"})
        assert comparison_categories(one(DOUBLE)) == \
            frozenset({"numeric"})


class TestIndexTypeFor:
    @pytest.mark.parametrize("item_type,expected", [
        (DOUBLE, "DOUBLE"),
        (STRING, "VARCHAR"),
        (DATE, "DATE"),
        (item("xs:dateTime"), "TIMESTAMP"),
    ])
    def test_concrete_single_category(self, item_type, expected):
        assert index_type_for(one(item_type)) == expected

    def test_untyped_yields_none(self):
        """Tip 1: only a provably-typed operand gets an index type."""
        assert index_type_for(one(UNTYPED)) is None
        assert index_type_for(star([ELEM])) is None
        assert index_type_for(ANY) is None

    def test_mixed_categories_yield_none(self):
        assert index_type_for(star([DOUBLE, STRING])) is None


class TestItemType:
    def test_node_and_atomic_split(self):
        assert ELEM.is_node and not ELEM.is_atomic
        assert DOUBLE.is_atomic and not DOUBLE.is_node
        top = item("item")
        assert not top.is_node and not top.is_atomic

    def test_display(self):
        assert str(ELEM) == "element(order)"
        assert str(item("element")) == "element()"
        assert str(item("element", "http://n", "x")) == \
            "element({http://n}x)"
        assert str(item("text")) == "text()"
        assert str(DOUBLE) == "xs:double"
