"""Unit tests for predicate extraction and context classification."""

from repro.core.predicates import (PredicateContext, extract_candidates)
from repro.xquery.parser import parse_xquery

COLUMN = "orders.orddoc"
XMLCOL = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"


def candidates(query: str):
    return extract_candidates(parse_xquery(query))


def single(query: str):
    found = candidates(query)
    assert len(found) >= 1, f"no candidates in {query}"
    return found[0]


class TestPathsAndTypes:
    def test_simple_filter(self):
        candidate = single(f"{XMLCOL}//order[lineitem/@price>100]")
        assert candidate.column == COLUMN
        assert str(candidate.path) == "//order/lineitem/@price"
        assert candidate.op == ">"
        assert candidate.operand_type == "DOUBLE"
        assert candidate.operand_value.value == 100
        assert candidate.context is PredicateContext.PATH_FILTER

    def test_string_literal_gives_varchar(self):
        candidate = single(f'{XMLCOL}//order[lineitem/@price > "100"]')
        assert candidate.operand_type == "VARCHAR"

    def test_flipped_comparison(self):
        candidate = single(f"{XMLCOL}//order[100 < lineitem/@price]")
        assert candidate.op == ">"
        assert str(candidate.path) == "//order/lineitem/@price"

    def test_cast_forces_type(self):
        query = (f"for $i in {XMLCOL}/order "
                 f"for $j in db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer "
                 f"where $i/custid/xs:double(.) = $j/id/xs:double(.) "
                 f"return $i")
        found = candidates(query)
        columns = {candidate.column: candidate for candidate in found}
        assert columns["orders.orddoc"].operand_type == "DOUBLE"
        assert columns["customer.cdoc"].operand_type == "DOUBLE"
        assert str(columns["orders.orddoc"].path) == "/order/custid"

    def test_join_without_casts_has_unknown_type(self):
        query = (f"for $i in {XMLCOL}/order "
                 f"for $j in db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer "
                 f"where $i/custid = $j/id return $i")
        for candidate in candidates(query):
            assert candidate.operand_type is None
            assert candidate.operand_expr is not None

    def test_exists_candidate(self):
        query = (f"for $i in {XMLCOL}/order "
                 f"where $i/lineitem return $i")
        candidate = single(query)
        assert candidate.op == "exists"
        assert candidate.operand_type == "VARCHAR"

    def test_attribute_singleton_flag(self):
        candidate = single(f"{XMLCOL}//lineitem[@price > 100]")
        assert candidate.singleton_guaranteed

    def test_element_general_comparison_not_singleton(self):
        candidate = single(f"{XMLCOL}//lineitem[price > 100]")
        assert not candidate.singleton_guaranteed

    def test_value_comparison_singleton(self):
        candidate = single(f"{XMLCOL}//lineitem[price gt 100]")
        assert candidate.singleton_guaranteed

    def test_self_axis_singleton(self):
        candidate = single(f"{XMLCOL}//lineitem/price[. > 100]")
        assert candidate.singleton_guaranteed

    def test_date_cast(self):
        candidate = single(
            f'{XMLCOL}//order[date/xs:date(.) > xs:date("2006-01-01")]')
        assert candidate.operand_type == "DATE"


class TestContexts:
    def test_for_binding(self):
        query = (f"for $d in {XMLCOL} "
                 f"for $i in $d//lineitem[@price > 100] return $i")
        candidate = single(query)
        assert candidate.context is PredicateContext.FOR_BINDING

    def test_let_binding(self):
        query = (f"for $d in {XMLCOL} "
                 f"let $i := $d//lineitem[@price > 100] "
                 f"return <r>{{$i}}</r>")
        candidate = single(query)
        assert candidate.context is PredicateContext.LET_BINDING

    def test_let_upgraded_by_where(self):
        query = (f"for $d in {XMLCOL}/order "
                 f"let $p := $d/lineitem[@price > 100] "
                 f"where $p return <r>{{$d/lineitem}}</r>")
        candidate = single(query)
        assert candidate.context is PredicateContext.LET_WITH_WHERE

    def test_where_clause(self):
        query = (f"for $d in {XMLCOL}/order "
                 f"where $d/lineitem/@price > 100 return $d")
        candidate = single(query)
        assert candidate.context is PredicateContext.WHERE_CLAUSE

    def test_return_bindout(self):
        query = (f"for $d in {XMLCOL}/order "
                 f"return $d/lineitem[@price > 100]")
        candidate = single(query)
        assert candidate.context is PredicateContext.RETURN_BINDOUT

    def test_constructor_content(self):
        query = (f"for $d in {XMLCOL}/order "
                 f"return <r>{{$d/lineitem[@price > 100]}}</r>")
        candidate = single(query)
        assert candidate.context is PredicateContext.CONSTRUCTOR_CONTENT

    def test_some_quantifier(self):
        query = (f"some $d in {XMLCOL}//lineitem "
                 f"satisfies $d/@price > 100")
        found = candidates(query)
        assert any(candidate.context is PredicateContext.QUANTIFIED_SOME
                   for candidate in found)

    def test_negation_flag(self):
        query = (f"for $d in {XMLCOL}/order "
                 f"where not($d/lineitem/@price > 100) return $d")
        candidate = single(query)
        assert candidate.negated

    def test_double_negation_cancels(self):
        query = (f"for $d in {XMLCOL}/order "
                 f"where not(not($d/lineitem/@price > 100)) return $d")
        candidate = single(query)
        assert not candidate.negated

    def test_disjunction_grouping(self):
        query = (f"for $d in {XMLCOL}/order where "
                 f"$d/lineitem/@price > 100 or $d/custid = 1 return $d")
        found = candidates(query)
        groups = {candidate.disjunction_group for candidate in found}
        assert all(candidate.in_disjunction for candidate in found)
        assert len(groups) == 1

    def test_conjunction_grouping(self):
        query = (f"{XMLCOL}//lineitem[@price > 100 and @price < 200]")
        found = candidates(query)
        assert len(found) == 2
        assert found[0].conjunct_group == found[1].conjunct_group
        assert not found[0].in_disjunction


class TestUnanalyzable:
    def test_parent_axis_bails(self):
        assert candidates(f"{XMLCOL}//id[../@x > 1]/..") == []

    def test_unknown_function_path_bails(self):
        assert candidates(
            f"{XMLCOL}//order[concat(custid, 'x') = '1x']") == []

    def test_variable_without_origin(self):
        assert candidates("$undefined//a[b > 1]") == []
