"""Unit tests for the Database catalog: DDL, DML, index maintenance."""

import pytest

from repro import Database
from repro.errors import CatalogError, SQLError


class TestDDL:
    def test_create_table_api(self, db):
        table = db.create_table("t", [("a", "INTEGER"), ("d", "XML")])
        assert table.column_type("a").name == "INTEGER"
        assert table.xml_columns() == ["d"]

    def test_create_table_ddl(self, db):
        db.execute("CREATE TABLE customer (cid INTEGER, cdoc XML)")
        assert "customer" in db.tables

    def test_create_table_with_typed_columns_ddl(self, db):
        db.execute("CREATE TABLE products "
                   "(id VARCHAR(13), name VARCHAR(32))")
        assert db.table("products").column_type("id").length == 13

    def test_duplicate_table_rejected(self, db):
        db.create_table("t", [("a", "INTEGER")])
        with pytest.raises(CatalogError):
            db.create_table("T", [("a", "INTEGER")])

    def test_create_xml_index_ddl_paper_syntax(self, db):
        db.create_table("orders", [("orddoc", "XML")])
        index = db.execute(
            "CREATE INDEX li_price ON orders(orddoc) "
            "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")
        assert index.index_type == "DOUBLE"
        assert "li_price" in db.xml_indexes

    def test_create_xml_index_with_namespaces(self, db):
        db.create_table("customer", [("cdoc", "XML")])
        db.execute(
            "CREATE INDEX c_nation_ns1 ON customer(cdoc) "
            "USING XMLPATTERN 'declare default element namespace "
            "\"http://ournamespaces.com/order\"; //nation' AS double")
        assert "c_nation_ns1" in db.xml_indexes

    def test_xml_index_on_relational_column_rejected(self, db):
        db.create_table("t", [("a", "INTEGER")])
        with pytest.raises(CatalogError):
            db.create_xml_index("i", "t", "a", "//x", "DOUBLE")

    def test_relational_index_on_xml_column_rejected(self, db):
        db.create_table("t", [("d", "XML")])
        with pytest.raises(CatalogError):
            db.create_relational_index("i", "t", "d")

    def test_drop_index(self, db):
        db.create_table("t", [("d", "XML")])
        db.create_xml_index("i", "t", "d", "//x", "DOUBLE")
        db.drop_index("i")
        assert "i" not in db.xml_indexes
        with pytest.raises(CatalogError):
            db.drop_index("i")

    def test_drop_table_drops_indexes(self, db):
        db.create_table("t", [("a", "INTEGER"), ("d", "XML")])
        db.create_xml_index("xi", "t", "d", "//x", "DOUBLE")
        db.create_relational_index("ri", "t", "a")
        db.drop_table("t")
        assert not db.xml_indexes and not db.rel_indexes

    def test_unknown_statement(self, db):
        with pytest.raises(SQLError):
            db.execute("GRANT ALL TO nobody")


class TestDML:
    def test_insert_parses_xml(self, db):
        db.create_table("t", [("d", "XML")])
        db.insert("t", {"d": "<a><b>1</b></a>"})
        docs = db.documents("t", "d")
        assert len(docs) == 1
        assert docs[0].document.root_element.name.local == "a"

    def test_index_built_on_existing_and_new_rows(self, db):
        db.create_table("t", [("d", "XML")])
        db.insert("t", {"d": "<a x='1'/>"})
        index = db.create_xml_index("i", "t", "d", "//@x", "DOUBLE")
        assert len(index) == 1
        db.insert("t", {"d": "<a x='2'/>"})
        assert len(index) == 2

    def test_delete_maintains_indexes(self, db):
        db.create_table("t", [("n", "INTEGER"), ("d", "XML")])
        db.create_xml_index("xi", "t", "d", "//@x", "DOUBLE")
        db.create_relational_index("ri", "t", "n")
        db.insert("t", {"n": 1, "d": "<a x='1'/>"})
        db.insert("t", {"n": 2, "d": "<a x='2'/>"})
        removed = db.delete_rows("t", lambda values: values["n"] == 1)
        assert removed == 1
        assert len(db.xml_indexes["xi"]) == 1
        assert len(db.rel_indexes["ri"]) == 1
        assert len(db.table("t")) == 1

    def test_failed_index_insert_rolls_back_row(self, db):
        from repro.schema import Schema
        db.create_table("t", [("d", "XML")])
        db.create_xml_index("i", "t", "d", "//nums", "DOUBLE")
        db.register_schema(
            Schema("lists").declare("nums", "xs:double", is_list=True))
        with pytest.raises(Exception):
            db.insert("t", {"d": "<a><nums>1 2</nums></a>"},
                      schema="lists")
        assert len(db.table("t")) == 0
        assert len(db.xml_indexes["i"]) == 0

    def test_xmlcolumn_reference(self, db):
        db.create_table("t", [("d", "XML")])
        db.insert("t", {"d": "<a/>"})
        docs = db.xmlcolumn("T.D")
        assert len(docs) == 1
        with pytest.raises(CatalogError):
            db.xmlcolumn("JUSTONENAME")

    def test_stats_counted_on_xmlcolumn(self, db):
        from repro.planner.stats import ExecutionStats
        db.create_table("t", [("d", "XML")])
        db.insert("t", {"d": "<a/>"})
        stats = ExecutionStats()
        db.xmlcolumn("t.d", stats=stats)
        assert stats.docs_scanned == 1

    def test_null_xml_column(self, db):
        db.create_table("t", [("n", "INTEGER"), ("d", "XML")])
        db.insert("t", {"n": 1})
        assert db.documents("t", "d") == []
        assert db.xmlcolumn("t.d") == []
