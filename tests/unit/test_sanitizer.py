"""The runtime half of the concurrency sanitizer (``REPRO_SANITIZE=1``).

Every test runs inside ``sanitizer.installed()`` so the hooks in the
RWLock, Snapshot, pool and WAL engine are live, and drains the
violations it deliberately provokes — the autouse conftest fixture
turns any leftover into a test failure, which is itself part of the
contract under test.
"""

from __future__ import annotations

import threading

import pytest

from repro import Database
from repro.analysis import sanitizer
from repro.core.rwlock import RWLock
from repro.obs.metrics import METRICS, enabled_metrics


def _kinds(violations) -> list:
    return [violation.kind for violation in violations]


# -- lock-order graph ---------------------------------------------------


def test_deliberate_lock_inversion_is_caught():
    with sanitizer.installed() as state:
        first, second = RWLock(), RWLock()
        with first.read():
            with second.read():
                pass
        with second.read():
            with first.read():
                pass
        violations = state.drain()
    assert "lock_order" in _kinds(violations)
    caught = next(v for v in violations if v.kind == "lock_order")
    # Both witnesses travel with the finding: the acquiring stack and
    # the stack that recorded the opposite-order edge.
    assert caught.stack and caught.related_stack


def test_consistent_order_and_reentrancy_are_clean():
    with sanitizer.installed() as state:
        first, second = RWLock(), RWLock()
        for _ in range(3):
            with first.read():
                with second.read():
                    with second.read():     # shared re-entry
                        pass
        with first.write():
            with first.read():              # write-implies-read
                with second.write():
                    pass
        assert state.drain() == []


def test_inversion_across_threads_is_caught():
    with sanitizer.installed() as state:
        first, second = RWLock(), RWLock()

        def forward():
            with first.read():
                with second.read():
                    pass

        worker = threading.Thread(target=forward)
        worker.start()
        worker.join()
        with second.read():
            with first.read():
                pass
        violations = state.drain()
    assert "lock_order" in _kinds(violations)


def test_upgrade_attempt_is_recorded_and_engine_still_raises():
    with sanitizer.installed() as state:
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError):
                lock.acquire_write()
        violations = state.drain()
        assert _kinds(violations) == ["upgrade"]
        # The failed upgrade must not corrupt hold bookkeeping: the
        # read hold is released cleanly and nothing is left behind.
        assert state.held_by_current_thread() == []


# -- fork safety --------------------------------------------------------


def test_fork_while_forking_thread_holds_is_flagged():
    with sanitizer.installed() as state:
        lock = RWLock()
        with lock.read():
            state.check_fork("test")
        violations = state.drain()
    assert "fork" in _kinds(violations)


def test_fork_while_another_thread_writes_is_flagged():
    with sanitizer.installed() as state:
        lock = RWLock()
        acquired = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write():
                acquired.set()
                release.wait(5)

        worker = threading.Thread(target=writer)
        worker.start()
        acquired.wait(5)
        try:
            state.check_fork("test")
        finally:
            release.set()
            worker.join()
        violations = state.drain()
    assert "fork" in _kinds(violations)


def test_fork_with_concurrent_readers_is_allowed():
    # The pool's actual pattern: it forks while *other* threads sit in
    # shared read sections — legal, only writes clone torn state.
    with sanitizer.installed() as state:
        lock = RWLock()
        acquired = threading.Event()
        release = threading.Event()

        def reader():
            with lock.read():
                acquired.set()
                release.wait(5)

        worker = threading.Thread(target=reader)
        worker.start()
        acquired.wait(5)
        try:
            state.check_fork("test")
        finally:
            release.set()
            worker.join()
        assert state.drain() == []


# -- snapshot pinning ---------------------------------------------------


def _small_db() -> Database:
    database = Database()
    database.create_table("t", [("id", "INTEGER")])
    database.insert("t", {"id": 1})
    return database


def test_snapshot_mutation_is_caught():
    with sanitizer.installed() as state:
        database = _small_db()
        snapshot = database.snapshot()
        # Simulate the COW violation snapshots rule out: a writer
        # appending to the very list the snapshot pinned.
        snapshot.tables["t"].rows.append(snapshot.tables["t"].rows[0])
        snapshot.sql("SELECT id FROM t")
        violations = state.drain()
    assert "snapshot_mutation" in _kinds(violations)


def test_copy_on_write_keeps_snapshots_clean():
    with sanitizer.installed() as state:
        database = _small_db()
        snapshot = database.snapshot()
        before = snapshot.sql("SELECT id FROM t").rows
        database.insert("t", {"id": 2})   # COW: replaces the list
        after = snapshot.sql("SELECT id FROM t").rows
        assert before == after == [(1,)]
        assert state.drain() == []


# -- WAL append order ---------------------------------------------------


def test_durable_writes_are_clean_under_sanitizer(tmp_path):
    from repro.durability.engine import DurableDatabase
    with sanitizer.installed() as state:
        with DurableDatabase(tmp_path / "data") as database:
            database.create_table("t", [("id", "INTEGER")])
            database.insert("t", {"id": 1})
            database.checkpoint()
            database.insert("t", {"id": 2})
        assert state.drain() == []


def test_wal_order_violations_are_caught(tmp_path):
    from repro.durability.engine import DurableDatabase
    with sanitizer.installed() as state:
        with DurableDatabase(tmp_path / "data") as database:
            database.create_table("t", [("id", "INTEGER")])
            # An append claimed outside the writer's critical section,
            # with a non-contiguous LSN: both invariants break.
            state.note_wal_append(database, 999)
            violations = state.drain()
    kinds = _kinds(violations)
    assert kinds.count("wal_order") == 2


# -- surfacing ----------------------------------------------------------


def test_violations_surface_as_metrics_counters():
    with enabled_metrics():
        with sanitizer.installed() as state:
            lock = RWLock()
            with lock.read():
                state.check_fork("test")
            state.drain()
        counters = METRICS.snapshot()["counters"]
    assert counters["sanitizer.fork"] == 1
    assert counters["sanitizer.violations"] == 1


def test_install_from_env(monkeypatch):
    previous = sanitizer.ACTIVE
    monkeypatch.setattr(sanitizer, "ACTIVE", None)
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert sanitizer.install_from_env() is None
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    state = sanitizer.install_from_env()
    assert state is not None and sanitizer.ACTIVE is state
    # A second call keeps the existing state (one graph per process).
    assert sanitizer.install_from_env() is state
    sanitizer.ACTIVE = previous


def test_disabled_sanitizer_records_nothing(monkeypatch):
    monkeypatch.setattr(sanitizer, "ACTIVE", None)
    first, second = RWLock(), RWLock()
    with first.read():
        with second.read():
            pass
    with second.read():
        with first.read():      # inverted — but nobody is watching
            pass
    assert sanitizer.violations() == []
    assert sanitizer.drain() == []
