"""Unit tests for the XQuery evaluator (dynamic semantics)."""

import pytest

from repro.errors import XQueryDynamicError, XQueryError, XQueryTypeError
from repro.xmlio import parse_document, serialize_sequence
from repro.xquery import evaluate
from repro.xquery.evaluator import evaluate as ev


DOC = parse_document(
    "<order><custid>1001</custid>"
    "<lineitem price='120' quantity='2'><product><id>17</id></product>"
    "</lineitem>"
    "<lineitem price='90'><product><id>18</id></product></lineitem>"
    "<!--note--><?hint x?></order>")


def run(query: str, **variables) -> str:
    bound = {name: value if isinstance(value, list) else [value]
             for name, value in variables.items()}
    return serialize_sequence(ev(query, variables=bound))


class TestPaths:
    def test_child_navigation(self):
        assert run("$d/order/custid", d=DOC) == "<custid>1001</custid>"

    def test_descendant(self):
        assert run("count($d//product)", d=DOC) == "2"

    def test_attributes_only_via_attribute_axis(self):
        # §3.9: child/descendant axes never return attributes.
        assert run("count($d//@*)", d=DOC) == "3"
        # From the document node, //node() includes <order> itself.
        assert run("count($d//node())", d=DOC) == "13"
        assert run("count($d//*)", d=DOC) == "8"

    def test_predicate_filtering(self):
        assert run("$d//lineitem[@price > 100]/@price/data(.)",
                   d=DOC) == "120"

    def test_positional_predicates(self):
        assert run("$d//lineitem[2]/@price/data(.)", d=DOC) == "90"
        assert run("$d//lineitem[last()]/@price/data(.)", d=DOC) == "90"
        assert run("$d//lineitem[position() < 2]/@price/data(.)",
                   d=DOC) == "120"

    def test_doc_order_dedup(self):
        # Both branches find the same nodes; union keeps one copy.
        assert run("count(($d//product, $d//product))", d=DOC) == "4"
        assert run("count($d//product | $d//product)", d=DOC) == "2"

    def test_parent_axis(self):
        assert run("$d//id[. = '17']/../../@price/data(.)", d=DOC) == "120"

    def test_kind_tests(self):
        assert run("count($d//comment())", d=DOC) == "1"
        assert run("count($d//processing-instruction())", d=DOC) == "1"
        assert run("count($d//processing-instruction(hint))", d=DOC) == "1"
        assert run("count($d//processing-instruction(other))", d=DOC) == "0"
        assert run("count($d//text())", d=DOC) == "3"

    def test_leading_slash_requires_document_root(self):
        # Query 25: absolute paths under constructed elements error.
        with pytest.raises(XQueryDynamicError) as error:
            ev("let $o := <a>{$d/order}</a> return $o[//custid]",
               variables={"d": [DOC]})
        assert "XPDY0050" in str(error.value)

    def test_context_item_undefined(self):
        with pytest.raises(XQueryError):
            ev("lineitem")

    def test_mixed_step_result_rejected(self):
        with pytest.raises(XQueryTypeError):
            ev("$d/order/(custid, 1)", variables={"d": [DOC]})

    def test_axis_on_atomic_rejected(self):
        with pytest.raises(XQueryTypeError):
            ev("(1)/a")


class TestFLWOR:
    def test_for_iterates(self):
        assert run("for $i in (1,2,3) return $i * 2") == "2 4 6"

    def test_let_preserves_empty(self):
        # §3.4: a let binding produces a tuple even for ().
        assert run("for $i in (1,2) let $x := ()[1] "
                   "return count($x)") == "0 0"

    def test_where_discards(self):
        assert run("for $i in (1,2,3) where $i >= 2 return $i") == "2 3"

    def test_where_discards_empty_let(self):
        # Query 20/21 equivalence base case.
        query = ("for $li in $d//lineitem let $p := $li/@price "
                 "where $p > 100 return $li/@price/data(.)")
        assert run(query, d=DOC) == "120"

    def test_order_by(self):
        assert run("for $i in (3,1,2) order by $i return $i") == "1 2 3"
        assert run("for $i in (3,1,2) order by $i descending "
                   "return $i") == "3 2 1"

    def test_order_by_empty_least(self):
        assert run("for $x in (<a n='2'/>, <a/>, <a n='1'/>) "
                   "order by $x/@n return count($x/@n)") == "0 1 1"
        assert run("for $x in (<a n='2'/>, <a/>, <a n='1'/>) "
                   "order by $x/@n empty greatest "
                   "return count($x/@n)") == "1 1 0"

    def test_position_variable(self):
        assert run("for $x at $p in ('a','b') return $p") == "1 2"

    def test_cartesian_product(self):
        assert run("for $i in (1,2), $j in (10,20) return $i+$j") == \
            "11 21 12 22"


class TestConstructors:
    def test_atomics_space_joined(self):
        # §3.6: sequences of atomics join with single spaces.
        assert run("<a>{1, 2, 3}</a>") == "<a>1 2 3</a>"

    def test_literal_text_breaks_joining(self):
        assert run("<a>{1}-{2}</a>") == "<a>1-2</a>"

    def test_copied_nodes_lose_types(self):
        # Constructed content is untyped (strip mode default).
        document = parse_document("<v>42</v>")
        from repro.schema import Schema, validate
        validate(document, Schema("s").declare("v", "xs:double"))
        result = ev("<w>{$d/v}</w>/v/data(.)", variables={"d": [document]})
        assert result[0].type_name == "xdt:untypedAtomic"

    def test_duplicate_attribute_error(self):
        # §3.6 item 4 — duplicate @price raises XQDY0025.
        document = parse_document(
            "<l><p price='1'/><p price='2'/></l>")
        with pytest.raises(XQueryDynamicError) as error:
            ev("<item>{$d//@price}</item>", variables={"d": [document]})
        assert "XQDY0025" in str(error.value)

    def test_attribute_after_content_error(self):
        with pytest.raises(XQueryTypeError):
            ev("<a>{'x', $d//@price}</a>", variables={"d": [DOC]})

    def test_attribute_value_template(self):
        assert run('<a b="{1+1}-{2}"/>') == '<a b="2-2"/>'

    def test_document_content_unwrapped(self):
        assert run("<wrap>{$d}</wrap>/order/custid/data(.)",
                   d=DOC) == "1001"

    def test_computed_element_and_attribute(self):
        assert run("element foo { attribute bar {'b'}, 'content' }") == \
            '<foo bar="b">content</foo>'

    def test_computed_text(self):
        assert run("<a>{text {'t'}}</a>") == "<a>t</a>"
        assert run("count(text { () })") == "0"

    def test_constructed_namespace(self):
        assert run('declare default element namespace "http://d"; '
                   'namespace-uri(<a/>)') == "http://d"

    def test_concatenation_of_multiple_ids(self):
        # §3.6 item 3: <pid>{$i/product/id/data(.)}</pid> over p1,p2
        # yields the space-joined string "p1 p2".
        document = parse_document(
            "<product><id>p1</id><id>p2</id></product>")
        assert run("<pid>{$d/product/id/data(.)}</pid>/data(.)",
                   d=document) == "p1 p2"


class TestOperatorsAndTypes:
    def test_arithmetic(self):
        assert run("7 div 2") == "3.5"
        assert run("7 idiv 2") == "3"
        assert run("7 mod 2") == "1"
        assert run("-(3)") == "-3"

    def test_division_by_zero(self):
        with pytest.raises(XQueryDynamicError):
            ev("1 div 0")

    def test_arithmetic_empty_propagates(self):
        assert run("count(() + 1)") == "0"

    def test_untyped_arithmetic_is_double(self):
        result = ev("$d//lineitem[1]/@price + 1", variables={"d": [DOC]})
        assert result[0].type_name == "xs:double"

    def test_cast_expression(self):
        assert run("'99.5' cast as xs:double + 0.5") == "100"

    def test_cast_empty_with_question_mark(self):
        assert run("count(() cast as xs:double?)") == "0"

    def test_treat_failure(self):
        with pytest.raises(XQueryDynamicError):
            ev("<a/> treat as document-node()")

    def test_instance_of(self):
        assert run("1 instance of xs:integer") == "true"
        assert run("(1,2) instance of xs:integer") == "false"
        assert run("(1,2) instance of xs:integer+") == "true"
        assert run("<a/> instance of element()") == "true"

    def test_quantified(self):
        assert run("some $x in (1,2,3) satisfies $x > 2") == "true"
        assert run("every $x in (1,2,3) satisfies $x > 2") == "false"
        assert run("every $x in () satisfies $x > 2") == "true"

    def test_if_branches(self):
        assert run("if (()) then 1 else 2") == "2"

    def test_set_operations(self):
        assert run("count($d//lineitem except $d//lineitem[1])",
                   d=DOC) == "1"
        assert run("count($d//* intersect $d//product)", d=DOC) == "2"

    def test_except_on_fresh_copies_removes_nothing(self):
        # §3.6 item 5: constructed copies have new identities.
        assert run("count(<a>{$d//product}</a>/product except "
                    "$d//product)", d=DOC) == "2"


class TestFunctions:
    def test_string_functions(self):
        assert run("concat('a', 'b', 'c')") == "abc"
        assert run("string-join(('p1','p2'), ' ')") == "p1 p2"
        assert run("substring('hamburger', 5, 3)") == "urg"
        assert run("contains('hello', 'ell')") == "true"
        assert run("normalize-space('  a   b ')") == "a b"
        assert run("upper-case('aBc')") == "ABC"
        assert run("substring-before('a=b', '=')") == "a"
        assert run("substring-after('a=b', '=')") == "b"
        assert run("translate('abc', 'abc', 'xyz')") == "xyz"
        assert run("string-length('abcd')") == "4"

    def test_aggregates(self):
        assert run("sum((1,2,3))") == "6"
        assert run("avg((1,2,3))") == "2"
        assert run("max((1,5,3))") == "5"
        assert run("min((4,2,8))") == "2"
        assert run("count(())") == "0"
        assert run("sum(())") == "0"
        assert run("count(avg(()))") == "0"

    def test_sequences(self):
        assert run("exists(())") == "false"
        assert run("empty(())") == "true"
        assert run("distinct-values((1, 1, 2, '2'))") == "1 2 2"
        assert run("reverse((1,2,3))") == "3 2 1"
        assert run("subsequence((1,2,3,4), 2, 2)") == "2 3"
        assert run("index-of((10,20,10), 10)") == "1 3"

    def test_cardinality_checks(self):
        assert run("exactly-one((5))") == "5"
        with pytest.raises(XQueryTypeError):
            ev("exactly-one((1,2))")
        with pytest.raises(XQueryTypeError):
            ev("zero-or-one((1,2))")
        with pytest.raises(XQueryTypeError):
            ev("one-or-more(())")

    def test_node_functions(self):
        assert run("local-name($d/order)", d=DOC) == "order"
        assert run("name(($d//@price)[1])", d=DOC) == "price"
        assert run("count(root(($d//id)[1]))", d=DOC) == "1"

    def test_number_and_data(self):
        assert run("number('12.5') + 0.5") == "13"
        assert run("string(number('abc'))") == "NaN"
        # //id[1] applies the predicate per parent: both ids qualify.
        assert run("data($d//id[1])", d=DOC) == "17 18"
        assert run("data(($d//id)[1])", d=DOC) == "17"

    def test_numeric_functions(self):
        assert run("abs(-2)") == "2"
        assert run("floor(2.7)") == "2"
        assert run("ceiling(2.1)") == "3"
        assert run("round(2.5)") == "3"

    def test_deep_equal(self):
        assert run("deep-equal(<a x='1'>t</a>, <a x='1'>t</a>)") == "true"
        assert run("deep-equal(<a x='1'/>, <a x='2'/>)") == "false"

    def test_boolean_functions(self):
        assert run("not(())") == "true"
        assert run("boolean((1))") == "true"

    def test_unknown_function(self):
        with pytest.raises(XQueryError):
            ev("no-such-function(1)")

    def test_wrong_arity(self):
        with pytest.raises(XQueryError):
            ev("count(1, 2)")

    def test_xs_constructors(self):
        assert run("xs:double('1e2')") == "100"
        assert run("xs:integer('42') + 1") == "43"
        assert run("string(xs:date('2006-09-12'))") == "2006-09-12"
        assert run("count(xs:double(()))") == "0"

    def test_xmlcolumn_requires_database(self):
        with pytest.raises(XQueryDynamicError):
            evaluate("db2-fn:xmlcolumn('T.C')")
