"""Unit tests for the command-line interface and pretty-printing."""

import io

import pytest

from repro.cli import main
from repro.xmlio import parse_document, serialize


@pytest.fixture()
def xml_dir(tmp_path):
    (tmp_path / "a.xml").write_text(
        "<order><lineitem price='150'/></order>")
    (tmp_path / "b.xml").write_text(
        "<order><lineitem price='90'/></order>")
    (tmp_path / "ignored.txt").write_text("not xml")
    return tmp_path


def run_cli(*argv) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0
    return out.getvalue()


class TestCLI:
    def test_demo(self):
        output = run_cli("demo", "--orders", "40")
        assert "with li_price index:" in output
        assert "full collection scan:" in output
        assert "ELIGIBLE" in output

    def test_query_over_directory(self, xml_dir):
        output = run_cli(
            "query", "--load", str(xml_dir),
            "db2-fn:xmlcolumn('DOCS.DOC')//lineitem[@price > 100]")
        assert "loaded 2 documents" in output
        assert 'price="150"' in output
        assert 'price="90"' not in output

    def test_query_with_index(self, xml_dir):
        output = run_cli(
            "query", "--load", str(xml_dir),
            "--index", "//lineitem/@price AS DOUBLE",
            "db2-fn:xmlcolumn('DOCS.DOC')//lineitem[@price > 100]")
        assert "indexes_used=['cli_idx_1']" in output

    def test_no_indexes_flag(self, xml_dir):
        output = run_cli(
            "query", "--load", str(xml_dir), "--no-indexes",
            "--index", "//lineitem/@price AS DOUBLE",
            "db2-fn:xmlcolumn('DOCS.DOC')//lineitem[@price > 100]")
        assert "indexes_used=[]" in output

    def test_sql_over_directory(self, xml_dir):
        output = run_cli(
            "sql", "--load", str(xml_dir),
            "SELECT name FROM docs WHERE XMLEXISTS("
            "'$d//lineitem[@price > 100]' PASSING doc AS \"d\")")
        assert "a.xml" in output
        assert "b.xml" not in output

    def test_explain(self, xml_dir):
        output = run_cli(
            "explain", "--load", str(xml_dir),
            "--index", "//lineitem/@price AS DOUBLE",
            "db2-fn:xmlcolumn('DOCS.DOC')//lineitem[@price > 100]")
        assert "ELIGIBLE" in output

    def test_advise(self, xml_dir):
        output = run_cli(
            "advise", "--load", str(xml_dir),
            "for $d in db2-fn:xmlcolumn('DOCS.DOC') "
            "let $i := $d//lineitem[@price > 100] return <r>{$i}</r>")
        assert "3.4" in output

    def test_advise_clean(self, xml_dir):
        output = run_cli(
            "advise", "--load", str(xml_dir),
            "db2-fn:xmlcolumn('DOCS.DOC')//lineitem[@price > 100]")
        assert "no advice" in output

    def test_describe(self, xml_dir):
        output = run_cli("describe", "--load", str(xml_dir),
                         "--index", "//lineitem/@price AS DOUBLE")
        assert "table docs" in output
        assert "cli_idx_1" in output


class TestObservabilityFlags:
    def test_explain_analyze_flag(self, xml_dir):
        output = run_cli(
            "query", "--load", str(xml_dir),
            "--index", "//lineitem/@price AS DOUBLE",
            "--explain-analyze",
            "db2-fn:xmlcolumn('DOCS.DOC')//lineitem[@price > 100]")
        assert "EXPLAIN ANALYZE (xquery)" in output
        assert "-> index-scan" in output
        assert "actual documents=1" in output

    def test_explain_analyze_sql(self, xml_dir):
        output = run_cli(
            "sql", "--load", str(xml_dir), "--explain-analyze",
            "SELECT name FROM docs WHERE XMLEXISTS("
            "'$d//lineitem[@price > 100]' PASSING doc AS \"d\")")
        assert "EXPLAIN ANALYZE (sql)" in output
        assert "-> join-scan" in output

    def test_metrics_flag(self, xml_dir):
        output = run_cli(
            "query", "--load", str(xml_dir),
            "--index", "//lineitem/@price AS DOUBLE", "--metrics",
            "db2-fn:xmlcolumn('DOCS.DOC')//lineitem[@price > 100]")
        assert "metrics:" in output
        assert "index.probes 1" in output
        assert "queries.xquery 1" in output

    def test_trace_to_file_validates(self, xml_dir, tmp_path):
        import json
        from repro.obs.trace import validate_trace
        trace_path = tmp_path / "trace.json"
        run_cli(
            "query", "--load", str(xml_dir), "--trace", str(trace_path),
            "db2-fn:xmlcolumn('DOCS.DOC')//lineitem[@price > 100]")
        payload = json.loads(trace_path.read_text())
        assert validate_trace(payload) == []
        assert payload["language"] == "xquery"

    def test_trace_to_stdout(self, xml_dir):
        import json
        from repro.obs.trace import validate_trace
        output = run_cli(
            "sql", "--load", str(xml_dir), "--trace", "-",
            "SELECT name FROM docs")
        start = output.index('{\n  "trace_version"')
        payload = json.loads(output[start:])
        assert validate_trace(payload) == []
        assert payload["language"] == "sql"


class TestPrettyPrinting:
    def test_indent_element_content(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        pretty = serialize(doc, indent=True)
        assert pretty == "<a>\n  <b>\n    <c/>\n  </b>\n  <d/>\n</a>"

    def test_mixed_content_untouched(self):
        doc = parse_document("<a>text<b/>more</a>")
        assert serialize(doc, indent=True) == "<a>text<b/>more</a>"

    def test_pretty_roundtrips_structure(self):
        doc = parse_document("<a x='1'><b><c>leaf</c></b></a>")
        pretty = serialize(doc, indent=True)
        reparsed = parse_document(pretty)
        assert reparsed.root_element.attribute("x").string_value() == "1"

    def test_indent_flag_in_cli(self, xml_dir):
        output = run_cli(
            "query", "--load", str(xml_dir), "--indent",
            "db2-fn:xmlcolumn('DOCS.DOC')/order[lineitem/@price > 100]")
        assert "<order>\n  <lineitem" in output
