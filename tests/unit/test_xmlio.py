"""Unit tests for the XML parser and serializer."""

import pytest

from repro.errors import XMLParseError
from repro.xmlio import parse_document, parse_fragment, serialize


class TestParserBasics:
    def test_simple_document(self):
        doc = parse_document("<a><b>text</b></a>")
        root = doc.root_element
        assert root.name.local == "a"
        assert root.children[0].name.local == "b"
        assert root.children[0].string_value() == "text"

    def test_attributes(self):
        doc = parse_document('<a x="1" y=\'two\'/>')
        root = doc.root_element
        assert root.attribute("x").string_value() == "1"
        assert root.attribute("y").string_value() == "two"

    def test_text_entities(self):
        doc = parse_document("<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>")
        assert doc.root_element.string_value() == "<&>\"'AB"

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<raw&>]]></a>")
        assert doc.root_element.string_value() == "<raw&>"

    def test_comments_and_pis(self):
        doc = parse_document("<a><!--note--><?do it?></a>")
        kinds = [child.kind for child in doc.root_element.children]
        assert kinds == ["comment", "processing-instruction"]

    def test_prolog_and_doctype_skipped(self):
        doc = parse_document(
            "<?xml version='1.0'?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>")
        assert doc.root_element.name.local == "a"

    def test_top_level_comment_and_pi(self):
        doc = parse_document("<!--before--><a/><?after?>")
        assert [child.kind for child in doc.children] == \
            ["comment", "element", "processing-instruction"]

    def test_mixed_content_distinct_text_nodes(self):
        # §3.8: "99.50USD" string value, separate text/element children.
        doc = parse_document("<price>99.50<currency>USD</currency></price>")
        price = doc.root_element
        assert price.string_value() == "99.50USD"
        assert price.children[0].kind == "text"
        assert price.children[0].string_value() == "99.50"

    def test_whitespace_preserved_in_text(self):
        doc = parse_document("<a> x </a>")
        assert doc.root_element.string_value() == " x "


class TestNamespaces:
    def test_default_namespace(self):
        doc = parse_document('<a xmlns="http://n"><b/></a>')
        assert doc.root_element.name.uri == "http://n"
        assert doc.root_element.children[0].name.uri == "http://n"

    def test_prefixed_namespace(self):
        doc = parse_document('<p:a xmlns:p="http://p"><p:b/></p:a>')
        assert doc.root_element.name.uri == "http://p"
        assert doc.root_element.name.prefix == "p"

    def test_attributes_ignore_default_namespace(self):
        # §3.7: default namespaces never apply to attributes.
        doc = parse_document('<a xmlns="http://n" x="1"/>')
        assert doc.root_element.attributes[0].name.uri == ""

    def test_namespace_shadowing(self):
        doc = parse_document(
            '<a xmlns="http://one"><b xmlns="http://two"/></a>')
        assert doc.root_element.children[0].name.uri == "http://two"

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(XMLParseError):
            parse_document("<p:a/>")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "<a>",                       # unterminated
        "<a></b>",                   # mismatched tags
        "<a x=1/>",                  # unquoted attribute
        "<a x='1' x='2'/>",          # duplicate attribute
        "<a/><b/>",                  # two roots
        "text only",                 # no element
        "<a><!--unterminated</a>",   # bad comment
        "<a>&unknown;</a>",          # unknown entity
        "",                          # empty input
    ])
    def test_rejects(self, bad):
        with pytest.raises(XMLParseError):
            parse_document(bad)

    def test_error_carries_location(self):
        try:
            parse_document("<a>\n<b x=</a>")
        except XMLParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected XMLParseError")


class TestSerializer:
    @pytest.mark.parametrize("text", [
        "<a/>",
        "<a><b>t</b><c/></a>",
        '<a x="1"/>',
        "<a>x<b/>y</a>",
        "<a><!--c--><?pi d?></a>",
        '<a xmlns="http://n"><b/></a>',
        '<p:a xmlns:p="http://p" p:x="1"/>',
    ])
    def test_roundtrip(self, text):
        assert serialize(parse_document(text)) == text

    def test_escaping(self):
        doc = parse_document("<a x='&quot;&amp;'>&lt;&amp;</a>")
        rendered = serialize(doc)
        assert "&lt;" in rendered and "&amp;" in rendered
        assert serialize(parse_document(rendered)) == rendered

    def test_fragment_parsing(self):
        nodes = parse_fragment("<a/>text<b/>")
        assert [node.kind for node in nodes] == \
            ["element", "text", "element"]
        assert all(node.parent is None for node in nodes)
