"""Unit tests for the atomic value system and casting lattice."""

import datetime as dt
import math
from decimal import Decimal

import pytest

from repro.errors import CastError
from repro.xdm import atomic
from repro.xdm.atomic import (cast, castable, promote_numeric_pair,
                              parse_date, parse_date_time, parse_double)


class TestConstruction:
    def test_string_value_of_string(self):
        assert atomic.string("abc").string_value() == "abc"

    def test_string_value_of_double_integral(self):
        assert atomic.double(100.0).string_value() == "100"

    def test_string_value_of_double_fractional(self):
        assert atomic.double(99.5).string_value() == "99.5"

    def test_string_value_of_double_nan_inf(self):
        assert atomic.double(math.nan).string_value() == "NaN"
        assert atomic.double(math.inf).string_value() == "INF"
        assert atomic.double(-math.inf).string_value() == "-INF"

    def test_string_value_of_decimal_strips_zeroes(self):
        assert atomic.decimal("1.500").string_value() == "1.5"
        assert atomic.decimal("10").string_value() == "10"

    def test_string_value_of_boolean(self):
        assert atomic.boolean(True).string_value() == "true"
        assert atomic.boolean(False).string_value() == "false"

    def test_string_value_of_date(self):
        assert atomic.date(dt.date(2006, 9, 12)).string_value() == \
            "2006-09-12"

    def test_immutability(self):
        value = atomic.integer(1)
        with pytest.raises(AttributeError):
            value.value = 2

    def test_equality_requires_same_type(self):
        assert atomic.integer(1) != atomic.double(1.0)
        assert atomic.integer(1) == atomic.integer(1)


class TestLexicalParsing:
    def test_parse_double_plain(self):
        assert parse_double("100") == 100.0
        assert parse_double(" 99.50 ") == 99.5
        assert parse_double("1e3") == 1000.0

    def test_parse_double_special(self):
        assert math.isnan(parse_double("NaN"))
        assert parse_double("INF") == math.inf
        assert parse_double("-INF") == -math.inf

    def test_parse_double_rejects_garbage(self):
        with pytest.raises(CastError):
            parse_double("20 USD")
        with pytest.raises(CastError):
            parse_double("")

    def test_parse_date(self):
        assert parse_date("2006-09-12") == dt.date(2006, 9, 12)

    def test_parse_date_rejects_bad_month(self):
        with pytest.raises(CastError):
            parse_date("2006-13-01")

    def test_parse_date_time_with_zone(self):
        stamp = parse_date_time("2006-09-12T10:30:00Z")
        assert stamp.tzinfo is not None
        assert stamp.hour == 10

    def test_parse_date_time_fraction(self):
        stamp = parse_date_time("2006-09-12T10:30:00.25")
        assert stamp.microsecond == 250_000


class TestCasting:
    def test_untyped_to_double(self):
        assert cast(atomic.untyped("99.50"), atomic.T_DOUBLE).value == 99.5

    def test_untyped_to_double_failure(self):
        with pytest.raises(CastError):
            cast(atomic.untyped("20 USD"), atomic.T_DOUBLE)

    def test_everything_casts_to_string(self):
        assert cast(atomic.double(10.0), atomic.T_STRING).value == "10"
        assert cast(atomic.boolean(True), atomic.T_STRING).value == "true"

    def test_string_to_integer_strict(self):
        assert cast(atomic.string("42"), atomic.T_INTEGER).value == 42
        with pytest.raises(CastError):
            cast(atomic.string("4.2"), atomic.T_INTEGER)

    def test_double_to_integer_truncates(self):
        assert cast(atomic.double(3.9), atomic.T_INTEGER).value == 3

    def test_double_nan_to_integer_fails(self):
        with pytest.raises(CastError):
            cast(atomic.double(math.nan), atomic.T_INTEGER)

    def test_long_range_enforced(self):
        with pytest.raises(CastError):
            cast(atomic.string(str(2 ** 63)), atomic.T_LONG)
        assert cast(atomic.string(str(2 ** 63 - 1)),
                    atomic.T_LONG).value == 2 ** 63 - 1

    def test_boolean_lexical_forms(self):
        assert cast(atomic.string("1"), atomic.T_BOOLEAN).value is True
        assert cast(atomic.string("false"), atomic.T_BOOLEAN).value is False
        with pytest.raises(CastError):
            cast(atomic.string("yes"), atomic.T_BOOLEAN)

    def test_numeric_to_boolean(self):
        assert cast(atomic.double(0.0), atomic.T_BOOLEAN).value is False
        assert cast(atomic.integer(7), atomic.T_BOOLEAN).value is True
        assert cast(atomic.double(math.nan), atomic.T_BOOLEAN).value is False

    def test_date_datetime_promotions(self):
        date = atomic.date(dt.date(2006, 9, 12))
        stamp = cast(date, atomic.T_DATETIME)
        assert stamp.value == dt.datetime(2006, 9, 12)
        assert cast(stamp, atomic.T_DATE).value == dt.date(2006, 9, 12)

    def test_castable(self):
        assert castable(atomic.untyped("1.5"), atomic.T_DOUBLE)
        assert not castable(atomic.untyped("x"), atomic.T_DOUBLE)

    def test_decimal_to_double(self):
        value = cast(atomic.decimal("1.25"), atomic.T_DOUBLE)
        assert value.type_name == atomic.T_DOUBLE
        assert value.value == 1.25


class TestPromotion:
    def test_integer_pair_stays_exact(self):
        left, right = promote_numeric_pair(atomic.integer(1),
                                           atomic.integer(2))
        assert left.type_name == atomic.T_INTEGER

    def test_long_pair_stays_exact(self):
        big = 2 ** 60 + 1
        left, right = promote_numeric_pair(atomic.long_integer(big),
                                           atomic.long_integer(big + 1))
        assert left.value != right.value  # no precision loss

    def test_long_vs_double_loses_precision(self):
        # The §3.6 item-2 hazard: converting large longs to double
        # collides values that differ as integers.
        big = 2 ** 60 + 1
        left, right = promote_numeric_pair(atomic.long_integer(big),
                                           atomic.double(float(2 ** 60)))
        assert left.type_name == atomic.T_DOUBLE
        assert left.value == right.value  # collision!

    def test_decimal_vs_integer(self):
        left, right = promote_numeric_pair(atomic.decimal("1.5"),
                                           atomic.integer(1))
        assert left.type_name == atomic.T_DECIMAL
        assert right.value == Decimal(1)

    def test_non_numeric_raises(self):
        with pytest.raises(Exception):
            promote_numeric_pair(atomic.string("a"), atomic.integer(1))

    def test_is_subtype(self):
        assert atomic.is_subtype(atomic.T_LONG, atomic.T_INTEGER)
        assert atomic.is_subtype(atomic.T_INTEGER, atomic.T_DECIMAL)
        assert not atomic.is_subtype(atomic.T_DECIMAL, atomic.T_INTEGER)
