"""Unit tests for the B+Tree."""

import random

import pytest

from repro.storage.btree import BPlusTree


class TestBasics:
    def test_insert_get(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(3, "b")
        tree.insert(7, "c")
        assert tree.get(5) == ["a"]
        assert tree.get(4) == []
        assert len(tree) == 3
        assert tree.key_count == 3

    def test_duplicate_keys_bucket(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert sorted(tree.get(1)) == ["a", "b"]
        assert len(tree) == 2
        assert tree.key_count == 1

    def test_order_too_small(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_keys_sorted_after_random_inserts(self):
        tree = BPlusTree(order=4)
        values = random.Random(1).sample(range(1000), 300)
        for value in values:
            tree.insert(value, value)
        assert list(tree.keys()) == sorted(values)
        tree.check_invariants()


class TestRangeScan:
    def make_tree(self) -> BPlusTree:
        tree = BPlusTree(order=4)
        for value in range(0, 100, 2):  # evens 0..98
            tree.insert(value, f"v{value}")
        return tree

    def test_closed_range(self):
        tree = self.make_tree()
        keys = [key for key, _entry in tree.scan(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_open_bounds(self):
        tree = self.make_tree()
        keys = [key for key, _entry in
                tree.scan(10, 20, low_inclusive=False,
                          high_inclusive=False)]
        assert keys == [12, 14, 16, 18]

    def test_unbounded_low(self):
        tree = self.make_tree()
        keys = [key for key, _entry in tree.scan(None, 6)]
        assert keys == [0, 2, 4, 6]

    def test_unbounded_high(self):
        tree = self.make_tree()
        keys = [key for key, _entry in tree.scan(94, None)]
        assert keys == [94, 96, 98]

    def test_full_scan(self):
        tree = self.make_tree()
        assert len(list(tree.scan())) == 50

    def test_missing_bound_keys(self):
        tree = self.make_tree()
        keys = [key for key, _entry in tree.scan(11, 19)]
        assert keys == [12, 14, 16, 18]

    def test_empty_range(self):
        tree = self.make_tree()
        assert list(tree.scan(200, 300)) == []

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for word in ["pear", "apple", "fig", "date", "cherry"]:
            tree.insert(word, word)
        keys = [key for key, _entry in tree.scan("b", "e")]
        assert keys == ["cherry", "date"]


class TestDelete:
    def test_delete_entry(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a")
        assert tree.get(1) == ["b"]
        assert not tree.delete(1, "a")

    def test_delete_whole_key(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1)
        assert tree.get(1) == []
        assert len(tree) == 0

    def test_delete_missing(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert not tree.delete(2)

    def test_delete_rebalances(self):
        tree = BPlusTree(order=4)
        values = list(range(200))
        for value in values:
            tree.insert(value, value)
        random.Random(7).shuffle(values)
        for count, value in enumerate(values):
            assert tree.delete(value, value)
            if count % 25 == 0:
                tree.check_invariants()
        assert len(tree) == 0
        tree.check_invariants()

    def test_interleaved_insert_delete(self):
        tree = BPlusTree(order=4)
        rng = random.Random(13)
        model: dict[int, int] = {}
        for _ in range(2000):
            key = rng.randint(0, 80)
            if rng.random() < 0.6:
                tree.insert(key, key)
                model[key] = model.get(key, 0) + 1
            elif model.get(key):
                tree.delete(key, key)
                model[key] -= 1
                if not model[key]:
                    del model[key]
        tree.check_invariants()
        assert sorted(model) == list(tree.keys())
        assert len(tree) == sum(model.values())
