"""Unit tests for the compiled-query cache — including thread safety.

The cache is module-global shared state; before the lock landed, two
threads interleaving ``get`` / ``move_to_end`` / ``popitem`` could
corrupt the OrderedDict or lose hit/miss counter updates.  The smoke
test below shrinks the GIL switch interval to force those interleavings
and asserts the accounting identity ``hits + misses == calls``.
"""

import random
import sys
import threading

from repro.core.querycache import cache_info, clear_cache, compile_query


class TestBasics:
    def setup_method(self):
        clear_cache()

    def test_hit_returns_same_object(self):
        first = compile_query("1 + 1")
        second = compile_query("1 + 1")
        assert first is second
        info = cache_info()
        assert info.hits == 1
        assert info.misses == 1
        assert info.size == 1

    def test_lru_eviction(self):
        maxsize = cache_info().maxsize
        for position in range(maxsize + 10):
            compile_query(f"1 + {position}")
        info = cache_info()
        assert info.size == maxsize
        # The oldest entries were evicted; re-asking re-parses.
        hits_before = cache_info().hits
        compile_query("1 + 0")
        assert cache_info().hits == hits_before

    def test_clear_resets_counters(self):
        compile_query("2 + 2")
        clear_cache()
        info = cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)


class TestConcurrency:
    def setup_method(self):
        clear_cache()

    def test_concurrent_compile_is_safe(self):
        """8 threads × 300 lookups over 300 distinct texts (> maxsize,
        so eviction races too).  Without the lock this loses counter
        updates and can corrupt the OrderedDict outright."""
        sources = [f"1 + {position}" for position in range(300)]
        threads = 8
        calls_per_thread = 300
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            generator = random.Random(seed)
            try:
                for _ in range(calls_per_thread):
                    source = sources[generator.randrange(len(sources))]
                    compiled = compile_query(source)
                    assert compiled.source == source
            except BaseException as exc:  # noqa: BLE001 - collect all
                errors.append(exc)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            workers = [threading.Thread(target=worker, args=(seed,))
                       for seed in range(threads)]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)

        assert not errors, errors
        info = cache_info()
        assert info.hits + info.misses == threads * calls_per_thread
        assert info.size <= info.maxsize


class TestMetricsHooks:
    def setup_method(self):
        clear_cache()

    def test_cache_counters_reach_metrics(self):
        from repro.obs.metrics import enabled_metrics
        with enabled_metrics() as metrics:
            compile_query("3 + 3")
            compile_query("3 + 3")
            snapshot = metrics.snapshot()
        assert snapshot["counters"]["querycache.misses"] == 1
        assert snapshot["counters"]["querycache.hits"] == 1
        assert snapshot["derived"]["querycache.hit_ratio"] == 0.5
