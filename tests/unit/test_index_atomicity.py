"""Fault-injection regression tests for all-or-nothing index inserts.

The historical bug (fixed in the same change that added these tests):
``Database._index_row`` ran the relational-index loop *outside* the
xml-index rollback scope, so a failing rel-index insert left orphaned
xml-index postings (and earlier rel-index entries) behind even though
the row itself was rolled back.  These tests inject failures at every
insert site and pin the fixed, atomic behaviour — they fail on the
pre-fix code.
"""

import pytest

from repro.errors import CatalogError
from repro.storage.catalog import Database
from repro.storage.table import Row


def make_db() -> Database:
    database = Database()
    database.create_table("orders", [("ordid", "INTEGER"),
                                     ("flag", "INTEGER"),
                                     ("orddoc", "XML")])
    database.execute(
        "CREATE INDEX li_price ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")
    database.create_relational_index("idx_ordid", "orders", "ordid")
    database.create_relational_index("idx_flag", "orders", "flag")
    return database


GOOD_ROW = {"ordid": 1, "flag": 7,
            "orddoc": "<order><lineitem price='99.50'/></order>"}


def index_sizes(database: Database) -> dict[str, int]:
    sizes = {name: len(index)
             for name, index in database.xml_indexes.items()}
    sizes.update({name: len(index)
                  for name, index in database.rel_indexes.items()})
    return sizes


class Boom(RuntimeError):
    pass


def failing(*_args, **_kwargs):
    raise Boom("injected index failure")


class TestRelIndexFailureUnwindsEverything:
    """The regression the bug sweep fixes: rel-index faults must unwind
    xml postings and earlier rel entries, not just the row."""

    def test_failure_at_first_rel_index(self):
        database = make_db()
        database.rel_indexes["idx_ordid"].insert_row = failing
        before = index_sizes(database)
        with pytest.raises(Boom):
            database.insert("orders", GOOD_ROW)
        # Pre-fix: li_price kept the posting for the rolled-back row.
        assert index_sizes(database) == before
        assert len(database.table("orders").rows) == 0

    def test_failure_at_second_rel_index_unwinds_first(self):
        database = make_db()
        database.rel_indexes["idx_flag"].insert_row = failing
        with pytest.raises(Boom):
            database.insert("orders", GOOD_ROW)
        # idx_ordid's entry was added before the fault and must be
        # unwound with everything else.
        assert all(size == 0 for size in index_sizes(database).values())
        assert len(database.table("orders").rows) == 0

    def test_version_not_bumped_on_failed_insert(self):
        database = make_db()
        database.rel_indexes["idx_flag"].insert_row = failing
        version = database.version
        with pytest.raises(Boom):
            database.insert("orders", GOOD_ROW)
        assert database.version == version

    def test_subsequent_inserts_work_after_rollback(self):
        database = make_db()
        original = database.rel_indexes["idx_flag"].insert_row
        database.rel_indexes["idx_flag"].insert_row = failing
        with pytest.raises(Boom):
            database.insert("orders", GOOD_ROW)
        database.rel_indexes["idx_flag"].insert_row = original
        database.insert("orders", GOOD_ROW)
        assert index_sizes(database) == {
            "li_price": 1, "idx_ordid": 1, "idx_flag": 1}

    def test_query_results_unaffected_by_failed_insert(self):
        database = make_db()
        database.insert("orders", GOOD_ROW)
        oracle = database.xquery(
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//lineitem[@price > 50]").serialized()
        database.rel_indexes["idx_flag"].insert_row = failing
        with pytest.raises(Boom):
            database.insert("orders", {
                "ordid": 2, "flag": 9,
                "orddoc": "<order><lineitem price='150'/></order>"})
        answer = database.xquery(
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//lineitem[@price > 50]").serialized()
        assert answer == oracle


class TestXmlIndexFailure:
    def test_failure_in_xml_index_leaves_no_rel_entries(self):
        database = make_db()
        database.xml_indexes["li_price"].index_document = failing
        with pytest.raises(Boom):
            database.insert("orders", GOOD_ROW)
        assert all(size == 0 for size in index_sizes(database).values())
        assert len(database.table("orders").rows) == 0

    def test_failure_at_second_xml_index_unwinds_first(self):
        database = make_db()
        database.execute(
            "CREATE INDEX o_flag ON orders(orddoc) "
            "USING XMLPATTERN '//lineitem/@price' AS VARCHAR")
        database.xml_indexes["o_flag"].index_document = failing
        with pytest.raises(Boom):
            database.insert("orders", GOOD_ROW)
        assert len(database.xml_indexes["li_price"]) == 0


class TestMissingIndexedColumn:
    """``row.values[index.column]`` used to escape as a raw
    ``KeyError``; it must surface as a typed CatalogError with an
    SQLSTATE-style code.  The public insert path None-fills missing
    columns, so the degenerate state — a row whose values dict lacks
    the indexed key outright, e.g. one that predates the column — is
    driven through ``_index_row`` directly."""

    @staticmethod
    def orphan_row():
        row = Row(999_999)
        row.values["ordid"] = 3   # idx_ordid is satisfied...
        return row                # ...idx_flag's column is absent

    def test_missing_column_raises_catalog_error(self):
        database = make_db()
        with pytest.raises(CatalogError) as excinfo:
            database._index_row(database.table("orders"),
                                self.orphan_row())
        assert excinfo.value.sqlstate == "42703"
        assert "orders.flag" in str(excinfo.value)
        assert not isinstance(excinfo.value, KeyError)

    def test_missing_column_failure_is_atomic(self):
        database = make_db()
        with pytest.raises(CatalogError):
            database._index_row(database.table("orders"),
                                self.orphan_row())
        # The idx_ordid entry added before the typed failure is
        # unwound with everything else.
        assert all(size == 0 for size in index_sizes(database).values())

    def test_public_insert_none_fills_missing_columns(self):
        # Through the public path a missing column means an indexed
        # None, not an error — pin that contract too.
        database = make_db()
        database.insert("orders", {
            "ordid": 3,
            "orddoc": "<order><lineitem price='1'/></order>"})
        assert len(database.table("orders").rows) == 1

    def test_default_sqlstate_is_42000(self):
        assert CatalogError("boom").sqlstate == "42000"
