"""Unit tests for the write-ahead log: framing, policies, corruption.

The WAL's contract is narrow and sharp — every record that `append`
reported durable must survive a crash, every record after a torn tail
must be detected and dropped, and nothing in between.
"""

import zlib

import pytest

from repro.durability import wal as wal_module
from repro.durability.faults import (CrashError, FaultInjector,
                                     torn_tail_sizes)
from repro.durability.wal import (MAGIC, WriteAheadLog, encode_record,
                                  scan_wal)
from repro.errors import DurabilityError


def make_wal(tmp_path, **kwargs) -> WriteAheadLog:
    return WriteAheadLog(str(tmp_path / "wal.log"), **kwargs)


def test_append_and_scan_roundtrip(tmp_path):
    log = make_wal(tmp_path)
    log.append({"op": "create_table", "table": "t"})
    log.append({"op": "insert", "table": "t", "values": {"k": 1}})
    log.close()
    scan = scan_wal(str(tmp_path / "wal.log"))
    assert [record for _lsn, record in scan.records] == [
        {"op": "create_table", "table": "t"},
        {"op": "insert", "table": "t", "values": {"k": 1}}]
    assert scan.last_lsn == 2
    assert scan.torn_bytes == 0


def test_lsns_are_monotonic_and_resume_after_reopen(tmp_path):
    log = make_wal(tmp_path)
    assert log.append({"op": "a"}) == 1
    assert log.append({"op": "b"}) == 2
    log.close()
    scan = scan_wal(str(tmp_path / "wal.log"))
    reopened = make_wal(tmp_path, start_lsn=scan.last_lsn)
    assert reopened.append({"op": "c"}) == 3
    reopened.close()
    assert scan_wal(str(tmp_path / "wal.log")).last_lsn == 3


def test_crc_mismatch_truncates_scan(tmp_path):
    log = make_wal(tmp_path)
    log.append({"op": "a"})
    log.append({"op": "b"})
    log.close()
    path = tmp_path / "wal.log"
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # flip one payload byte of the last record
    path.write_bytes(bytes(data))
    scan = scan_wal(str(path))
    assert [record for _lsn, record in scan.records] == [{"op": "a"}]
    assert scan.last_lsn == 1
    assert scan.torn_bytes > 0


def test_crc_covers_the_lsn(tmp_path):
    """Corrupting the frame's LSN field must invalidate the record."""
    log = make_wal(tmp_path)
    log.append({"op": "a"})
    log.close()
    path = tmp_path / "wal.log"
    data = bytearray(path.read_bytes())
    data[len(MAGIC)] ^= 0x01  # first byte of the little-endian LSN
    path.write_bytes(bytes(data))
    scan = scan_wal(str(path))
    assert scan.records == []
    assert scan.torn_bytes > 0


def test_non_monotonic_lsn_in_valid_prefix_is_hard_error(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(MAGIC + encode_record(2, {"op": "a"})
                     + encode_record(1, {"op": "b"}))
    with pytest.raises(DurabilityError):
        scan_wal(str(path))


def test_bad_magic_is_hard_error(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"NOTAWAL00\n" + encode_record(1, {"op": "a"}))
    with pytest.raises(DurabilityError):
        scan_wal(str(path))


def test_missing_file_scans_empty(tmp_path):
    scan = scan_wal(str(tmp_path / "absent.log"))
    assert scan.records == []
    assert scan.last_lsn == 0


def test_oversize_length_field_treated_as_torn(tmp_path):
    """A garbage length field must not trigger a giant allocation."""
    path = tmp_path / "wal.log"
    header = wal_module._FRAME.pack(1, 2**31, zlib.crc32(b""))
    path.write_bytes(MAGIC + header)
    scan = scan_wal(str(path))
    assert scan.records == []
    assert scan.torn_bytes == len(header)


@pytest.mark.parametrize("policy", ["always", "batch", "off"])
def test_every_policy_persists_after_close(tmp_path, policy):
    log = make_wal(tmp_path, fsync_policy=policy, group_size=4)
    for index in range(10):
        log.append({"op": "insert", "values": {"k": index}})
    log.close()
    scan = scan_wal(str(tmp_path / "wal.log"))
    assert scan.last_lsn == 10


def test_batch_policy_buffers_until_group_is_full(tmp_path):
    log = make_wal(tmp_path, fsync_policy="batch", group_size=3)
    log.append({"op": "a"})
    log.append({"op": "b"})
    assert log.pending_records == 2
    assert scan_wal(str(tmp_path / "wal.log")).last_lsn == 0
    log.append({"op": "c"})  # third record fills the group
    assert log.pending_records == 0
    assert scan_wal(str(tmp_path / "wal.log")).last_lsn == 3
    log.close()


def test_sync_drains_a_partial_batch(tmp_path):
    log = make_wal(tmp_path, fsync_policy="batch", group_size=100)
    log.append({"op": "a"})
    log.sync()
    assert log.pending_records == 0
    assert scan_wal(str(tmp_path / "wal.log")).last_lsn == 1
    log.close()


def test_reset_truncates_and_restarts_lsns(tmp_path):
    log = make_wal(tmp_path)
    for _ in range(5):
        log.append({"op": "a"})
    log.reset(5)
    assert log.append({"op": "b"}) == 6
    log.close()
    scan = scan_wal(str(tmp_path / "wal.log"))
    assert [lsn for lsn, _record in scan.records] == [6]


def test_crash_before_fsync_loses_unsynced_tail(tmp_path):
    faults = FaultInjector("wal.append.before_fsync", skip=1)
    log = make_wal(tmp_path, faults=faults)
    log.append({"op": "a"})
    with pytest.raises(CrashError):
        log.append({"op": "b"})
    scan = scan_wal(str(tmp_path / "wal.log"))
    assert scan.last_lsn == 1  # only the fsynced record survives


def test_crash_after_fsync_keeps_the_record(tmp_path):
    faults = FaultInjector("wal.append.after_fsync", skip=1)
    log = make_wal(tmp_path, faults=faults)
    log.append({"op": "a"})
    with pytest.raises(CrashError):
        log.append({"op": "b"})
    assert scan_wal(str(tmp_path / "wal.log")).last_lsn == 2


def test_torn_tail_sizes_covers_every_byte_of_the_last_record(tmp_path):
    log = make_wal(tmp_path)
    log.append({"op": "a"})
    log.append({"op": "bb"})
    log.close()
    path = tmp_path / "wal.log"
    scan = scan_wal(str(path))
    sizes = torn_tail_sizes(scan.last_record_start, scan.file_size)
    assert len(sizes) == scan.file_size - scan.last_record_start
    whole = path.read_bytes()
    for size in sizes:
        path.write_bytes(whole[:size])
        cut = scan_wal(str(path))
        assert cut.last_lsn == 1, f"cut at {size} kept a torn record"
        assert cut.torn_bytes == size - cut.valid_size
