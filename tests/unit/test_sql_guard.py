"""Pure-SQL statements obey the QueryGuard (the satellite bugfix).

Before this change the SQL executor never ticked: a deadline or row
budget installed by the server could only interrupt XQuery bodies, so
a pure-SQL cross join ran to completion no matter what.  These tests
pin the fix — the join scan, grouping and aggregation loops all
consult the guard — from the outside, through ``guarded()`` exactly as
the server installs it.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.errors import QueryLimitError, QueryTimeoutError
from repro.xquery.guard import QueryGuard, guarded

ROWS = 300   # past CHECK_EVERY=256, so per-row ticks reach the clock


@pytest.fixture()
def wide_db() -> Database:
    database = Database()
    database.create_table("nums", [("n", "INTEGER")])
    for value in range(ROWS):
        database.insert("nums", {"n": value})
    return database


def test_sql_scan_honours_deadline(wide_db):
    with guarded(QueryGuard(timeout_seconds=0.0)):
        with pytest.raises(QueryTimeoutError) as excinfo:
            wide_db.sql("SELECT n FROM nums")
    assert excinfo.value.sqlstate == "57014"


def test_sql_aggregation_honours_deadline(wide_db):
    with guarded(QueryGuard(timeout_seconds=0.0)):
        with pytest.raises(QueryTimeoutError):
            wide_db.sql("SELECT COUNT(n) FROM nums")


def test_sql_cancel_interrupts_a_join(wide_db):
    guard = QueryGuard()
    guard.cancel()
    with guarded(guard):
        with pytest.raises(QueryTimeoutError):
            wide_db.sql(
                "SELECT a.n FROM nums AS a, nums AS b WHERE a.n = b.n")


def test_sql_row_budget_enforced_mid_statement(wide_db):
    with guarded(QueryGuard(max_rows=10)):
        with pytest.raises(QueryLimitError) as excinfo:
            wide_db.sql("SELECT n FROM nums")
    assert excinfo.value.sqlstate == "54000"


def test_unguarded_sql_is_unchanged(wide_db):
    result = wide_db.sql("SELECT COUNT(n) FROM nums")
    assert result.rows == [(ROWS,)]


def test_guarded_sql_within_budget_succeeds(wide_db):
    with guarded(QueryGuard(timeout_seconds=30.0, max_rows=ROWS)):
        result = wide_db.sql("SELECT COUNT(n) FROM nums")
    assert result.rows == [(ROWS,)]
