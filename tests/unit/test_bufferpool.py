"""Unit tests for the document buffer pool (``repro.storage.bufferpool``).

Covers the LRU accounting, tier-1 eviction (drop the materialized
tree, keep the columns), tier-2 spill (drop the columns to a spool
file), transparent reload through ``StoredDocument.document``, and the
``bufferpool.*`` metrics contract.
"""

import pytest

from repro.obs.metrics import METRICS, enabled_metrics
from repro.storage.bufferpool import BufferPool
from repro.storage.catalog import Database
from repro.storage.columnar import ingest_document
from repro.storage.table import StoredDocument
from repro.xmlio import parse_document
from repro.xmlio.serializer import serialize

BIG_XML = ("<order>" +
           "".join(f"<lineitem price=\"{i}\"><product><id>p{i}</id>"
                   f"</product></lineitem>" for i in range(40)) +
           "</order>")


def make_stored(doc_id: int, xml: str = BIG_XML) -> StoredDocument:
    document = parse_document(xml)
    stored = StoredDocument(doc_id, document)
    stored._store = ingest_document(document)
    return stored


class TestPoolMechanics:
    def test_disabled_pool_is_inert(self):
        pool = BufferPool(None)
        assert not pool.enabled
        stored = make_stored(1)
        pool.admit(stored)
        assert pool.resident_bytes == 0
        assert stored.document is not None

    def test_admit_within_budget_keeps_tree(self):
        pool = BufferPool(50_000_000)
        stored = make_stored(1)
        stored._pool = pool
        pool.admit(stored)
        assert stored._document is not None
        assert pool.resident_bytes > 0

    def test_eviction_under_budget_pressure(self):
        pool = BufferPool(1)  # nothing fits: everything but the
        docs = []             # most recent access gets evicted
        for doc_id in range(3):
            stored = make_stored(doc_id)
            stored._pool = pool
            pool.admit(stored)
            docs.append(stored)
        assert sum(1 for s in docs if s._document is None) >= 2

    def test_evicted_document_reloads_transparently(self):
        pool = BufferPool(1)
        first, second = make_stored(1), make_stored(2)
        expected = serialize(first._document)
        original_ids = first._document.root_element.node_id
        for stored in (first, second):
            stored._pool = pool
            pool.admit(stored)
        assert first._document is None  # evicted by second's admit
        reloaded = first.document       # transparent re-materialize
        assert serialize(reloaded) == expected
        assert reloaded.root_element.node_id == original_ids

    def test_touch_refreshes_lru_position(self):
        # Exact budget games are fragile; test ordering directly.
        pool = BufferPool(50_000_000)
        a, b = make_stored(1), make_stored(2)
        for stored in (a, b):
            pool._lru[stored.doc_id] = stored
            pool._charged[stored.doc_id] = 1
        pool.touch(a)
        assert list(pool._lru) == [2, 1]

    def test_discard_forgets_document(self):
        pool = BufferPool(50_000_000)
        stored = make_stored(1)
        stored._pool = pool
        pool.admit(stored)
        charged = pool.resident_bytes
        assert charged > 0
        pool.discard(stored)
        assert pool.resident_bytes == 0
        assert stored.doc_id not in pool._lru


class TestSpill:
    def test_tier2_spill_writes_and_reloads(self, tmp_path):
        pool = BufferPool(1, spill_dir=str(tmp_path / "spool"))
        first, second = make_stored(1), make_stored(2)
        expected = serialize(first._document)
        for stored in (first, second):
            stored._pool = pool
            pool.admit(stored)
        # Tier-2 eviction dropped the columns too; only the spool file
        # remains.
        assert first._document is None
        assert first._store is None
        spool_files = list((tmp_path / "spool").iterdir())
        assert any(path.name == "doc-1.cols" for path in spool_files)
        assert serialize(first.document) == expected

    def test_spill_preserves_node_ids(self, tmp_path):
        pool = BufferPool(1, spill_dir=str(tmp_path / "spool"))
        first, second = make_stored(1), make_stored(2)
        original = [n.node_id for n in first._document.descendants_or_self()]
        for stored in (first, second):
            stored._pool = pool
            pool.admit(stored)
        reloaded = first.document
        restored = [n.node_id for n in reloaded.descendants_or_self()]
        assert restored == original


class TestSpillInvalidation:
    def _spill_one(self, tmp_path):
        pool = BufferPool(1, spill_dir=str(tmp_path / "spool"))
        first, second = make_stored(1), make_stored(2)
        for stored in (first, second):
            stored._pool = pool
            pool.admit(stored)
        assert (tmp_path / "spool" / "doc-1.cols").exists()
        return pool, first, second

    def test_discard_deletes_spill_file(self, tmp_path):
        pool, first, _second = self._spill_one(tmp_path)
        pool.discard(first)
        assert not (tmp_path / "spool" / "doc-1.cols").exists()
        assert 1 not in pool._spilled

    def test_discard_without_spill_is_noop(self, tmp_path):
        pool = BufferPool(50_000_000, spill_dir=str(tmp_path / "spool"))
        stored = make_stored(1)
        stored._pool = pool
        pool.admit(stored)
        pool.discard(stored)  # never evicted -> never spilled
        assert not (tmp_path / "spool").exists()

    def test_close_removes_every_spill_file(self, tmp_path):
        pool, _first, second = self._spill_one(tmp_path)
        # Spill the second document too by evicting it with a third.
        third = make_stored(3)
        third._pool = pool
        pool.admit(third)
        pool._evict(second)
        assert any((tmp_path / "spool").iterdir())
        pool.close()
        assert not any((tmp_path / "spool").iterdir())
        assert not pool._spilled

    def test_spill_delete_counter(self, tmp_path):
        with enabled_metrics():
            pool, first, _second = self._spill_one(tmp_path)
            pool.discard(first)
            assert METRICS.counter("bufferpool.spill_deletes") == 1


class TestMetrics:
    def test_hit_miss_eviction_counters(self):
        with enabled_metrics():
            pool = BufferPool(1)
            first, second = make_stored(1), make_stored(2)
            for stored in (first, second):
                stored._pool = pool
                pool.admit(stored)
            assert METRICS.counter("bufferpool.evictions") >= 1
            _ = first.document   # miss: re-materialize
            assert METRICS.counter("bufferpool.misses") >= 1
            _ = second.document if second._document is not None else None
            before = METRICS.counter("bufferpool.hits")
            _ = first.document   # first is now resident -> hit
            assert METRICS.counter("bufferpool.hits") > before

    def test_spill_and_load_counters(self, tmp_path):
        with enabled_metrics():
            pool = BufferPool(1, spill_dir=str(tmp_path / "spool"))
            first, second = make_stored(1), make_stored(2)
            for stored in (first, second):
                stored._pool = pool
                pool.admit(stored)
            assert METRICS.counter("bufferpool.spills") >= 1
            _ = first.document
            assert METRICS.counter("bufferpool.loads") >= 1


class TestDatabaseIntegration:
    def test_database_without_budget_has_inactive_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_BUFFER_POOL_BYTES", raising=False)
        database = Database()
        assert not database.buffer_pool.enabled
        database.create_table("t", [("id", "INTEGER"), ("d", "XML")])
        row = database.insert("t", {"id": 1, "d": "<a><b/></a>"})
        assert row.values["d"]._pool is None

    def test_database_with_budget_registers_documents(self):
        # An explicit budget always wins over the environment default.
        database = Database(buffer_pool_bytes=50_000_000)
        assert database.buffer_pool.enabled
        database.create_table("t", [("id", "INTEGER"), ("d", "XML")])
        row = database.insert("t", {"id": 1, "d": "<a><b/></a>"})
        stored = row.values["d"]
        assert stored._pool is database.buffer_pool
        assert stored.doc_id in database.buffer_pool._lru

    def test_env_var_sets_default_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUFFER_POOL_BYTES", "12345")
        database = Database()
        assert database.buffer_pool.enabled
        assert database.buffer_pool.budget_bytes == 12345

    def test_queries_survive_eviction_churn(self):
        database = Database(buffer_pool_bytes=1)
        database.create_table("t", [("id", "INTEGER"), ("d", "XML")])
        for i in range(4):
            database.insert("t", {"id": i, "d": BIG_XML})
        result = database.xquery(
            "count(db2-fn:xmlcolumn('T.D')//lineitem)")
        assert result.serialized() == "160"

    def test_delete_discards_from_pool(self):
        database = Database(buffer_pool_bytes=50_000_000)
        database.create_table("t", [("id", "INTEGER"), ("d", "XML")])
        database.insert("t", {"id": 1, "d": "<a/>"})
        assert database.buffer_pool.resident_bytes > 0
        database.delete_rows("t")
        assert database.buffer_pool.resident_bytes == 0
