"""The serial-fallback taxonomy shared by the thread and process
parallel backends: one reason set, one metric family, one trace span.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.obs.metrics import METRICS, enabled_metrics
from repro.obs.trace import Tracer, validate_trace
from repro.planner.parallel import (FALLBACK_REASONS, record_fallback)


def _fallback_counts() -> dict[str, int]:
    counters = METRICS.snapshot()["counters"]
    return {name: value for name, value in counters.items()
            if name.startswith("parallel.fallback_reason.")}


class TestRecordFallback:
    def test_unknown_reason_is_a_bug(self):
        with pytest.raises(ValueError):
            record_fallback("because")

    def test_counts_reason_and_legacy_aggregate(self):
        with enabled_metrics():
            record_fallback("gate-rejected")
            record_fallback("gate-rejected")
            record_fallback("freshness")
            counters = METRICS.snapshot()["counters"]
        assert counters["parallel.serial_fallbacks"] == 3
        assert counters["parallel.fallback_reason.gate-rejected"] == 2
        assert counters["parallel.fallback_reason.freshness"] == 1

    def test_disabled_metrics_cost_nothing(self):
        METRICS.reset()
        record_fallback("too-few-docs")
        assert _fallback_counts() == {}

    def test_trace_span_carries_the_reason(self):
        tracer = Tracer(statement="q", language="xquery")
        record_fallback("worker-error", tracer)
        payload = tracer.to_dict()
        assert validate_trace(payload) == []
        span = payload["spans"][0]
        assert span["name"] == "serial-fallback"
        assert span["attrs"]["reason"] == "worker-error"

    def test_every_documented_reason_is_recordable(self):
        with enabled_metrics():
            for reason in FALLBACK_REASONS:
                record_fallback(reason)
            counts = _fallback_counts()
        assert len(counts) == len(FALLBACK_REASONS)
        assert all(value == 1 for value in counts.values())


class TestThreadBackendReasons:
    def test_gate_rejected_query_is_classified(self, paper_db):
        query = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
                 "order by $o/custid return $o/custid")
        with enabled_metrics():
            paper_db.xquery_parallel(query, max_workers=4)
            counts = _fallback_counts()
        assert counts == {"parallel.fallback_reason.gate-rejected": 1}

    def test_single_worker_is_classified(self, paper_db):
        query = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/custid"
        with enabled_metrics():
            paper_db.xquery_parallel(query, max_workers=1)
            counts = _fallback_counts()
        assert counts == {"parallel.fallback_reason.single-worker": 1}

    def test_partitionable_query_records_no_fallback(self, paper_db):
        query = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/custid"
        with enabled_metrics():
            result = paper_db.xquery_parallel(query, max_workers=4)
            counters = METRICS.snapshot()["counters"]
        assert counters.get("parallel.serial_fallbacks", 0) == 0
        assert counters["parallel.fanouts"] == 1
        assert result.serialize() == paper_db.xquery(query).serialize()


class TestAttachRemote:
    def test_remote_span_dicts_graft_and_validate(self):
        remote = Tracer(statement="q", language="xquery")
        with remote.span("replica-eval", documents=3) as span:
            with remote.span("inner"):
                pass
            span.set(actual_rows=7)
        shipped = remote.to_dict()["spans"]

        local = Tracer(statement="q", language="xquery")
        with local.span("parallel-exec"):
            local.attach_remote(shipped, worker=1, pid=4242)
        payload = local.to_dict()
        assert validate_trace(payload) == []
        grafted = payload["spans"][0]["children"][0]
        assert grafted["name"] == "replica-eval"
        assert grafted["attrs"]["worker"] == 1
        assert grafted["attrs"]["pid"] == 4242
        assert grafted["attrs"]["actual_rows"] == 7
        assert grafted["children"][0]["name"] == "inner"
        # Durations survive the round-trip exactly (they are the only
        # cross-process-meaningful timing).
        assert grafted["duration_ms"] == shipped[0]["duration_ms"]

    def test_remote_graft_at_root_level(self):
        remote = Tracer(statement="q", language="xquery")
        with remote.span("replica-eval"):
            pass
        local = Tracer(statement="q", language="xquery")
        local.attach_remote(remote.to_dict()["spans"], worker=0)
        assert [span.name for span in local.roots] == ["replica-eval"]


class TestPoolFallbacksWithoutProcesses:
    """Pool paths that never reach a worker (no fork needed: cheap)."""

    def test_gate_rejected_runs_serially(self, paper_db):
        with paper_db.process_pool(processes=1) as pool:
            query = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
                     "order by $o/custid return $o/custid")
            with enabled_metrics():
                result = pool.xquery(query)
                counts = _fallback_counts()
        assert counts == {"parallel.fallback_reason.gate-rejected": 1}
        assert result.serialize() == paper_db.xquery(query).serialize()

    def test_one_process_pool_is_single_worker(self, paper_db):
        query = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/custid"
        with paper_db.process_pool(processes=1) as pool:
            with enabled_metrics():
                result = pool.xquery(query)
                counts = _fallback_counts()
        assert counts == {"parallel.fallback_reason.single-worker": 1}
        assert result.serialize() == paper_db.xquery(query).serialize()

    def test_closed_pool_still_answers(self, paper_db):
        pool = paper_db.process_pool(processes=1)
        pool.close()
        pool.close()  # idempotent
        query = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/custid"
        with enabled_metrics():
            result = pool.xquery(query)
            counts = _fallback_counts()
        assert counts == {"parallel.fallback_reason.pool-closed": 1}
        assert result.serialize() == paper_db.xquery(query).serialize()

    def test_zero_processes_rejected(self, paper_db):
        from repro.errors import ReplicationError
        with pytest.raises(ReplicationError):
            paper_db.process_pool(processes=0)
