"""The static half of the concurrency sanitizer (``repro check``).

Each SA4xx pass is exercised on a seeded fixture tree (the violation
fires, with the right reason code) and on the fixed form of the same
code (silent) — the contract the issue calls "fire on seeded
violations, stay quiet on the fixed tree".  The final tests pin the
real package: ``run_checks()`` over ``src/repro`` must be clean, which
is what CI's ``repro check`` gate enforces.
"""

from __future__ import annotations

import io
import json
import textwrap

from repro.analysis.diagnostics import SACode, SAFinding, suppressed
from repro.analysis.runner import main as check_main
from repro.analysis.runner import run_checks


def _run(tmp_path, files: dict) -> list:
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_checks(root=tmp_path)


def _codes(findings) -> set:
    return {finding.code.code for finding in findings}


# -- SA401: lock-order inversion ---------------------------------------


LOCK_ORDER_BAD = """
    import threading

    class Engine:
        def __init__(self):
            self._alock = threading.Lock()
            self._block = threading.Lock()

        def forward(self):
            with self._alock:
                with self._block:
                    pass

        def backward(self):
            with self._block:
                with self._alock:
                    pass
"""


def test_lock_order_inversion_fires(tmp_path):
    findings = _run(tmp_path, {"engine.py": LOCK_ORDER_BAD})
    assert "SA401" in _codes(findings)
    inversion = next(f for f in findings if f.code is SACode.LOCK_ORDER)
    # Both witnesses are reported: the finding anchors one order and
    # `related` carries the opposite one.
    assert "Engine._alock" in inversion.message
    assert "Engine._block" in inversion.message
    assert inversion.related


def test_lock_order_consistent_is_silent(tmp_path):
    fixed = LOCK_ORDER_BAD.replace(
        "with self._block:\n                with self._alock:",
        "with self._alock:\n                with self._block:")
    findings = _run(tmp_path, {"engine.py": fixed})
    assert "SA401" not in _codes(findings)


def test_lock_order_through_a_callee(tmp_path):
    # The inversion is only visible interprocedurally: one side takes
    # B inside a helper while holding A.
    findings = _run(tmp_path, {"engine.py": """
        import threading

        class Engine:
            def __init__(self):
                self._alock = threading.Lock()
                self._block = threading.Lock()

            def _touch_b(self):
                with self._block:
                    pass

            def forward(self):
                with self._alock:
                    self._touch_b()

            def backward(self):
                with self._block:
                    with self._alock:
                        pass
    """})
    assert "SA401" in _codes(findings)


# -- SA402: read->write upgrade ----------------------------------------


def test_upgrade_attempt_fires(tmp_path):
    findings = _run(tmp_path, {"store.py": """
        class Store:
            def __init__(self):
                self._rwlock = RWLock()

            def bad(self):
                with self._rwlock.read():
                    with self._rwlock.write():
                        pass
    """})
    assert "SA402" in _codes(findings)


def test_write_implies_read_is_legal(tmp_path):
    findings = _run(tmp_path, {"store.py": """
        class Store:
            def __init__(self):
                self._rwlock = RWLock()

            def fine(self):
                with self._rwlock.write():
                    with self._rwlock.read():
                        pass

            def also_fine(self):
                with self._rwlock.read():
                    with self._rwlock.read():
                        pass
    """})
    assert "SA402" not in _codes(findings)
    assert "SA401" not in _codes(findings)


# -- SA403: blocking under a write lock --------------------------------


def test_direct_blocking_under_write_lock_fires(tmp_path):
    findings = _run(tmp_path, {"engine.py": """
        import os

        class Engine:
            def __init__(self):
                self._rwlock = RWLock()

            def flush(self):
                with self._rwlock.write():
                    os.fsync(3)
    """})
    assert "SA403" in _codes(findings)


def test_blocking_reached_through_callee_fires(tmp_path):
    findings = _run(tmp_path, {"engine.py": """
        import os

        def _sync(fd):
            os.fsync(fd)

        class Engine:
            def __init__(self):
                self._rwlock = RWLock()

            def flush(self):
                with self._rwlock.write():
                    _sync(3)
    """})
    assert "SA403" in _codes(findings)


def test_blocking_under_read_lock_is_silent(tmp_path):
    # Readers share the lock; blocking there stalls no writer queue
    # the pass models — only the exclusive side is flagged.
    findings = _run(tmp_path, {"engine.py": """
        import os

        class Engine:
            def __init__(self):
                self._rwlock = RWLock()

            def flush(self):
                with self._rwlock.read():
                    os.fsync(3)
    """})
    assert "SA403" not in _codes(findings)


def test_callee_def_pragma_covers_every_call_site(tmp_path):
    # The WAL pattern: eight writers reach one fsync helper by
    # design.  One pragma on the helper's def suppresses them all.
    findings = _run(tmp_path, {"engine.py": """
        import os

        # sa: ok(SA403: group-commit fsync inside the writer section)
        def _sync(fd):
            os.fsync(fd)

        class Engine:
            def __init__(self):
                self._rwlock = RWLock()

            def flush(self):
                with self._rwlock.write():
                    _sync(3)

            def close(self):
                with self._rwlock.write():
                    _sync(4)
    """})
    assert "SA403" not in _codes(findings)


# -- SA404: blocking calls inside server coroutines --------------------


def test_sync_sleep_in_server_coroutine_fires(tmp_path):
    findings = _run(tmp_path, {"server/app.py": """
        import time

        async def handle():
            time.sleep(1)
    """})
    assert "SA404" in _codes(findings)


def test_awaited_and_deferred_calls_are_silent(tmp_path):
    findings = _run(tmp_path, {"server/app.py": """
        import asyncio

        async def handle(executor, pool):
            await asyncio.sleep(0)
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, lambda: pool.shutdown(wait=True))
    """})
    assert "SA404" not in _codes(findings)


def test_blocking_outside_server_tree_not_sa404(tmp_path):
    findings = _run(tmp_path, {"tools/app.py": """
        import time

        async def handle():
            time.sleep(1)
    """})
    assert "SA404" not in _codes(findings)


# -- SA405: fork with held state ---------------------------------------


def test_fork_under_lock_fires(tmp_path):
    findings = _run(tmp_path, {"pool.py": """
        import multiprocessing
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def spawn(self):
                with self._lock:
                    process = multiprocessing.Process(target=print)
                    process.start()
    """})
    assert "SA405" in _codes(findings)


def test_fork_after_release_is_silent(tmp_path):
    findings = _run(tmp_path, {"pool.py": """
        import multiprocessing
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def spawn(self):
                with self._lock:
                    state = {}
                process = multiprocessing.Process(target=print,
                                                  args=(state,))
                process.start()
    """})
    assert "SA405" not in _codes(findings)


def test_fork_inside_open_block_fires(tmp_path):
    findings = _run(tmp_path, {"pool.py": """
        import multiprocessing

        def spawn(path):
            with open(path) as handle:
                process = multiprocessing.Process(target=print)
                process.start()
    """})
    assert "SA405" in _codes(findings)


def test_fork_while_caller_holds_lock_fires(tmp_path):
    # The held set propagates into callees: the caller holds the lock,
    # the callee forks.
    findings = _run(tmp_path, {"pool.py": """
        import multiprocessing
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def _spawn(self):
                process = multiprocessing.Process(target=print)
                process.start()

            def bootstrap(self):
                with self._lock:
                    self._spawn()
    """})
    assert "SA405" in _codes(findings)


# -- SA406: guard-tick discipline --------------------------------------


UNTICKED_SQL = """
    def scan(rows):
        total = 0
        for row in rows:
            total += 1
        return total
"""


def test_unticked_sql_loop_fires(tmp_path):
    findings = _run(tmp_path, {"sql/executor.py": UNTICKED_SQL})
    assert "SA406" in _codes(findings)


def test_pre_fix_aggregate_shape_fires(tmp_path):
    # The shape sql/executor.py had before this change: aggregation
    # over group rows with no tick anywhere in the function.  The
    # regression half of the satellite bugfix — the pass must keep
    # firing if the ticks are ever removed again.
    findings = _run(tmp_path, {"sql/executor.py": """
        def _eval_aggregate(expr, group_envs):
            values = []
            for env in group_envs:
                values.append(env)
            return values
    """})
    assert "SA406" in _codes(findings)


def test_ticked_sql_loop_is_silent(tmp_path):
    findings = _run(tmp_path, {"sql/executor.py": """
        def scan(rows, guard):
            if guard is not None:
                guard.tick(len(rows) + 1)
            total = 0
            for row in rows:
                total += 1
            return total
    """})
    assert "SA406" not in _codes(findings)


def test_same_loop_outside_executor_modules_is_silent(tmp_path):
    findings = _run(tmp_path, {"util.py": UNTICKED_SQL})
    assert "SA406" not in _codes(findings)


def test_evaluator_items_loop_fires_but_not_dict_items(tmp_path):
    findings = _run(tmp_path, {"xquery/evaluator.py": """
        def walk(items, expr, mapping):
            out = []
            for item in items:
                out.append(item)
            for item_expr in expr.items:
                out.append(item_expr)
            for key, value in mapping.items():
                out.append(key)
            return out
    """})
    sa406 = [f for f in findings if f.code is SACode.GUARD_TICK]
    # Only the bare context sequence, on line 4 — ``expr.items`` and
    # ``mapping.items()`` are query-sized, not data-sized.
    assert [f.line for f in sa406] == [4]


def test_pragma_silences_a_qualifying_loop(tmp_path):
    findings = _run(tmp_path, {"sql/executor.py": """
        def scan(rows):
            total = 0
            # sa: ok(SA406: bounded by an already-guarded producer)
            for row in rows:
                total += 1
            return total
    """})
    assert "SA406" not in _codes(findings)


# -- SA407-SA410: the migrated lexical rules ---------------------------


def test_lock_discipline_fires_and_fixed_form_passes(tmp_path):
    findings = _run(tmp_path, {"storage/catalog.py": """
        class Database:
            def __init__(self):
                self._rwlock = RWLock()
                self.tables = {}

            def bad(self):
                self.tables = {}

            def good(self):
                with self._rwlock.write():
                    self.tables = {}
    """})
    sa407 = [f for f in findings if f.code is SACode.LOCK_DISCIPLINE]
    assert len(sa407) == 1
    assert "bad()" in sa407[0].message


def test_broad_except_fires_reraise_and_pragma_pass(tmp_path):
    findings = _run(tmp_path, {"mod.py": """
        def bad():
            try:
                work()
            except Exception:
                return None

        def reraises():
            try:
                work()
            except Exception:
                cleanup()
                raise

        def excused():
            try:
                work()
            except Exception:  # lint: broad-except-ok (boundary)
                return None
    """})
    sa408 = [f for f in findings if f.code is SACode.BROAD_EXCEPT]
    assert len(sa408) == 1
    assert sa408[0].line == 5


def test_metrics_gating_fires_and_guarded_form_passes(tmp_path):
    findings = _run(tmp_path, {"mod.py": """
        from .obs.metrics import METRICS

        def bad():
            METRICS.inc("x")

        def good():
            if METRICS.enabled:
                METRICS.inc("x")
    """})
    sa409 = [f for f in findings if f.code is SACode.METRICS_GATING]
    assert len(sa409) == 1
    assert sa409[0].line == 5


def test_fsync_discipline_fires_outside_fsio_only(tmp_path):
    files = {
        "durability/store.py": """
            import os

            def save(path, data):
                with open(path, "w") as handle:
                    handle.write(data)
                os.rename(path, path + ".done")
        """,
        "durability/fsio.py": """
            import os

            def fsync_file(path):
                fd = os.open(path, os.O_RDONLY)
                os.fsync(fd)
                os.close(fd)
        """,
    }
    findings = _run(tmp_path, files)
    sa410 = [f for f in findings if f.code is SACode.FSYNC_DISCIPLINE]
    assert sa410
    assert all(f.path.endswith("store.py") for f in sa410)


# -- suppression machinery ---------------------------------------------


def test_multiline_pragma_comment_block_is_honoured():
    lines = [
        "# sa: ok(SA403: the fsync here is the group-commit",
        "# design; see the engine docstring)",
        "def _log(self, record):",
    ]
    assert suppressed(lines, 3, SACode.BLOCKING_UNDER_LOCK)
    assert not suppressed(lines, 3, SACode.GUARD_TICK)


def test_finding_renders_with_code_and_related():
    finding = SAFinding(SACode.LOCK_ORDER, "a.py", 7, "msg",
                        related="b.py:9: other")
    assert str(finding) == "a.py:7: SA401 — msg [b.py:9: other]"
    payload = finding.to_dict()
    assert payload["code"] == "SA401"
    assert payload["related"] == "b.py:9: other"


# -- the real tree ------------------------------------------------------


def test_repo_tree_is_clean():
    # The acceptance gate: `repro check` exits 0 on the fixed tree.
    assert run_checks() == []


def test_runner_json_output_and_exit_codes(tmp_path):
    out = io.StringIO()
    assert check_main(["--json"], out=out) == 0
    assert json.loads(out.getvalue()) == []
