"""Unit tests for SQL value semantics (§3.3 boundary behaviour)."""

import datetime as dt
from decimal import Decimal

import pytest

from repro.errors import SQLError
from repro.sql.values import (SQLType, XMLValue, coerce_to_type,
                              normalize_key, sql_compare)


class TestTypes:
    def test_parse(self):
        assert SQLType.parse("INTEGER").name == "INTEGER"
        assert SQLType.parse("varchar(13)").length == 13
        assert SQLType.parse("DECIMAL(6, 3)").scale == 3
        assert SQLType.parse("int").name == "INTEGER"

    def test_parse_rejects(self):
        with pytest.raises(SQLError):
            SQLType.parse("BLOB")

    def test_predicates(self):
        assert SQLType.parse("XML").is_xml
        assert SQLType.parse("CHAR(3)").is_string
        assert SQLType.parse("DECIMAL").is_numeric

    def test_str_roundtrip(self):
        assert str(SQLType.parse("DECIMAL(6,3)")) == "DECIMAL(6,3)"


class TestCoercion:
    def test_varchar_length_enforced(self):
        with pytest.raises(SQLError):
            coerce_to_type("x" * 14, SQLType.parse("VARCHAR(13)"))
        assert coerce_to_type("x" * 13,
                              SQLType.parse("VARCHAR(13)")) == "x" * 13

    def test_decimal_scale(self):
        value = coerce_to_type("1.2345", SQLType.parse("DECIMAL(6,3)"))
        assert value == Decimal("1.234") or value == Decimal("1.235")

    def test_dates(self):
        assert coerce_to_type("2006-09-12", SQLType.parse("DATE")) == \
            dt.date(2006, 9, 12)

    def test_null_passthrough(self):
        assert coerce_to_type(None, SQLType.parse("INTEGER")) is None


class TestComparison:
    def test_trailing_blanks_ignored(self):
        # §3.3/§3.6: SQL string comparison pads; XQuery's does not.
        assert sql_compare("=", "abc  ", "abc") is True
        assert sql_compare("=", "abc", "abc   ") is True
        assert sql_compare("=", " abc", "abc") is False

    def test_null_is_unknown(self):
        assert sql_compare("=", None, 1) is None
        assert sql_compare("<>", None, None) is None

    def test_numeric(self):
        assert sql_compare("<", 1, 2) is True
        assert sql_compare(">=", Decimal("2.0"), 2) is True

    def test_ops(self):
        assert sql_compare("<>", 1, 2) is True
        assert sql_compare("<=", 2, 2) is True
        assert sql_compare(">", 3, 2) is True

    def test_cross_type_rejected(self):
        with pytest.raises(SQLError):
            sql_compare("=", "1", 1)

    def test_xml_operand_rejected(self):
        with pytest.raises(SQLError):
            sql_compare("=", XMLValue([]), 1)

    def test_normalize_key(self):
        assert normalize_key("a  ") == "a"
        assert normalize_key(True) == 1
        assert normalize_key(5) == 5
