"""Unit tests for XQuery comparison semantics (§3.1, §3.3, §3.10)."""

import pytest

from repro.errors import XQueryTypeError
from repro.xdm import atomic
from repro.xdm.compare import general_compare, node_compare, value_compare
from repro.xdm.nodes import AttributeNode, ElementNode, TextNode
from repro.xdm.qname import QName


def _attr(value: str) -> AttributeNode:
    return AttributeNode(QName("", "price"), value)


class TestGeneralComparison:
    def test_untyped_vs_number_is_numeric(self):
        # '@price > 100' with untyped "99.50": numeric comparison.
        assert not general_compare(">", [_attr("99.50")],
                                   [atomic.integer(100)])
        assert general_compare(">", [_attr("150")], [atomic.integer(100)])

    def test_untyped_vs_string_is_string(self):
        # Query 3: '@price > "100"' compares as strings: "90" > "100".
        assert general_compare(">", [_attr("90")], [atomic.string("100")])
        assert general_compare(">", [_attr("20 USD")],
                               [atomic.string("100")])

    def test_untyped_vs_untyped_is_string(self):
        assert general_compare(">", [_attr("9")], [_attr("10")])

    def test_failed_untyped_cast_is_nonmatch(self):
        # '20 USD' > 100 does not raise (DB2/optimization semantics).
        assert not general_compare(">", [_attr("20 USD")],
                                   [atomic.integer(100)])

    def test_typed_incompatible_raises(self):
        with pytest.raises(XQueryTypeError):
            general_compare("=", [atomic.string("1")], [atomic.integer(1)])

    def test_existential_over_sequences(self):
        # §3.10: one price of 250 and one of 50 satisfy >100 and <200.
        prices = [_attr("250"), _attr("50")]
        assert general_compare(">", prices, [atomic.integer(100)])
        assert general_compare("<", prices, [atomic.integer(200)])

    def test_empty_sequence_is_false(self):
        assert not general_compare("=", [], [atomic.integer(1)])
        assert not general_compare("!=", [], [atomic.integer(1)])

    def test_scientific_notation_numeric_equality(self):
        # §3.1's "10E3 = 1000" rule: scientific notation equals the
        # plain spelling numerically but not as strings.
        assert general_compare("=", [_attr("1E3")],
                               [atomic.integer(1000)])
        assert not general_compare("=", [_attr("1E3")],
                                   [atomic.string("1000")])

    def test_trailing_blanks_significant(self):
        # §3.3: unlike SQL, trailing blanks matter in XQuery.
        assert not general_compare("=", [atomic.string("a ")],
                                   [atomic.string("a")])

    def test_nan_comparisons(self):
        nan = atomic.double(float("nan"))
        assert not general_compare("=", [nan], [nan])
        assert general_compare("!=", [nan], [nan])

    def test_date_comparison(self):
        import datetime as dt
        earlier = atomic.date(dt.date(2006, 1, 1))
        later = atomic.date(dt.date(2006, 9, 12))
        assert general_compare("<", [earlier], [later])

    def test_untyped_vs_date(self):
        import datetime as dt
        assert general_compare("=", [_attr("2006-09-12")],
                               [atomic.date(dt.date(2006, 9, 12))])


class TestValueComparison:
    def test_requires_singletons(self):
        with pytest.raises(XQueryTypeError):
            value_compare("gt", [_attr("1"), _attr("2")],
                          [atomic.integer(0)])

    def test_empty_propagates(self):
        assert value_compare("eq", [], [atomic.integer(1)]) == []

    def test_untyped_vs_number_is_numeric(self):
        result = value_compare("gt", [_attr("150")], [atomic.integer(100)])
        assert result[0].value is True

    def test_untyped_vs_string(self):
        result = value_compare("eq", [_attr("17")], [atomic.string("17")])
        assert result[0].value is True

    def test_untyped_pair_compares_as_string(self):
        result = value_compare("lt", [_attr("9")], [_attr("10")])
        assert result[0].value is False  # "9" < "10" is false as strings

    def test_failed_cast_raises(self):
        from repro.errors import CastError
        with pytest.raises(CastError):
            value_compare("gt", [_attr("20 USD")], [atomic.integer(100)])

    def test_all_operators(self):
        one, two = atomic.integer(1), atomic.integer(2)
        assert value_compare("lt", [one], [two])[0].value
        assert value_compare("le", [one], [one])[0].value
        assert value_compare("gt", [two], [one])[0].value
        assert value_compare("ge", [two], [two])[0].value
        assert value_compare("ne", [one], [two])[0].value
        assert not value_compare("eq", [one], [two])[0].value


class TestDoubleMixedPrecision:
    """Regression: mixed double/exact comparisons must not coerce the
    exact operand through float().  float(2**53 + 1) == float(2**53),
    so the old coercion collapsed distinct integers above 2**53."""

    BIG = 2 ** 53

    def test_integer_above_2_53_not_equal_to_nearest_double(self):
        big_int = atomic.integer(self.BIG + 1)
        near_double = atomic.double(float(self.BIG))
        assert not value_compare("eq", [big_int], [near_double])[0].value
        assert value_compare("ne", [big_int], [near_double])[0].value
        assert not general_compare("=", [big_int], [near_double])

    def test_ordering_straddles_2_53(self):
        big_int = atomic.integer(self.BIG + 1)
        near_double = atomic.double(float(self.BIG))
        assert value_compare("gt", [big_int], [near_double])[0].value
        assert general_compare(">", [big_int], [near_double])
        assert general_compare("<", [near_double], [big_int])
        assert not general_compare(">=", [near_double], [big_int])

    def test_exactly_representable_still_equal(self):
        big_int = atomic.integer(self.BIG)
        same_double = atomic.double(float(self.BIG))
        assert value_compare("eq", [big_int], [same_double])[0].value
        assert general_compare("=", [big_int], [same_double])

    def test_decimal_vs_double_stays_exact(self):
        from decimal import Decimal
        fine = atomic.decimal(Decimal(self.BIG) + Decimal("0.5"))
        coarse = atomic.double(float(self.BIG))
        assert value_compare("gt", [fine], [coarse])[0].value
        assert not value_compare("eq", [fine], [coarse])[0].value

    def test_nan_vs_exact_integer(self):
        nan = atomic.double(float("nan"))
        big_int = atomic.integer(self.BIG + 1)
        assert value_compare("ne", [big_int], [nan])[0].value
        assert not value_compare("eq", [big_int], [nan])[0].value
        assert not value_compare("lt", [big_int], [nan])[0].value
        assert general_compare("!=", [nan], [big_int])
        assert not general_compare("=", [nan], [big_int])

    def test_infinity_vs_integer(self):
        infinity = atomic.double(float("inf"))
        big_int = atomic.integer(self.BIG + 1)
        assert value_compare("lt", [big_int], [infinity])[0].value
        assert general_compare(">", [infinity], [big_int])


class TestNodeComparison:
    def test_is_identity(self):
        element = ElementNode(QName("", "a"))
        other = ElementNode(QName("", "a"))
        assert node_compare("is", [element], [element])[0].value is True
        assert node_compare("is", [element], [other])[0].value is False

    def test_document_order(self):
        parent = ElementNode(QName("", "p"))
        first = ElementNode(QName("", "a"))
        second = ElementNode(QName("", "b"))
        parent.append_child(first)
        parent.append_child(second)
        assert node_compare("<<", [first], [second])[0].value is True
        assert node_compare(">>", [first], [second])[0].value is False

    def test_empty_operand_yields_empty(self):
        element = ElementNode(QName("", "a"))
        assert node_compare("is", [], [element]) == []

    def test_atomic_operand_rejected(self):
        with pytest.raises(XQueryTypeError):
            node_compare("is", [atomic.integer(1)], [atomic.integer(1)])

    def test_constructed_copies_have_new_identity(self):
        # §3.6: construction is "nondeterministic" w.r.t. identity.
        from repro.xdm.nodes import copy_node
        element = ElementNode(QName("", "a"), children=[TextNode("5")])
        clone = copy_node(element)
        assert node_compare("is", [element], [clone])[0].value is False
