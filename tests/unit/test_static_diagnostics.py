"""One test per diagnostic reason code, plus the sink machinery.

Every ``Code`` the rules engine can emit gets a minimal statement that
provokes exactly that finding against the paper fixture, so a
regression in any single rule fails its own named test.
"""

import pytest

from repro.static import Code, lint_statement
from repro.static.diagnostics import Diagnostic, DiagnosticSink

XMLCOL = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"


def codes_of(findings) -> set:
    return {finding.code for finding in findings}


class TestStaticErrors:
    def test_se001_xquery_syntax_error(self):
        findings = lint_statement("for $i in ((( return $i")
        assert codes_of(findings) == {Code.SYNTAX_ERROR}

    def test_se001_sql_syntax_error(self):
        findings = lint_statement("SELECT WHERE FROM")
        assert Code.SYNTAX_ERROR in codes_of(findings)

    def test_se002_unknown_function(self):
        findings = lint_statement("fn:frobnicate(1)")
        assert Code.UNKNOWN_FUNCTION in codes_of(findings)

    def test_se002_wrong_arity(self):
        findings = lint_statement("fn:count(1, 2, 3)")
        assert Code.UNKNOWN_FUNCTION in codes_of(findings)

    def test_se003_unknown_variable(self):
        findings = lint_statement("$undeclared + 1")
        assert Code.UNKNOWN_VARIABLE in codes_of(findings)

    def test_se004_incomparable_comparison(self):
        findings = lint_statement(
            "xs:double('1') = xs:date('2001-01-01')")
        assert Code.INCOMPARABLE_TYPES in codes_of(findings)

    def test_se004_not_raised_for_untyped_side(self, indexed_db):
        findings = lint_statement(
            f"{XMLCOL}//order[custid = 1001]", database=indexed_db)
        assert Code.INCOMPARABLE_TYPES not in codes_of(findings)

    def test_se005_statically_empty_path(self, indexed_db):
        findings = lint_statement(
            f"for $i in {XMLCOL}//order[warehouse/code = 'X'] "
            "return $i", database=indexed_db)
        assert Code.EMPTY_PATH in codes_of(findings)

    def test_se006_unknown_table(self, indexed_db):
        findings = lint_statement("SELECT wid FROM warehouse",
                                  database=indexed_db)
        assert Code.UNKNOWN_NAME in codes_of(findings)


class TestPitfallWarnings:
    def test_sw301_uncast_join(self, indexed_db):
        findings = lint_statement(
            'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
            'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
            "where $i/custid = $j/id return $i", database=indexed_db)
        assert Code.UNCAST_JOIN in codes_of(findings)

    def test_sw301_silent_when_cast(self, indexed_db):
        findings = lint_statement(
            'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
            'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
            "where $i/custid/xs:double(.) = $j/id/xs:double(.) "
            "return $i", database=indexed_db)
        assert Code.UNCAST_JOIN not in codes_of(findings)

    def test_sw307_namespace_drift(self, indexed_db):
        findings = lint_statement(
            "declare namespace f = 'http://fruit.example'; "
            f"for $i in {XMLCOL}//f:order[f:lineitem/@price > 100] "
            "return $i", database=indexed_db)
        assert Code.NAMESPACE_DRIFT in codes_of(findings)

    def test_sw308_text_misalignment(self, indexed_db):
        findings = lint_statement(
            f"for $i in {XMLCOL}//order[custid/text() = '1001'] "
            "return $i", database=indexed_db)
        assert Code.TEXT_MISALIGNMENT in codes_of(findings)

    def test_sw309_attribute_axis(self, indexed_db):
        # Element step where the data (and index) has an attribute.
        findings = lint_statement(
            f"for $i in {XMLCOL}//order[lineitem/price > 100] "
            "return $i", database=indexed_db)
        assert Code.ATTRIBUTE_AXIS in codes_of(findings)

    def test_sw310_existential_between(self, indexed_db):
        findings = lint_statement(
            f"{XMLCOL}//lineitem[price > 100 and price < 200]",
            database=indexed_db)
        assert Code.EXISTENTIAL_BETWEEN in codes_of(findings)

    def test_sw310_silent_for_single_scan_pair(self, indexed_db):
        findings = lint_statement(
            f"for $i in {XMLCOL}"
            "//order[lineitem[@price>100 and @price<200]] return $i",
            database=indexed_db)
        assert Code.EXISTENTIAL_BETWEEN not in codes_of(findings)

    def test_sw320_non_filtering_context(self, indexed_db):
        findings = lint_statement(
            f"for $d in {XMLCOL} "
            "let $x := $d//lineitem[@price > 100] "
            "return <r>{$x}</r>", database=indexed_db)
        assert Code.NON_FILTERING_CONTEXT in codes_of(findings)

    def test_clean_query_is_clean(self, indexed_db):
        findings = lint_statement(
            f"for $i in {XMLCOL}//order[lineitem/@price > 100] "
            "return $i", database=indexed_db)
        assert findings == []


class TestEveryCodeIsExercised:
    def test_class_covers_all_codes(self):
        """Each Code has a provoking test above (SE001 has two)."""
        tested = {
            Code.SYNTAX_ERROR, Code.UNKNOWN_FUNCTION,
            Code.UNKNOWN_VARIABLE, Code.INCOMPARABLE_TYPES,
            Code.EMPTY_PATH, Code.UNKNOWN_NAME, Code.UNCAST_JOIN,
            Code.NAMESPACE_DRIFT, Code.TEXT_MISALIGNMENT,
            Code.ATTRIBUTE_AXIS, Code.EXISTENTIAL_BETWEEN,
            Code.NON_FILTERING_CONTEXT,
        }
        assert tested == set(Code)


class TestDiagnosticMachinery:
    def test_to_dict_round_trip(self):
        finding = Diagnostic(Code.EMPTY_PATH, "no such path",
                             subject="//order/warehouse",
                             column="ORDERS.ORDDOC", detail="0 of 7")
        payload = finding.to_dict()
        assert payload["code"] == "SE005"
        assert payload["severity"] == "error"
        assert payload["section"] is not None
        assert payload["message"] == "no such path"

    def test_str_carries_code_and_severity(self):
        finding = Diagnostic(Code.UNCAST_JOIN, "uncast join")
        rendered = str(finding)
        assert "SW301" in rendered and "uncast join" in rendered

    def test_sink_dedups_identical_findings(self):
        sink = DiagnosticSink()
        sink.emit(Code.EMPTY_PATH, "same", subject="s", column="c")
        sink.emit(Code.EMPTY_PATH, "same", subject="s", column="c")
        assert len(sink.findings) == 1

    def test_sink_splits_severities(self):
        sink = DiagnosticSink()
        sink.emit(Code.EMPTY_PATH, "an error")
        sink.emit(Code.UNCAST_JOIN, "a warning")
        assert len(sink.errors) == 1
        assert len(sink.warnings) == 1
        assert sink.errors[0].severity == "error"
        assert sink.warnings[0].severity == "warning"
