"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.obs.explain import OperatorNode
from repro.obs.metrics import METRICS, MetricsRegistry, enabled_metrics
from repro.obs.trace import TRACE_VERSION, Tracer, validate_trace


class TestMetricsRegistry:
    def test_disabled_by_default(self):
        assert METRICS.enabled is False

    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.set_gauge("g", 2.5)
        registry.observe("h", 1.0)
        registry.observe("h", 3.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["a"] == 5
        assert snapshot["gauges"]["g"] == 2.5
        histogram = snapshot["histograms"]["h"]
        assert histogram["count"] == 2
        assert histogram["sum"] == 4.0
        assert histogram["min"] == 1.0
        assert histogram["max"] == 3.0
        assert histogram["avg"] == 2.0

    def test_hit_ratio_derived(self):
        registry = MetricsRegistry()
        registry.inc("querycache.hits", 3)
        registry.inc("querycache.misses", 1)
        assert registry.snapshot()["derived"]["querycache.hit_ratio"] \
            == 0.75

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_enabled_metrics_restores_state(self):
        registry = MetricsRegistry()
        with enabled_metrics(registry) as active:
            assert active.enabled is True
            active.inc("x")
        assert registry.enabled is False
        assert registry.counter("x") == 1
        registry.enable()
        with enabled_metrics(registry, fresh=True):
            assert registry.counter("x") == 0
        assert registry.enabled is True  # was enabled before the block

    def test_render_is_line_per_metric(self):
        registry = MetricsRegistry()
        registry.inc("index.probes", 2)
        registry.observe("query.seconds", 0.5)
        rendered = registry.render()
        assert "index.probes 2" in rendered
        assert "query.seconds count=1" in rendered


class TestTracer:
    def test_nested_spans(self):
        tracer = Tracer("q", "xquery")
        with tracer.span("plan") as plan:
            with tracer.span("index-scan", index="i") as scan:
                scan.set(actual_rows=3)
            plan.set(probes=1)
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "plan"
        assert root.attrs["probes"] == 1
        assert root.children[0].attrs == {"index": "i", "actual_rows": 3}
        assert root.duration >= root.children[0].duration

    def test_exception_attaches_error_attr(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert "nope" in tracer.roots[0].attrs["error"]
        # The stack unwound: new spans are roots again.
        with tracer.span("after"):
            pass
        assert [span.name for span in tracer.roots] == ["boom", "after"]

    def test_to_dict_validates_and_roundtrips_json(self):
        tracer = Tracer("stmt", "sql")
        with tracer.span("parse", kind="SelectStmt"):
            pass
        payload = json.loads(tracer.to_json())
        assert payload["trace_version"] == TRACE_VERSION
        assert payload["language"] == "sql"
        assert validate_trace(payload) == []

    def test_validate_trace_rejects_bad_payloads(self):
        assert validate_trace([]) != []
        assert validate_trace({}) != []
        good = Tracer("s", "xquery")
        with good.span("a"):
            pass
        payload = good.to_dict()
        payload["spans"][0]["attrs"] = {"bad": ["not", "scalar"]}
        assert any("non-scalar" in problem
                   for problem in validate_trace(payload))
        payload = good.to_dict()
        payload["language"] = "prolog"
        assert any("language" in problem
                   for problem in validate_trace(payload))


class TestOperatorNode:
    def test_from_span_lifts_cardinality_attrs(self):
        tracer = Tracer()
        with tracer.span("index-scan", index="i") as span:
            span.set(actual_rows=10, estimated_rows=5, unit="documents")
        node = OperatorNode.from_span(tracer.roots[0])
        assert node.actual_rows == 10
        assert node.estimated_rows == 5
        assert node.unit == "documents"
        assert node.attrs == {"index": "i"}
        assert node.q_error() == 2.0

    def test_q_error_none_when_unknown(self):
        node = OperatorNode(name="x", time_ms=1.0, actual_rows=4)
        assert node.q_error() is None

    def test_q_error_zero_actual(self):
        node = OperatorNode(name="x", time_ms=1.0, actual_rows=0,
                            estimated_rows=2)
        assert node.q_error() > 1.0

    def test_find_descends(self):
        child = OperatorNode(name="scan", time_ms=0.1)
        root = OperatorNode(name="root", time_ms=1.0, children=[child])
        assert root.find("scan") == [child]
        assert root.find("root") == [root]

    def test_render_contains_estimates(self):
        node = OperatorNode(name="scan", time_ms=0.5, actual_rows=2,
                            estimated_rows=4, unit="documents")
        rendered = node.render()
        assert "est documents=4" in rendered
        assert "actual documents=2" in rendered
        assert "err=2.00x" in rendered


class TestDisabledCost:
    def test_instrumented_paths_record_nothing_when_disabled(self):
        from repro.storage.btree import BPlusTree
        registry_snapshot = METRICS.snapshot()
        tree = BPlusTree(order=4)
        for key in range(50):
            tree.insert(key, key)
        tree.get(25)
        list(tree.scan(10, 20))
        assert METRICS.snapshot() == registry_snapshot

    def test_btree_metrics_when_enabled(self):
        from repro.storage.btree import BPlusTree
        tree = BPlusTree(order=4)
        for key in range(100):
            tree.insert(key, key)
        with enabled_metrics() as metrics:
            tree.get(42)
            list(tree.scan(10, 60))
            snapshot = metrics.snapshot()
        assert snapshot["counters"]["btree.node_visits"] >= 2
        assert snapshot["counters"]["btree.leaf_scans"] >= 1
