"""Quickstart: store XML, index it, query it, and see why the index
was (or wasn't) used.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.core import advise
from repro.planner import explain_xquery


def main() -> None:
    db = Database()

    # 1. A table with a native XML column — no schema required.
    db.execute("CREATE TABLE orders (ordid INTEGER, orddoc XML)")
    documents = [
        (1, "<order><custid>1001</custid>"
            "<lineitem price='150'><product><id>17</id></product>"
            "</lineitem></order>"),
        (2, "<order><custid>1002</custid>"
            "<lineitem price='99.50'><product><id>18</id></product>"
            "</lineitem></order>"),
        (3, "<order><custid>1001</custid>"
            "<lineitem price='20 USD'/></order>"),   # schema flexibility!
    ]
    for ordid, doc in documents:
        db.insert("orders", {"ordid": ordid, "orddoc": doc})

    # 2. A path-specific typed XML index (paper §2.1 DDL).
    db.execute("CREATE INDEX li_price ON orders(orddoc) "
               "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")

    # 3. Standalone XQuery — the index pre-filters the collection.
    query = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
             "//order[lineitem/@price>100] return $i")
    result = db.xquery(query)
    print("== Query 1 (paper §2.2) ==")
    for item in result.serialize():
        print("  ", item)
    print("docs scanned:", result.stats.docs_scanned,
          "| indexes used:", result.stats.indexes_used)

    # 4. SQL/XML — the same data through XMLEXISTS.
    sql_result = db.sql(
        "SELECT ordid FROM orders WHERE XMLEXISTS("
        "'$o//lineitem[@price > 100]' PASSING orddoc AS \"o\")")
    print("\n== SQL/XML (Query 8 form) ==")
    print("qualifying ordids:", [row[0] for row in sql_result.rows])

    # 5. Explain eligibility — why an index is or is not usable.
    print("\n== explain ==")
    print(explain_xquery(db, query))

    # 6. The advisor flags pitfalls before you hit them.
    print("\n== advisor on a pitfall query (string literal, §3.1) ==")
    pitfall = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
               '//order[lineitem/@price > "100"] return $i')
    for advice in advise(db, pitfall):
        print("  ", advice)


if __name__ == "__main__":
    main()
