"""Schema evolution: the §2.1 postal-code story, end to end.

Version 1 of the customer schema types postal codes as numbers (U.S.
ZIP).  The company starts shipping to Canada; version 2 types them as
strings.  Both populations share one XML column — per-document schema
association — and the *tolerant* indexes keep accepting documents the
old numeric index cannot hold.

Run:  python examples/schema_evolution.py
"""

from repro import Database
from repro.errors import SchemaValidationError
from repro.workload import (WorkloadGenerator, intl_customer_schema,
                            us_customer_schema)


def main() -> None:
    db = Database()
    db.execute("CREATE TABLE customer (cid INTEGER, cdoc XML)")
    db.register_schema(us_customer_schema())
    db.register_schema(intl_customer_schema())

    # Both index types coexist on the same data (§2.1: "the system may
    # require both a numeric and a string index on the same data").
    db.execute("CREATE INDEX pc_num ON customer(cdoc) "
               "USING XMLPATTERN '//postalcode' AS DOUBLE")
    db.execute("CREATE INDEX pc_str ON customer(cdoc) "
               "USING XMLPATTERN '//postalcode' AS VARCHAR")

    generator = WorkloadGenerator(seed=2006)
    for cid in range(1, 31):
        canadian = cid % 3 == 0
        doc = generator.customer_document(cid, canadian=canadian)
        schema = "customer-v2" if canadian else "customer-v1"
        db.insert("customer", {"cid": cid, "cdoc": doc}, schema=schema)

    num_index = db.xml_indexes["pc_num"]
    str_index = db.xml_indexes["pc_str"]
    print(f"customers: {len(db.table('customer'))}")
    print(f"numeric index entries: {len(num_index)} "
          f"(skipped {num_index.skipped_nodes} non-numeric codes)")
    print(f"string  index entries: {len(str_index)} (holds everything)")

    # The old numeric schema rejects Canadian documents outright.
    try:
        db.insert("customer",
                  {"cid": 99,
                   "cdoc": generator.customer_document(99,
                                                       canadian=True)},
                  schema="customer-v1")
    except SchemaValidationError as error:
        print(f"\nv1 schema rejects Canadian codes as expected:\n  "
              f"{error}")

    # Old numeric application query — guarded for mixed typed data.
    numeric_query = (
        "for $c in db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer"
        "[address/postalcode[. castable as xs:double]"
        "/xs:double(.) < 30000] return $c/id/data(.)")
    result = db.xquery(numeric_query)
    print(f"\nnumeric query: {len(result)} matches, "
          f"indexes: {result.stats.indexes_used}")

    # New string application query.
    string_query = (
        "for $c in db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer"
        "[address/postalcode/xs:string(.) > 'K'] "
        "return $c/id/data(.)")
    result = db.xquery(string_query)
    print(f"string  query: {len(result)} matches, "
          f"indexes: {result.stats.indexes_used}")


if __name__ == "__main__":
    main()
