"""XML views and the §3.6 flattening rewrite.

Views-by-construction are "a staple in relational databases"; the
paper's Section 3.6 explains why pushing predicates through them is
hard in XQuery.  This example defines a view, queries it, and shows
the engine's rewriter doing the §3.6-safe transformation — including
the compensation that keeps the concatenation and untyped-comparison
hazards intact, and the refusal when node identity is at stake.

Run:  python examples/views_and_rewrites.py
"""

import time

from repro import Database

VIEW = ("let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
        "/order/lineitem return <item>{ $i/@quantity, "
        "<pid>{ $i/product/id/data(.) }</pid> }</item> ")


def main() -> None:
    db = Database()
    db.execute("CREATE TABLE orders (orddoc XML)")
    for index in range(200):
        quantity = (index % 9) + 1
        pid = f"P{index % 40}"
        extra = "<id>EXTRA</id>" if index == 7 else ""
        db.insert("orders", {
            "orddoc": f"<order><lineitem quantity='{quantity}'>"
                      f"<product><id>{pid}</id>{extra}</product>"
                      f"</lineitem></order>"})
    db.execute("CREATE INDEX li_qty ON orders(orddoc) "
               "USING XMLPATTERN '//lineitem/@quantity' AS DOUBLE")

    # 1. The flattening enables the base index for attribute predicates.
    query = VIEW + "for $j in $view where $j/@quantity > 8 return $j"
    start = time.perf_counter()
    plain = db.xquery(query)
    plain_ms = (time.perf_counter() - start) * 1000
    start = time.perf_counter()
    rewritten = db.xquery(query, rewrite_views=True)
    rewritten_ms = (time.perf_counter() - start) * 1000
    assert plain.serialize() == rewritten.serialize()
    print("== attribute predicate through the view ==")
    print(f"  unrewritten: {plain_ms:6.1f} ms, indexes="
          f"{plain.stats.indexes_used}")
    print(f"  flattened:   {rewritten_ms:6.1f} ms, indexes="
          f"{rewritten.stats.indexes_used}")

    # 2. Concatenation semantics survive the rewrite (hazard 3).
    concat_query = VIEW + \
        "for $j in $view where $j/pid = 'P7 EXTRA' return $j"
    for mode, flag in (("unrewritten", False), ("flattened", True)):
        result = db.xquery(concat_query, rewrite_views=flag)
        print(f"  pid = 'P7 EXTRA' ({mode}): {len(result)} match(es)")

    # 3. Identity-sensitive queries refuse the rewrite (hazard 5).
    identity_query = VIEW + (
        "for $j in $view where $j/@quantity > 8 "
        "return ($j except db2-fn:xmlcolumn('ORDERS.ORDDOC')"
        "//lineitem)")
    result = db.xquery(identity_query, rewrite_views=True)
    print("\n== identity-sensitive query ==")
    for note in result.stats.plan_notes:
        if "refused" in note:
            print("  ", note)


if __name__ == "__main__":
    main()
