"""Schema-flexible RSS feeds — the paper's §1 "killer app" scenario.

RSS allows elements of any namespace anywhere in a document.  This
example stores extensible feeds without any schema, queries the
extension elements with namespace wildcards, and shows how namespace
handling decides index eligibility (§3.7, Tip 10).

Run:  python examples/rss_feeds.py
"""

from repro import Database
from repro.core import advise_index_pattern
from repro.workload import WorkloadGenerator


def main() -> None:
    db = Database()
    db.execute("CREATE TABLE feeds (fid INTEGER, feed XML)")
    generator = WorkloadGenerator(seed=99)
    for feed_id in range(1, 51):
        db.insert("feeds", {"fid": feed_id,
                            "feed": generator.rss_feed(feed_id, 8)})
    print(f"loaded {len(db.table('feeds'))} feeds\n")

    # Extension elements live in foreign namespaces (dc:, geo:) that the
    # feed schema never anticipated.
    creators = db.xquery(
        'declare namespace dc="http://purl.org/dc/elements/1.1/"; '
        "for $c in db2-fn:xmlcolumn('FEEDS.FEED')//item/dc:creator "
        "return $c/data(.)")
    print(f"dc:creator extensions found: {len(creators)}")

    # A namespace-wildcard index covers extensions from ANY namespace.
    db.execute("CREATE INDEX any_creator ON feeds(feed) "
               "USING XMLPATTERN '//*:creator' AS VARCHAR")
    query = ("db2-fn:xmlcolumn('FEEDS.FEED')"
             "//item[*:creator = 'author3']")
    result = db.xquery(query)
    print(f"items by author3: {len(result)} "
          f"(docs scanned: {result.stats.docs_scanned}, "
          f"indexes: {result.stats.indexes_used})")

    # Tip 10 in action: an index without namespace declarations would
    # never match the dc: elements.
    print("\nindex-pattern lint for a naive '//creator' definition:")
    for advice in advise_index_pattern("//creator"):
        print("  ", advice)

    # Dates in feeds: a DATE index on pubDate.
    db.execute("CREATE INDEX pub ON feeds(feed) "
               "USING XMLPATTERN '//item/pubDate' AS DATE")
    recent = db.xquery(
        "db2-fn:xmlcolumn('FEEDS.FEED')//item"
        "[pubDate/xs:date(.) ge xs:date('2006-09-25')]")
    print(f"\nitems on/after 2006-09-25: {len(recent)} "
          f"(indexes: {recent.stats.indexes_used})")


if __name__ == "__main__":
    main()
