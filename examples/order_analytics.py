"""Order analytics: SQL/XML reporting over a generated order workload.

Shows the full SQL/XML surface on a realistic scenario — the paper's
"financial applications" motif: XMLTABLE shredding, XML/relational
joins, publishing functions, and the index-or-not performance gap.

Run:  python examples/order_analytics.py
"""

import time

from repro import Database
from repro.workload import OrderProfile, populate_paper_schema


def timed(label: str, func):
    start = time.perf_counter()
    result = func()
    elapsed = (time.perf_counter() - start) * 1000
    print(f"{label:58s} {elapsed:8.1f} ms")
    return result


def main() -> None:
    db = Database()
    profile = OrderProfile(max_lineitems=5, price_low=1, price_high=500)
    populate_paper_schema(db, orders=400, customers=40, products=25,
                          profile=profile)
    db.create_relational_index("p_id", "products", "id")
    print(f"loaded {len(db.table('orders'))} orders, "
          f"{len(db.table('customer'))} customers, "
          f"{len(db.table('products'))} products\n")

    # -- Report 1: expensive lineitems, shredded to a relational shape.
    report = db.sql(
        "SELECT o.ordid, t.product, t.price FROM orders o, "
        "XMLTABLE('$d//lineitem[@price > 450]' PASSING o.orddoc AS \"d\""
        " COLUMNS product VARCHAR(13) PATH 'product/id', "
        "price DOUBLE PATH '@price') AS t ORDER BY t.price DESC")
    print("== expensive lineitems (XMLTABLE) ==")
    for row in report.rows[:5]:
        print("  ordid=%s product=%s price=%.2f" % row)
    print(f"  ... {len(report)} rows; indexes: "
          f"{report.stats.indexes_used}\n")

    # -- Report 2: XML-to-relational join (Tip 5: SQL side w/ rel index)
    join = db.sql(
        "SELECT p.name FROM orders o, products p "
        "WHERE o.ordid = 7 AND p.id = XMLCAST(XMLQUERY("
        "'($d//lineitem/product/id)[1]' PASSING o.orddoc AS \"d\") "
        "AS VARCHAR(13))")
    print("== first product of order 7 (relational-index join) ==")
    print("  ", [row[0] for row in join.rows],
          "| indexes:", join.stats.indexes_used, "\n")

    # -- Report 2b: revenue per product — shred then aggregate.
    revenue = db.sql(
        "SELECT t.product, SUM(t.price) AS revenue, COUNT(*) AS items "
        "FROM orders o, XMLTABLE('$d//lineitem' PASSING o.orddoc AS "
        "\"d\" COLUMNS product VARCHAR(13) PATH 'product/id', "
        "price DOUBLE PATH '@price') AS t "
        "GROUP BY t.product HAVING SUM(t.price) > 0 "
        "ORDER BY SUM(t.price) DESC")
    print("== revenue per product (GROUP BY over XMLTABLE) ==")
    for product, total, items in revenue.rows[:3]:
        print(f"  {product}: {total:9.2f} over {items} lineitems")
    print(f"  ... {len(revenue)} products\n")

    # -- Report 3: publish per-customer order summaries as XML.
    summary = db.sql(
        "SELECT XMLELEMENT(NAME summary, XMLATTRIBUTES(c.cid AS cid), "
        "XMLQUERY('count(db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")"
        "/order[custid = $id])' PASSING c.cid AS \"id\")) "
        "FROM customer c WHERE c.cid = 1")
    print("== published summary (XMLELEMENT) ==")
    print("  ", summary.serialize_rows()[0][0], "\n")

    # -- The headline: index prefilter vs full collection scan.
    query = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
             "//order[lineitem/@price > 495] return $o")
    print("== index vs scan ==")
    fast = timed("with li_price index", lambda: db.xquery(query))
    slow = timed("full collection scan",
                 lambda: db.xquery(query, use_indexes=False))
    assert fast.serialize() == slow.serialize()
    print(f"both return {len(fast)} orders; index touched "
          f"{fast.stats.docs_scanned} documents instead of "
          f"{slow.stats.docs_scanned}")


if __name__ == "__main__":
    main()
