"""The pitfall clinic: every Section 3 pitfall, shown live.

For each pitfall area this script runs the paper's *problem*
formulation and the *recommended* formulation side by side, printing
result cardinalities, index usage, and the advisor's diagnosis — a
runnable version of the paper's ten sections.

Run:  python examples/pitfall_clinic.py
"""

from repro import Database
from repro.core import advise
from repro.workload import OrderProfile, populate_paper_schema


def show(db: Database, title: str, queries: dict[str, str]) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))
    for label, query in queries.items():
        language = ("sql" if query.lstrip().upper().startswith(
            ("SELECT", "VALUES")) else "xquery")
        try:
            if language == "sql":
                result = db.sql(query)
                rows, stats = len(result), result.stats
            else:
                result = db.xquery(query)
                rows, stats = len(result), result.stats
            print(f"  [{label}] rows={rows} docs_scanned="
                  f"{stats.docs_scanned} indexes={stats.indexes_used}")
        except Exception as error:
            print(f"  [{label}] ERROR: {error}")
        warnings = [item for item in advise(db, query)
                    if item.severity == "warning"]
        for item in warnings[:2]:
            print(f"      advisor: {item}")


def main() -> None:
    db = Database()
    populate_paper_schema(
        db, orders=120, customers=15, products=10,
        profile=OrderProfile(price_low=1, price_high=200,
                             string_price_fraction=0.05))

    show(db, "§3.1 predicate data types", {
        "pitfall: string literal":
            'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
            '//order[lineitem/@price > "190"] return $i',
        "fix: numeric literal":
            'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
            "//order[lineitem/@price > 190] return $i",
    })

    show(db, "§3.2 SQL/XML query functions", {
        "pitfall: XMLQUERY in select list (Query 5)":
            "SELECT XMLQuery('$o//lineitem[@price > 190]' "
            'passing orddoc as "o") FROM orders',
        "pitfall: boolean XMLEXISTS (Query 9)":
            "SELECT ordid FROM orders WHERE XMLExists("
            "'$o//lineitem/@price > 190' passing orddoc as \"o\")",
        "fix: XMLEXISTS with node filter (Query 8)":
            "SELECT ordid FROM orders WHERE XMLExists("
            "'$o//lineitem[@price > 190]' passing orddoc as \"o\")",
        "fix: XMLTABLE row-producer (Query 11)":
            "SELECT o.ordid, t.li FROM orders o, XMLTable("
            "'$d//lineitem[@price > 190]' passing o.orddoc as \"d\" "
            "COLUMNS li XML BY REF PATH '.') AS t",
    })

    show(db, "§3.4 let vs for", {
        "pitfall: let binding (Query 18)":
            "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') "
            "let $i := $d//lineitem[@price > 190] "
            "return <result>{$i}</result>",
        "fix: for binding (Query 17)":
            "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') "
            "for $i in $d//lineitem[@price > 190] "
            "return <result>{$i}</result>",
        "fix: let + where (Query 21)":
            "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
            "let $p := $o/lineitem/@price where $p > 190 "
            "return <result>{$o/lineitem}</result>",
    })

    show(db, "§3.4 constructors in return clauses", {
        "pitfall: predicate inside constructor (Query 19)":
            "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
            "return <result>{$o/lineitem[@price > 190]}</result>",
        "fix: bare bind-out (Query 22)":
            "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
            "return $o/lineitem[@price > 190]",
    })

    show(db, "§3.10 between predicates", {
        "ok: attribute between (single scan)":
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//lineitem[@price > 150 and @price < 190]",
        "watch: general comparisons on elements (two scans)":
            "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//lineitem[price > 150 and price < 190]",
    })

    print("\ndone — each 'fix' line shows indexes=['li_price'] while "
          "its pitfall twin shows indexes=[].")


if __name__ == "__main__":
    main()
