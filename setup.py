"""Setuptools shim.

Kept alongside pyproject.toml so `pip install -e .` works on offline
environments whose setuptools lacks the `wheel` package needed for
PEP 660 editable builds (pip falls back to `setup.py develop`).
"""

from setuptools import setup

setup()
