"""Concurrent serving layer: batch fan-out and partition-parallel scaling.

Measures three shapes against the serial baseline:

* a read-only multi-statement batch through ``execute_many`` (the
  paper's many-clients scenario) with 1 vs N workers;
* one descendant-heavy query fanned across document partitions with
  ``xquery_parallel``;
* lock overhead: the serial entry point now pays one uncontended
  read-lock round trip per statement, which must stay invisible.

Honest-numbers note: under CPython's GIL, pure-Python evaluation is
CPU-bound, so thread fan-out yields at best modest gains on a
single-core host and approaches the ISSUE's >=2x target only on
multi-core machines where lock-free snapshot readers overlap their
non-bytecode work (parsing, allocation churn).  The assertions below
therefore pin *correctness* (batched == serial results); the scaling
ratio is recorded in BENCH_results.json for the host CI runs on.
"""

import pytest

from conftest import PRICE_BOUND, build_db

QUERY = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
         f"//order[lineitem/@price>{PRICE_BOUND}] return $i")
SCAN_QUERY = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
              "//order[lineitem/@*>190] return $i")  # unindexable


@pytest.fixture(scope="module")
def concurrency_db():
    return build_db(orders=200)


@pytest.fixture(scope="module")
def batch(concurrency_db):
    statements = [QUERY, SCAN_QUERY] * 4
    serial = [result.serialized()
              for result in concurrency_db.execute_many(statements,
                                                        max_workers=1)]
    return statements, serial


def test_execute_many_serial_baseline(benchmark, concurrency_db, batch):
    statements, serial = batch
    results = benchmark(
        lambda: concurrency_db.execute_many(statements, max_workers=1))
    assert [result.serialized() for result in results] == serial


def test_execute_many_8_workers(benchmark, concurrency_db, batch):
    statements, serial = batch
    results = benchmark(
        lambda: concurrency_db.execute_many(statements, max_workers=8))
    assert [result.serialized() for result in results] == serial


def test_xquery_serial_descendant_scan(benchmark, concurrency_db):
    result = benchmark(
        lambda: concurrency_db.xquery(SCAN_QUERY, use_indexes=False))
    assert len(result) > 0


def test_xquery_parallel_descendant_scan(benchmark, concurrency_db):
    serial = concurrency_db.xquery(SCAN_QUERY,
                                   use_indexes=False).serialized()
    result = benchmark(
        lambda: concurrency_db.xquery_parallel(SCAN_QUERY, max_workers=4,
                                               use_indexes=False))
    assert result.serialized() == serial


def test_read_lock_overhead_indexed_query(benchmark, concurrency_db):
    # The per-statement cost of the uncontended read lock: this must
    # track the PR-2 era median for the same indexed query.
    result = benchmark(lambda: concurrency_db.xquery(QUERY))
    assert len(result) > 0
