"""Ablation: rule-based vs cost-based index usage.

DESIGN.md calls out the planner's probe-selection policy as a design
choice.  This benchmark isolates it: on an *unselective* predicate the
rule-based planner pays for an index scan that prunes almost nothing,
while the cost model skips the probe; on a *selective* predicate both
modes probe and win.
"""

import pytest

from conftest import build_db


@pytest.fixture(scope="module")
def cost_db():
    return build_db(orders=400)


SELECTIVE = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
             "//lineitem[@price > 198]")
UNSELECTIVE = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
               "//lineitem[@price > 2]")


def test_selective_rule_based(benchmark, cost_db):
    result = benchmark(lambda: cost_db.xquery(SELECTIVE))
    assert result.stats.indexes_used == ["li_price"]


def test_selective_cost_based(benchmark, cost_db):
    result = benchmark(lambda: cost_db.xquery(SELECTIVE,
                                              cost_based=True))
    assert result.stats.indexes_used == ["li_price"]


def test_unselective_rule_based_pays_for_probe(benchmark, cost_db):
    result = benchmark(lambda: cost_db.xquery(UNSELECTIVE))
    assert result.stats.indexes_used == ["li_price"]
    assert result.stats.index_entries_scanned > 300


def test_unselective_cost_based_skips_probe(benchmark, cost_db):
    result = benchmark(lambda: cost_db.xquery(UNSELECTIVE,
                                              cost_based=True))
    assert result.stats.indexes_used == []


def test_modes_agree(cost_db):
    for query in (SELECTIVE, UNSELECTIVE):
        rule = cost_db.xquery(query)
        cost = cost_db.xquery(query, cost_based=True)
        scan = cost_db.xquery(query, use_indexes=False)
        assert rule.serialize() == cost.serialize() == scan.serialize()
