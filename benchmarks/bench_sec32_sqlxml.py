"""§3.2 — SQL/XML query functions (Queries 5–12).

Paper claims: XMLQUERY in the select list and boolean-bodied XMLEXISTS
never filter (full scans); XMLEXISTS with a node filter, the XMLTABLE
row-producer, and the standalone interface do (index prefilter).
"""

Q5 = ("SELECT XMLQuery('$order//lineitem[@price > 190]' "
      'passing orddoc as "order") FROM orders')
Q7 = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 190]"
Q8 = ("SELECT ordid, orddoc FROM orders WHERE "
      "XMLExists('$order//lineitem[@price > 190]' "
      'passing orddoc as "order")')
Q9 = ("SELECT ordid, orddoc FROM orders WHERE "
      "XMLExists('$order//lineitem/@price > 190' "
      'passing orddoc as "order")')
Q11 = ("SELECT o.ordid, t.lineitem FROM orders o, "
       "XMLTable('$order//lineitem[@price > 190]' "
       'passing o.orddoc as "order" '
       "COLUMNS \"lineitem\" XML BY REF PATH '.') as t(lineitem)")
Q12 = ("SELECT o.ordid, t.price FROM orders o, "
       "XMLTable('$order//lineitem' passing o.orddoc as \"order\" "
       "COLUMNS \"price\" DOUBLE PATH '@price[. > 190]') as t(price)")


def test_query5_select_list_no_filter(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.sql(Q5))
    assert result.stats.indexes_used == []


def test_query7_standalone_with_index(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(Q7))
    assert result.stats.indexes_used == ["li_price"]


def test_query8_xmlexists_with_index(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.sql(Q8))
    assert result.stats.indexes_used == ["li_price"]


def test_query9_boolean_body_full_scan(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.sql(Q9))
    assert result.stats.indexes_used == []
    assert len(result) == len(paper_bench_db.table("orders"))


def test_query11_xmltable_row_producer_with_index(benchmark,
                                                  paper_bench_db):
    result = benchmark(lambda: paper_bench_db.sql(Q11))
    assert result.stats.indexes_used == ["li_price"]


def test_query12_column_predicate_full_scan(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.sql(Q12))
    assert result.stats.indexes_used == []
