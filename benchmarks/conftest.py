"""Shared benchmark fixtures: populated databases at fixed scales.

Session-scoped: each benchmark module reads, never mutates, these
databases.  ``paper_bench_db`` is the paper's 3-table schema with the
running-example indexes plus the varchar/by-element variants the
pitfall benchmarks need.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.workload import OrderProfile, populate_paper_schema

#: Collection size used by the per-pitfall benchmarks.
SCALE = 300


def build_db(orders: int = SCALE, element_prices: bool = False,
             namespace: str | None = None, seed: int = 1) -> Database:
    database = Database()
    profile = OrderProfile(
        max_lineitems=4, price_low=1, price_high=200,
        string_price_fraction=0.05, element_prices=element_prices,
        mixed_text_fraction=0.1 if element_prices else 0.0,
        namespace=namespace)
    populate_paper_schema(database, orders=orders,
                          customers=max(10, orders // 10), products=20,
                          profile=profile, seed=seed,
                          with_indexes=not namespace)
    return database


@pytest.fixture(scope="session")
def paper_bench_db() -> Database:
    database = build_db()
    database.execute(
        "CREATE INDEX li_price_str ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/@price' AS VARCHAR")
    database.execute(
        "CREATE INDEX li_prod_id ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/product/id' AS VARCHAR")
    database.create_relational_index("p_id_rel", "products", "id")
    return database


@pytest.fixture(scope="session")
def element_price_db() -> Database:
    database = build_db(element_prices=True)
    database.execute(
        "CREATE INDEX e_price ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/price' AS DOUBLE")
    database.execute(
        "CREATE INDEX e_price_text ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/price/text()' AS VARCHAR")
    return database


#: Selectivity used by most predicates: price > 190 (~5% of lineitems).
PRICE_BOUND = 190
