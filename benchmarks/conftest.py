"""Shared benchmark fixtures: populated databases at fixed scales.

Session-scoped: each benchmark module reads, never mutates, these
databases.  ``paper_bench_db`` is the paper's 3-table schema with the
running-example indexes plus the varchar/by-element variants the
pitfall benchmarks need.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro import Database
from repro.workload import OrderProfile, populate_paper_schema

#: Collection size used by the per-pitfall benchmarks.
SCALE = 300


def build_db(orders: int = SCALE, element_prices: bool = False,
             namespace: str | None = None, seed: int = 1) -> Database:
    database = Database()
    profile = OrderProfile(
        max_lineitems=4, price_low=1, price_high=200,
        string_price_fraction=0.05, element_prices=element_prices,
        mixed_text_fraction=0.1 if element_prices else 0.0,
        namespace=namespace)
    populate_paper_schema(database, orders=orders,
                          customers=max(10, orders // 10), products=20,
                          profile=profile, seed=seed,
                          with_indexes=not namespace)
    return database


@pytest.fixture(scope="session")
def paper_bench_db() -> Database:
    database = build_db()
    database.execute(
        "CREATE INDEX li_price_str ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/@price' AS VARCHAR")
    database.execute(
        "CREATE INDEX li_prod_id ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/product/id' AS VARCHAR")
    database.create_relational_index("p_id_rel", "products", "id")
    return database


@pytest.fixture(scope="session")
def element_price_db() -> Database:
    database = build_db(element_prices=True)
    database.execute(
        "CREATE INDEX e_price ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/price' AS DOUBLE")
    database.execute(
        "CREATE INDEX e_price_text ON orders(orddoc) "
        "USING XMLPATTERN '//lineitem/price/text()' AS VARCHAR")
    return database


#: Selectivity used by most predicates: price > 190 (~5% of lineitems).
PRICE_BOUND = 190


#: Free-form observations benchmarks want recorded alongside the
#: medians (e.g. the replication suite's measured speedup and its
#: honest single-core caveat).  Keyed strings, JSON-scalar values.
BENCH_NOTES: dict[str, object] = {}


def register_bench_note(key: str, value) -> None:
    """Record an observation for the ``notes`` section of
    BENCH_results.json — methodology context a bare median cannot
    carry (host core count, measured ratios, applicability caveats)."""
    BENCH_NOTES[key] = value


#: Seed-implementation medians (seconds) for the descendant-heavy
#: queries, measured on the same workload/scale *before* the structural
#: acceleration layer landed.  Kept here so BENCH_results.json always
#: records the speedup against the original tree-walking evaluator.
SEED_BASELINES = {
    "benchmarks/bench_micro.py::test_xquery_descendant_price_scan":
        0.00961,
    "benchmarks/bench_micro.py::test_xquery_descendant_predicate_filter":
        0.02069,
    "benchmarks/bench_micro.py::test_xquery_descendant_product_ids":
        0.00957,
    "benchmarks/bench_micro.py::test_xquery_rooted_path":
        0.00323,
}


def _median_seconds(bench) -> float | None:
    """Median wall time of one pytest-benchmark result, version-tolerant."""
    stats = getattr(bench, "stats", None)
    median = getattr(stats, "median", None)
    if median is None:
        inner = getattr(stats, "stats", None)
        median = getattr(inner, "median", None)
    return median


def _calibration_seconds() -> float:
    """Best-of-N timing of a fixed pure-Python workload, in seconds.

    Benchmarks run on whatever machine CI hands out; absolute medians
    drift with host speed.  This number measures the *host*, not the
    engine, so a regression check can normalise a fresh run against a
    committed baseline (fresh_median / (calibration ratio)).  The
    minimum over many repeats is used because it is the least noisy
    estimator of raw host speed — any scheduling or frequency-scaling
    hiccup only ever makes a sample *slower*.
    """
    def workload() -> int:
        total = 0
        for value in range(200_000):
            total += value * value % 7
        return total

    workload()  # warm-up
    samples = []
    for _ in range(11):
        start = time.perf_counter()
        workload()
        samples.append(time.perf_counter() - start)
    return min(samples)


def _metrics_snapshot() -> dict:
    """Engine counters for one eligible + one ineligible paper query.

    Built on a tiny dedicated database (orders=50) so the snapshot is
    cheap and deterministic in shape: the eligible query must show
    index probes and few docs scanned; the wildcard query must show the
    §3.1 full-scan cliff.  Stored in BENCH_results.json so a timing
    regression can be cross-checked against *work done* — a median that
    moved while the counters stayed flat is host noise, not the engine.
    """
    from repro.obs.metrics import enabled_metrics

    database = build_db(orders=50)
    eligible = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                f"//order[lineitem/@price>{PRICE_BOUND}] return $i")
    wildcard = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
                f"//order[lineitem/@*>{PRICE_BOUND}] return $i")
    snapshot = {}
    for label, query in (("eligible", eligible), ("ineligible", wildcard)):
        with enabled_metrics() as metrics:
            database.xquery(query)
            counters = metrics.snapshot()["counters"]
        snapshot[label] = {
            key: counters.get(key, 0)
            for key in ("index.probes", "index.entries_scanned",
                        "docs.scanned", "pathsummary.hits",
                        "queries.xquery")}
    return snapshot


def pytest_sessionfinish(session, exitstatus):
    """Write machine-readable medians to benchmarks/BENCH_results.json.

    One entry per benchmark, keyed ``module::test``, with the median
    wall time in seconds — the number EXPERIMENTS.md quotes and CI can
    diff without parsing pytest-benchmark's table output.  The payload
    also records ``calibration_seconds`` (host-speed probe) and
    ``metrics_snapshot`` (engine work counters) so
    ``scripts/check_regression.py`` can separate engine regressions
    from host variance.  Set ``BENCH_RESULTS_PATH`` to redirect the
    output (CI writes fresh results next to, not over, the committed
    baseline).
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    results = {}
    for bench in bench_session.benchmarks:
        median = _median_seconds(bench)
        if median is None:
            continue
        entry = {
            "median_seconds": median,
            "rounds": getattr(bench.stats, "rounds", None),
        }
        seed = SEED_BASELINES.get(bench.fullname)
        if seed is not None:
            entry["seed_median_seconds"] = seed
            entry["speedup_vs_seed"] = round(seed / median, 2)
        results[bench.fullname] = entry
    if not results:
        return
    out_path = pathlib.Path(
        os.environ.get("BENCH_RESULTS_PATH")
        or pathlib.Path(__file__).with_name("BENCH_results.json"))
    payload = {
        "scale_orders": SCALE,
        "calibration_seconds": _calibration_seconds(),
        "metrics_snapshot": _metrics_snapshot(),
        "benchmarks": results,
    }
    if BENCH_NOTES:
        payload["notes"] = dict(sorted(BENCH_NOTES.items()))
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
