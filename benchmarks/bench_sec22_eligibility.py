"""§2.2 — index eligibility basics (Queries 1 and 2).

Paper claim: Query 1's predicate can be answered by the li_price index
(prefiltering the collection); Query 2's ``@*`` wildcard predicate
cannot, forcing a full scan.  The benchmark shows the gap.
"""

Q1 = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
      "//order[lineitem/@price>190] return $i")
Q2 = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
      "//order[lineitem/@*>190] return $i")


def test_query1_with_index(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(Q1))
    assert result.stats.indexes_used == ["li_price"]


def test_query1_full_scan(benchmark, paper_bench_db):
    result = benchmark(
        lambda: paper_bench_db.xquery(Q1, use_indexes=False))
    assert result.stats.indexes_used == []


def test_query2_wildcard_cannot_use_index(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(Q2))
    assert result.stats.indexes_used == []
