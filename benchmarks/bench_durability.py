"""Durability costs: group commit vs per-record fsync, recovery time.

Two question shapes:

* **Write path** — what does an fsync per committed insert cost, and
  how much of it does group commit (one fsync per 256-record group)
  buy back?  ``test_group_commit_5x_speedup`` pins the subsystem's
  acceptance floor: batch mode must commit at least 5x the rows/sec of
  ``always`` mode.
* **Recovery path** — how does restart time scale with WAL length, and
  how much does a fresh checkpoint save?  The same 400-row database is
  recovered from a 400-record WAL vs from a checkpoint with an empty
  WAL tail.

Medians land in BENCH_results.json under the keys CI requires via
``check_regression.py --require benchmarks/bench_durability.py``.
"""

import time

import pytest

from repro.durability import DurableDatabase
from repro.workload import WorkloadGenerator

ROWS_PER_CALL = 100


def _open(directory, policy: str) -> DurableDatabase:
    database = DurableDatabase(str(directory), fsync_policy=policy)
    if "kv" not in database.tables:
        database.create_table("kv", [("k", "INTEGER"),
                                     ("v", "VARCHAR(64)")])
    return database


def _insert_rows(database, start: int, count: int) -> None:
    for key in range(start, start + count):
        database.insert("kv", {"k": key, "v": f"value-{key}"})


def _committed_inserts(database, count: int) -> None:
    _insert_rows(database, len(database.table("kv").rows), count)
    database.sync()  # commit the tail regardless of policy


@pytest.mark.parametrize("policy", ["always", "batch", "off"])
def test_insert_100_committed(benchmark, tmp_path, policy):
    with _open(tmp_path, policy) as database:
        benchmark.pedantic(
            lambda: _committed_inserts(database, ROWS_PER_CALL),
            rounds=5, iterations=1, warmup_rounds=1)
        assert len(database.table("kv").rows) == 6 * ROWS_PER_CALL


def test_group_commit_5x_speedup(tmp_path):
    """The subsystem's headline number: batch >= 5x always, rows/sec."""
    rates = {}
    for policy in ("always", "batch"):
        with _open(tmp_path / policy, policy) as database:
            _committed_inserts(database, 50)  # warm caches
            start = time.perf_counter()
            _committed_inserts(database, 400)
            rates[policy] = 400 / (time.perf_counter() - start)
    ratio = rates["batch"] / rates["always"]
    print(f"\ncommitted inserts/sec: always={rates['always']:.0f} "
          f"batch={rates['batch']:.0f} ({ratio:.1f}x)")
    assert ratio >= 5.0, (
        f"group commit must be >=5x per-record fsync, got {ratio:.2f}x")


def _churned_orders(directory, checkpoint: bool) -> None:
    """400 XML inserts, then 300 deleted: live state is 100 rows.

    Without a checkpoint, recovery replays all 400 document parses to
    rebuild 100 rows — the WAL remembers the churn; a checkpoint only
    stores the survivors.  This is the scenario where checkpoint
    freshness, not raw state size, sets the restart time.
    """
    generator = WorkloadGenerator(seed=20060912)
    with DurableDatabase(str(directory),
                         fsync_policy="batch") as database:
        database.create_table("orders", [("ordid", "INTEGER"),
                                         ("orddoc", "XML")])
        products = [str(product) for product in range(17, 22)]
        for ordid in range(400):
            database.insert(
                "orders",
                {"ordid": ordid,
                 "orddoc": generator.order_document(
                     ordid, 1000 + ordid % 20, products)})
        database.delete_rows(
            "orders", lambda values: values["ordid"] % 4 != 0)
        if checkpoint:
            database.checkpoint()


@pytest.fixture(scope="module")
def long_wal_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("long-wal")
    _churned_orders(directory, checkpoint=False)
    return directory


@pytest.fixture(scope="module")
def checkpointed_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("checkpointed")
    _churned_orders(directory, checkpoint=True)
    return directory


def _recover(directory) -> int:
    with DurableDatabase(str(directory)) as database:
        assert len(database.table("orders").rows) == 100
        return database.last_recovery.replayed


def test_recover_402_record_wal(benchmark, long_wal_dir):
    replayed = benchmark.pedantic(lambda: _recover(long_wal_dir),
                                  rounds=5, iterations=1,
                                  warmup_rounds=1)
    assert replayed == 402  # create_table + 400 inserts + delete


def test_recover_fresh_checkpoint(benchmark, checkpointed_dir):
    replayed = benchmark.pedantic(lambda: _recover(checkpointed_dir),
                                  rounds=5, iterations=1,
                                  warmup_rounds=1)
    assert replayed == 0
