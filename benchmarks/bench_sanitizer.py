"""Runtime-sanitizer overhead: instrumented RWLock vs the plain path.

The sanitizer hooks sit on the hottest synchronization primitive in
the engine — every statement takes at least one database read-lock
round trip — so this bench pins two claims from the ISSUE:

* **off path is free**: with ``REPRO_SANITIZE`` unset the entire hook
  is ``if _sanitizer.ACTIVE is not None:`` — one module-global load
  and a falsy branch per acquire/release.  Measured directly below
  and asserted to be a small fraction of the lock round trip itself.
* **on path is honest**: with the sanitizer installed every acquire
  walks the lock-order graph and snapshots ``_Held`` state.  The
  overhead ratio is recorded in BENCH_results.json, not hidden — the
  sanitizer is a debug/CI tool, never an always-on cost.

Run under plain pytest-benchmark; the ``sanitize`` CI job also runs it
with ``--benchmark-disable`` as a smoke test that the instrumented
path stays correct under ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import time

from conftest import register_bench_note

from repro.analysis import sanitizer
from repro.core.rwlock import RWLock


def _roundtrips(lock: RWLock, mode: str, count: int) -> None:
    if mode == "read":
        for _ in range(count):
            lock.acquire_read()
            lock.release_read()
    else:
        for _ in range(count):
            lock.acquire_write()
            lock.release_write()


def _per_op_seconds(callable_, count: int, repeats: int = 7) -> float:
    """Min-of-N per-operation wall time — least noisy host estimator."""
    callable_()  # warm-up
    best = min(
        _timed(callable_) for _ in range(repeats))
    return best / count


def _timed(callable_) -> float:
    start = time.perf_counter()
    callable_()
    return time.perf_counter() - start


def test_rwlock_read_roundtrip_sanitizer_off(benchmark):
    lock = RWLock()
    previous, sanitizer.ACTIVE = sanitizer.ACTIVE, None
    try:
        benchmark(lambda: _roundtrips(lock, "read", 100))
    finally:
        sanitizer.ACTIVE = previous


def test_rwlock_read_roundtrip_sanitizer_on(benchmark):
    lock = RWLock()
    with sanitizer.installed() as state:
        benchmark(lambda: _roundtrips(lock, "read", 100))
        assert state.violations() == []
        state.drain()


def test_rwlock_write_roundtrip_sanitizer_off(benchmark):
    lock = RWLock()
    previous, sanitizer.ACTIVE = sanitizer.ACTIVE, None
    try:
        benchmark(lambda: _roundtrips(lock, "write", 100))
    finally:
        sanitizer.ACTIVE = previous


def test_rwlock_write_roundtrip_sanitizer_on(benchmark):
    lock = RWLock()
    with sanitizer.installed() as state:
        benchmark(lambda: _roundtrips(lock, "write", 100))
        assert state.violations() == []
        state.drain()


def test_disabled_flag_check_is_within_noise():
    """The off-path guard must be invisible next to the lock itself.

    Measures (a) the bare ``ACTIVE is not None`` check and (b) a full
    uncontended read round trip with the sanitizer off, both per-op
    min-of-N.  The guard is asserted to cost under 5% of the round
    trip — i.e. inside the run-to-run noise of any lock benchmark —
    and both numbers land in BENCH_results.json ``notes``.
    """
    count = 20_000
    lock = RWLock()
    previous, sanitizer.ACTIVE = sanitizer.ACTIVE, None
    try:
        def flag_checks() -> int:
            hits = 0
            for _ in range(count):
                if sanitizer.ACTIVE is not None:
                    hits += 1
            return hits

        check_seconds = _per_op_seconds(flag_checks, count)
        off_seconds = _per_op_seconds(
            lambda: _roundtrips(lock, "read", 2000), 2000)
        with sanitizer.installed() as state:
            on_seconds = _per_op_seconds(
                lambda: _roundtrips(lock, "read", 2000), 2000)
            assert state.violations() == []
            state.drain()
    finally:
        sanitizer.ACTIVE = previous

    overhead = on_seconds / off_seconds
    register_bench_note("sanitizer.flag_check_ns", round(check_seconds * 1e9, 1))
    register_bench_note("sanitizer.read_roundtrip_off_us",
                        round(off_seconds * 1e6, 3))
    register_bench_note("sanitizer.read_roundtrip_on_us",
                        round(on_seconds * 1e6, 3))
    register_bench_note("sanitizer.on_off_overhead", round(overhead, 2))
    register_bench_note(
        "sanitizer.note",
        f"uncontended read round trip: {off_seconds * 1e6:.2f}us off vs "
        f"{on_seconds * 1e6:.2f}us installed ({overhead:.1f}x, debug/CI "
        f"only); the disabled-path guard is one module-global load "
        f"({check_seconds * 1e9:.0f}ns, {check_seconds / off_seconds:.1%} "
        f"of the round trip) — within noise")

    # The guard must be a rounding error on the lock round trip.
    assert check_seconds < off_seconds * 0.05
    # Sanity: the instrumented path does real work, so it cannot be
    # *faster* than the plain path by more than measurement jitter.
    assert overhead > 0.8
