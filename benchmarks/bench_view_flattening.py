"""Ablation: the §3.6 view-flattening rewrite on/off.

An attribute predicate through a constructed view: unrewritten, every
document is constructed into view items and filtered afterwards;
rewritten, the predicate reaches the base collection and its index.
"""

import pytest

from repro import Database

VIEW_QUERY = (
    "let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
    "/order/lineitem return <item>{ $i/@quantity, "
    "<pid>{ $i/product/id/data(.) }</pid> }</item> "
    "for $j in $view where $j/@quantity > 8 return $j")


@pytest.fixture(scope="module")
def view_db() -> Database:
    database = Database()
    database.create_table("orders", [("orddoc", "XML")])
    for index in range(300):
        quantity = (index % 9) + 1
        database.insert("orders", {
            "orddoc": f"<order><lineitem quantity='{quantity}'>"
                      f"<product><id>P{index % 40}</id></product>"
                      f"</lineitem></order>"})
    database.execute("CREATE INDEX li_qty ON orders(orddoc) "
                     "USING XMLPATTERN '//lineitem/@quantity' AS DOUBLE")
    return database


def test_view_query_unrewritten(benchmark, view_db):
    result = benchmark(lambda: view_db.xquery(VIEW_QUERY))
    assert result.stats.indexes_used == []


def test_view_query_flattened(benchmark, view_db):
    result = benchmark(
        lambda: view_db.xquery(VIEW_QUERY, rewrite_views=True))
    assert result.stats.indexes_used == ["li_qty"]


def test_flattening_preserves_results(view_db):
    plain = view_db.xquery(VIEW_QUERY)
    rewritten = view_db.xquery(VIEW_QUERY, rewrite_views=True)
    assert plain.serialize() == rewritten.serialize()
