"""§3.9 — attributes and elements (Tip 12).

Paper claim: ``//*`` and ``//node()`` index no attribute nodes; the
broad ``//@*`` index covers a numeric predicate on any attribute.
"""

import pytest

from conftest import build_db


@pytest.fixture(scope="module")
def attr_db():
    database = build_db()
    database.drop_index("li_price")   # force reliance on broad indexes
    database.drop_index("o_custid")
    database.execute("CREATE INDEX star ON orders(orddoc) "
                     "USING XMLPATTERN '//*' AS VARCHAR")
    database.execute("CREATE INDEX all_attrs ON orders(orddoc) "
                     "USING XMLPATTERN '//@*' AS DOUBLE")
    return database


QUERY = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
         "//order[lineitem/@price > 190] return $o")


def test_broad_attribute_index_serves_any_attribute(benchmark, attr_db):
    result = benchmark(lambda: attr_db.xquery(QUERY))
    assert result.stats.indexes_used == ["all_attrs"]
    baseline = attr_db.xquery(QUERY, use_indexes=False)
    assert result.serialize() == baseline.serialize()


def test_star_index_contains_no_attributes(attr_db):
    star = attr_db.xml_indexes["star"]
    kinds = {entry.path[-1].kind for _key, entry in star.tree.items()}
    assert "attribute" not in kinds


def test_quantity_predicate_also_covered(benchmark, attr_db):
    query = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
             "//order[lineitem/@quantity > 8] return $o")
    result = benchmark(lambda: attr_db.xquery(query))
    assert result.stats.indexes_used == ["all_attrs"]
