"""§3.7 — namespaces (Query 28).

Paper claim: indexes whose patterns omit namespace declarations store
only empty-namespace nodes and cannot serve namespace-qualified
queries; declared or wildcard namespaces fix it.
"""

import pytest

from conftest import build_db

ORDER_NS = "http://ournamespaces.com/order"

QUERY = (
    f'declare default element namespace "{ORDER_NS}"; '
    'for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
    "/order[lineitem/@price > 190] return $ord")


@pytest.fixture(scope="module")
def ns_db():
    database = build_db(namespace=ORDER_NS)
    # The pitfall index: no namespace declarations.
    database.execute("CREATE INDEX li_plain ON orders(orddoc) "
                     "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")
    # The fixes (Tip 10): declared namespace / wildcard / attribute-only.
    database.execute(
        "CREATE INDEX li_declared ON orders(orddoc) USING XMLPATTERN "
        f"'declare default element namespace \"{ORDER_NS}\"; "
        "//lineitem/@price' AS DOUBLE")
    database.execute("CREATE INDEX li_wild ON orders(orddoc) "
                     "USING XMLPATTERN '//*:lineitem/@price' AS DOUBLE")
    return database


def test_namespaceless_index_is_empty_and_unused(benchmark, ns_db):
    assert len(ns_db.xml_indexes["li_plain"]) == 0

    def run():
        return ns_db.xquery(QUERY, use_indexes=False)
    result = benchmark(run)
    assert result.stats.indexes_used == []


def test_declared_namespace_index_used(benchmark, ns_db):
    result = benchmark(lambda: ns_db.xquery(QUERY))
    assert set(result.stats.indexes_used) <= {"li_declared", "li_wild"}
    assert result.stats.indexes_used


def test_results_agree(ns_db):
    fast = ns_db.xquery(QUERY)
    slow = ns_db.xquery(QUERY, use_indexes=False)
    assert fast.serialize() == slow.serialize()
