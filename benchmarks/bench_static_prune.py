"""Static-analysis pruning: a statically-empty branch costs nothing.

The abstract interpreter consults the per-document path summaries
before planning; a filtering predicate whose path occurs in *no*
stored document is provably empty, so the planner answers it without
touching a single document.  The honest comparison is against the same
query with the whole optimizer layer disabled (``use_indexes=False``),
which must walk all ``SCALE`` documents to discover the same empty
result.  A third timing pins the overhead the static pass adds to a
query it cannot prune.
"""

from conftest import SCALE

EMPTY_PATH_QUERY = (
    "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
    "//order[warehouse/code = 'EAST-7'] return $i")

LIVE_QUERY = (
    "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
    "//order[lineitem/@price>190] return $i")


def test_statically_empty_branch_pruned(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(EMPTY_PATH_QUERY))
    assert len(result) == 0
    assert result.stats.docs_scanned == 0
    assert any("static prune" in note for note in result.stats.plan_notes)


def test_statically_empty_branch_full_scan(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(
        EMPTY_PATH_QUERY, use_indexes=False))
    assert len(result) == 0
    assert result.stats.docs_scanned == SCALE


def test_static_analysis_overhead_on_live_query(benchmark,
                                                paper_bench_db):
    """The static pass runs on every planned query; on a query it
    cannot prune it must stay in the noise of the index probe."""
    result = benchmark(lambda: paper_bench_db.xquery(LIVE_QUERY))
    assert len(result) > 0
    assert "li_price" in result.stats.indexes_used


def test_prune_agrees_with_full_scan(paper_bench_db):
    """Definition-1 style soundness check at benchmark scale."""
    pruned = paper_bench_db.xquery(EMPTY_PATH_QUERY)
    scanned = paper_bench_db.xquery(EMPTY_PATH_QUERY, use_indexes=False)
    assert pruned.serialize() == scanned.serialize() == []
