"""§3.8 — text nodes (Query 29).

Paper claim: a ``//price`` element index cannot answer a
``price/text()`` predicate (mixed content diverges); an aligned
``//price/text()`` index can.
"""

QUERY = ('for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
         "/order[lineitem/price/text() > 190] return $ord")
ELEMENT_QUERY = ('for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
                 "/order[lineitem/price > 190] return $ord")


def test_text_predicate_with_aligned_index(benchmark, element_price_db):
    result = benchmark(lambda: element_price_db.xquery(QUERY))
    # Numeric comparison — the varchar text index is type-incompatible,
    # so this measures the honest fallback: nothing eligible.
    assert "e_price" not in result.stats.indexes_used


def test_element_predicate_with_element_index(benchmark,
                                              element_price_db):
    result = benchmark(lambda: element_price_db.xquery(ELEMENT_QUERY))
    assert result.stats.indexes_used == ["e_price"]


def test_string_text_predicate_uses_text_index(benchmark,
                                               element_price_db):
    query = ('for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
             '/order[lineitem/price/text() = "99.50"] return $ord')
    result = benchmark(lambda: element_price_db.xquery(query))
    assert result.stats.indexes_used == ["e_price_text"]
    baseline = element_price_db.xquery(query, use_indexes=False)
    assert result.serialize() == baseline.serialize()


def test_mixed_content_divergence(element_price_db):
    """Documents where string-value and text() differ exist at this
    scale, which is exactly why the indexes must not be swapped."""
    diverging = element_price_db.xquery(
        "for $p in db2-fn:xmlcolumn('ORDERS.ORDDOC')//price"
        "[text()[1] != string(.)] return $p",
        use_indexes=False)
    assert len(diverging) > 0
