"""Benchmarks for the structural acceleration layer itself.

Covers the three costs the layer introduces or removes:

* building a per-document path summary at ingest (paid once per
  document, amortized over every later query/index build);
* answering a ``//``-style pattern from the summary (the evaluator's
  fast path) and a whole-database cardinality probe (the planner's);
* compiling a query through the LRU cache (hit path — what repeated
  queries, the planner, and the SQL executor actually pay).
"""

from repro.core.querycache import clear_cache, compile_query
from repro.core.patterns import parse_xmlpattern
from repro.storage.pathsummary import (PatternMatcher, build_summary,
                                       get_summary)
from repro.workload import WorkloadGenerator
from repro.xmlio import parse_document

from conftest import build_db


def _order_document():
    generator = WorkloadGenerator(seed=7)
    return parse_document(generator.order_document(
        1, 1, [f"P{i:05d}" for i in range(10)]))


def test_summary_build(benchmark):
    document = _order_document()
    summary = benchmark(lambda: build_summary(document))
    assert summary.node_count > 0


def test_summary_pattern_lookup(benchmark):
    document = _order_document()
    build_summary(document)
    summary = get_summary(document)
    matcher = PatternMatcher(parse_xmlpattern("//lineitem/@price"))

    nodes = benchmark(lambda: summary.nodes_for(matcher))
    assert nodes


def test_database_path_cardinality(benchmark, paper_bench_db):
    count = benchmark(lambda: paper_bench_db.path_cardinality(
        "orders", "orddoc", "//lineitem/@price"))
    assert count > 0


def test_compiled_query_cache_hit(benchmark):
    query = ("for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
             "where $ord/lineitem/@price > 190 return $ord")
    clear_cache()
    compile_query(query)  # warm: later calls measure the hit path

    compiled = benchmark(lambda: compile_query(query))
    assert compiled.module.body is not None


def test_index_build_via_summary(benchmark):
    """Index build over summarized documents (one NFA run per distinct
    path shape instead of one per node)."""
    database = build_db(orders=200)
    counter = iter(range(10_000))

    def build():
        name = f"bench_sum_idx_{next(counter)}"
        index = database.create_xml_index(
            name, "orders", "orddoc", "//lineitem/product/id", "VARCHAR")
        database.drop_index(name)
        return index
    index = benchmark(build)
    assert len(index) > 0
