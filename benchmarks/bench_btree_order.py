"""Ablation: B+Tree node order (fan-out).

The index substrate's one tunable.  Small orders stress the split/merge
machinery; large orders approach a sorted array per node.  Probe cost
is O(log_order n) descents with O(order) bisects — flat across sane
values, which is why the engine defaults to 64 and moves on.
"""

import random

import pytest

from repro.storage.btree import BPlusTree

KEYS = random.Random(11).sample(range(200_000), 20_000)


@pytest.fixture(scope="module", params=[8, 64, 256])
def loaded_tree(request):
    tree = BPlusTree(order=request.param)
    for key in KEYS:
        tree.insert(key, key)
    return tree


@pytest.mark.parametrize("order", [8, 64, 256])
def test_insert_20k(benchmark, order):
    def build():
        tree = BPlusTree(order=order)
        for key in KEYS:
            tree.insert(key, key)
        return tree
    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(tree) == len(KEYS)


def test_point_lookups(benchmark, loaded_tree):
    probes = KEYS[::100]

    def lookup():
        return sum(len(loaded_tree.get(key)) for key in probes)
    found = benchmark(lookup)
    assert found == len(probes)


def test_range_scan_10pct(benchmark, loaded_tree):
    result = benchmark(
        lambda: sum(1 for _ in loaded_tree.scan(10_000, 30_000)))
    assert result > 0
