"""Benchmarks for the columnar node store and the buffer pool.

Three questions, answered with numbers in BENCH_results.json:

* how much faster is a descendant-axis sweep over the (pre, post,
  level) columns than the recursive object-graph walk it replaced
  (``columnar.axis_scan_speedup`` note);
* what does re-materializing an evicted document from its columns cost
  relative to re-parsing its canonical text (the buffer pool's reload
  path — ``columnar.materialize_vs_reparse`` note);
* how much peak RSS does a capped buffer pool actually save on an
  ingest-and-query workload that overflows the budget
  (``bufferpool.peak_rss_reduction`` note, measured in subprocesses so
  each configuration owns its high-water mark).
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

from repro.storage.columnar import ColumnStore
from repro.xmlio import parse_document
from repro.xmlio.serializer import serialize

from conftest import build_db, register_bench_note

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _big_document():
    # Deterministic ~900-node order: 150 lineitems with price and
    # quantity attributes, product ids, and text content.
    body = "".join(
        f"<lineitem price=\"{(i * 7) % 200}\" quantity=\"{i % 9 + 1}\">"
        f"<product><id>P{i:05d}</id></product></lineitem>"
        for i in range(150))
    return parse_document(
        f"<order><custid>1001</custid>{body}</order>")


def _median(callable_, rounds: int = 9) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def test_columnar_descendant_scan(benchmark):
    document = _big_document()
    store = ColumnStore.from_document(document)

    nodes = benchmark(lambda: store.descendants_or_self(document))
    assert len(nodes) > 200


def test_object_graph_descendant_walk(benchmark):
    document = _big_document()

    nodes = benchmark(lambda: list(document.descendants_or_self()))
    assert len(nodes) > 200


def test_axis_scan_speedup_note():
    """Record the columnar-vs-object-walk ratio the two medians imply."""
    document = _big_document()
    store = ColumnStore.from_document(document)
    walk = _median(lambda: list(document.descendants_or_self()))
    scan = _median(lambda: store.descendants_or_self(document))
    speedup = walk / scan
    register_bench_note("columnar.axis_scan_speedup", round(speedup, 2))
    register_bench_note(
        "columnar.note",
        f"descendant sweep over (pre, post) columns vs recursive "
        f"object walk on a {len(store.post)}-node order document: "
        f"{speedup:.2f}x")
    # The range scan must never lose to the recursive walk.
    assert speedup > 1.0, (
        f"columnar descendant scan slower than the object walk "
        f"({speedup:.2f}x)")


def test_materialize_from_columns(benchmark):
    document = _big_document()
    payload = ColumnStore.from_document(document).to_payload()

    rebuilt = benchmark(
        lambda: ColumnStore.from_payload(payload).materialize())
    assert serialize(rebuilt) == serialize(document)


def test_materialize_vs_reparse_note():
    """The buffer pool's reload path against naive re-parsing."""
    document = _big_document()
    text = serialize(document)
    payload = ColumnStore.from_document(document).to_payload()
    reparse = _median(lambda: parse_document(text))
    materialize = _median(
        lambda: ColumnStore.from_payload(payload).materialize())
    register_bench_note("columnar.materialize_vs_reparse",
                        round(reparse / materialize, 2))


_RSS_SCRIPT = """
import resource, sys
from repro import Database
from repro.workload import OrderProfile, populate_paper_schema

database = Database()
populate_paper_schema(
    database, orders=150, customers=15, products=20,
    profile=OrderProfile(max_lineitems=80, price_low=1, price_high=200),
    seed=3, with_indexes=True)
result = database.xquery(
    "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 190])")
assert len(result) == 1
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _peak_rss_kb(budget: int | None) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if budget is None:
        env.pop("REPRO_BUFFER_POOL_BYTES", None)
    else:
        env["REPRO_BUFFER_POOL_BYTES"] = str(budget)
    output = subprocess.run(
        [sys.executable, "-c", _RSS_SCRIPT], env=env, check=True,
        capture_output=True, text=True, cwd=str(REPO_ROOT)).stdout
    return int(output.strip().splitlines()[-1])


def test_peak_rss_reduction_under_cap():
    """Ingest + query 150 wide orders with and without a 256 KiB
    budget; the capped run must hold a lower high-water mark."""
    uncapped = _peak_rss_kb(None)
    capped = _peak_rss_kb(256 * 1024)
    reduction = 1.0 - capped / uncapped
    register_bench_note("bufferpool.peak_rss_uncapped_kb", uncapped)
    register_bench_note("bufferpool.peak_rss_capped_kb", capped)
    register_bench_note("bufferpool.peak_rss_reduction",
                        round(reduction, 3))
    register_bench_note(
        "bufferpool.note",
        f"150-wide-order ingest+query: peak RSS {uncapped} KB uncapped "
        f"vs {capped} KB with a 256 KiB budget "
        f"({reduction * 100:.1f}% lower high-water mark)")
    assert capped < uncapped, (
        f"capped pool did not lower peak RSS "
        f"({capped} KB vs {uncapped} KB)")


def test_query_latency_under_eviction_churn(benchmark):
    """The price a capped pool pays: every sweep re-materializes."""
    database = build_db(orders=60)
    database.buffer_pool.budget_bytes = 1  # churn: nothing stays
    for table in database.tables.values():
        for row in table.rows:
            for value in row.values.values():
                if hasattr(value, "_pool"):
                    value._pool = database.buffer_pool
                    database.buffer_pool.admit(value)

    result = benchmark(lambda: database.xquery(
        "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem)",
        use_indexes=False))
    assert len(result) == 1
