"""Micro-benchmarks: substrate costs.

These quantify the pieces the system-level numbers are made of —
B+Tree operations, XML parsing, index build, query compilation, and
the eligibility analysis itself (which must be cheap enough to run on
every query).
"""

import random

import pytest

from repro.core import analyze_eligibility
from repro.planner.plan import execute_xquery
from repro.storage.btree import BPlusTree
from repro.workload import WorkloadGenerator
from repro.xmlio import parse_document
from repro.xquery.parser import parse_xquery

from conftest import build_db


def test_btree_insert_10k(benchmark):
    values = list(range(10_000))
    random.Random(5).shuffle(values)

    def build():
        tree = BPlusTree(order=64)
        for value in values:
            tree.insert(value, value)
        return tree
    tree = benchmark(build)
    assert len(tree) == 10_000


def test_btree_range_scan(benchmark):
    tree = BPlusTree(order=64)
    for value in range(10_000):
        tree.insert(value, value)
    result = benchmark(lambda: sum(1 for _ in tree.scan(2500, 7500)))
    assert result == 5001


def test_xml_parse_order_document(benchmark):
    generator = WorkloadGenerator(seed=3)
    text = generator.order_document(
        1, 1, [f"P{i:05d}" for i in range(10)])

    document = benchmark(lambda: parse_document(text))
    assert document.root_element is not None


def test_xquery_parse(benchmark):
    query = ("for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
             "let $price := $ord/lineitem/@price "
             "where $price > 100 "
             "return <result>{$ord/lineitem}</result>")
    module = benchmark(lambda: parse_xquery(query))
    assert module.body is not None


def test_index_build_cost(benchmark):
    database = build_db(orders=200)

    counter = iter(range(10_000))

    def build():
        name = f"bench_idx_{next(counter)}"
        index = database.create_xml_index(
            name, "orders", "orddoc", "//lineitem/@price", "DOUBLE")
        database.drop_index(name)
        return index
    index = benchmark(build)
    assert len(index) > 0


def test_eligibility_analysis_overhead(benchmark, paper_bench_db):
    query = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
             "//order[lineitem/@price>190] return $i")
    report = benchmark(lambda: analyze_eligibility(paper_bench_db, query))
    assert report.is_index_eligible("li_price")


# ---------------------------------------------------------------------------
# Descendant-heavy query evaluation (structural acceleration layer)
# ---------------------------------------------------------------------------
# These run with use_indexes=False on purpose: they measure raw XQuery
# evaluation, where `//` chains are answered by per-document path
# summaries instead of full-tree walks.  See EXPERIMENTS.md for the
# seed-vs-accelerated numbers.

def test_xquery_descendant_price_scan(benchmark, paper_bench_db):
    query = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem/@price"
    result = benchmark(
        lambda: execute_xquery(paper_bench_db, query, use_indexes=False))
    assert len(result.items) > 0


def test_xquery_descendant_product_ids(benchmark, paper_bench_db):
    query = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//product/id"
    result = benchmark(
        lambda: execute_xquery(paper_bench_db, query, use_indexes=False))
    assert len(result.items) > 0


def test_xquery_descendant_predicate_filter(benchmark, paper_bench_db):
    query = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
             "//order[lineitem/@price>190]")
    result = benchmark(
        lambda: execute_xquery(paper_bench_db, query, use_indexes=False))
    assert len(result.items) > 0


def test_xquery_rooted_path(benchmark, paper_bench_db):
    query = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem/product/id"
    result = benchmark(
        lambda: execute_xquery(paper_bench_db, query, use_indexes=False))
    assert len(result.items) > 0
