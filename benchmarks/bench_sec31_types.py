"""§3.1 — matching index and predicate data types (Queries 3 and 4).

Paper claim: a string literal ("190") predicate cannot use the DOUBLE
index but can use a VARCHAR one; casted joins (Query 4) enable double
indexes on both sides.
"""

NUMERIC = ('for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
           "//order[lineitem/@price > 190] return $i")
STRING = ('for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
          '//order[lineitem/@price > "190" ] return $i')
CAST_JOIN = (
    'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
    'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
    "where $i/custid/xs:double(.) = $j/id/xs:double(.) "
    "return $i")


def test_numeric_predicate_double_index(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(NUMERIC))
    assert result.stats.indexes_used == ["li_price"]


def test_string_predicate_uses_varchar_index(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(STRING))
    assert result.stats.indexes_used == ["li_price_str"]


def test_string_predicate_without_varchar_index_scans(benchmark,
                                                      paper_bench_db):
    def run():
        # Disable indexes to emulate "only li_price exists": the DOUBLE
        # index is ineligible so a full scan happens either way.
        return paper_bench_db.xquery(STRING, use_indexes=False)
    benchmark(run)


def test_casted_join(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(CAST_JOIN))
    baseline = paper_bench_db.xquery(CAST_JOIN, use_indexes=False)
    assert result.serialize() == baseline.serialize()
