"""§3.4 — let clauses and constructors (Queries 17–22).

Paper claims: for-bindings, where-guarded lets, and bare bind-outs can
use indexes; plain lets and constructor-embedded predicates cannot.
"""

Q17 = ("for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC') "
       "for $item in $doc//lineitem[@price > 190] "
       "return <result>{$item}</result>")
Q18 = ("for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC') "
       "let $item:= $doc//lineitem[@price > 190] "
       "return <result>{$item}</result>")
Q19 = ("for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
       "return <result>{$ord/lineitem[@price > 190]}</result>")
Q21 = ("for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
       "let $price := $ord/lineitem/@price where $price > 190 "
       "return <result>{$ord/lineitem}</result>")
Q22 = ("for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order "
       "return $ord/lineitem[@price > 190]")


def test_query17_for_binding_indexed(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(Q17))
    assert result.stats.indexes_used == ["li_price"]


def test_query18_let_binding_full_scan(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(Q18))
    assert result.stats.indexes_used == []
    assert len(result) == len(paper_bench_db.table("orders"))


def test_query19_constructor_full_scan(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(Q19))
    assert result.stats.indexes_used == []


def test_query21_let_with_where_indexed(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(Q21))
    assert result.stats.indexes_used == ["li_price"]


def test_query22_bindout_indexed(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(Q22))
    assert result.stats.indexes_used == ["li_price"]
