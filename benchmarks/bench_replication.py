"""Process-parallel execution vs serial: does escaping the GIL pay?

The thread-based partition executor measured **0.62x** on this
workload — on a GIL-bound interpreter, fan-out overhead with zero
added compute.  This suite measures the process backend, which holds
the paper's serving-layer promise only when real cores exist:

* ``test_serial_descendant_filter`` / ``test_process_pool_*`` — the
  same descendant-heavy predicate query, serial on the primary vs
  fanned across 2 log-shipped replica processes.  Indexes are
  disabled for the pair so both sides evaluate every document — the
  honest GIL-escape comparison (an index prefilter would shrink the
  work until IPC dominates either way).
* ``test_pool_bootstrap_and_shutdown`` — the one-time cost a pool
  amortizes: checkpoint encode + ship + replica recovery × 2 workers.
* ``test_speedup_process_pool_vs_serial`` — the headline ratio,
  measured with raw perf_counter medians and recorded in
  BENCH_results.json under ``notes``.  On hosts with >= 2 CPUs the
  pool must be >= 2x the serial median; on a single-core host (CI
  containers included) the same measurement documents the *overhead*
  instead — processes cannot beat serial without cores, and
  pretending otherwise would be the Section 2 pitfall all over again.

Worker count is pinned to 2 everywhere so results are comparable
across hosts.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from conftest import build_db, register_bench_note

PROCESSES = 2

#: Descendant-heavy, low-selectivity: every document does real
#: per-document evaluation work, the shape process partitioning is for.
QUERY = ("for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
         "//order[lineitem/@price > 100] "
         "return <m>{$o/custid/text()}</m>")


@pytest.fixture(scope="module")
def repl_db():
    return build_db(orders=300)


@pytest.fixture(scope="module")
def repl_pool(repl_db):
    with repl_db.process_pool(processes=PROCESSES) as pool:
        pool.xquery(QUERY, use_indexes=False)  # warm worker caches
        yield pool


def test_serial_descendant_filter(benchmark, repl_db):
    result = benchmark(lambda: repl_db.xquery(QUERY, use_indexes=False))
    assert len(result) > 0


def test_process_pool_descendant_filter(benchmark, repl_db, repl_pool):
    result = benchmark(
        lambda: repl_pool.xquery(QUERY, use_indexes=False))
    assert result.serialized() == \
        repl_db.xquery(QUERY, use_indexes=False).serialized()


def test_pool_bootstrap_and_shutdown(benchmark, repl_db):
    def bootstrap():
        with repl_db.process_pool(processes=PROCESSES) as pool:
            return pool.workers_alive()

    alive = benchmark.pedantic(bootstrap, rounds=3, iterations=1)
    assert alive == PROCESSES


def _median(callable_, rounds: int) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_speedup_process_pool_vs_serial(repl_db, repl_pool):
    """The headline number, with the single-core truth told."""
    cpus = os.cpu_count() or 1
    serial = _median(
        lambda: repl_db.xquery(QUERY, use_indexes=False), rounds=7)
    pooled = _median(
        lambda: repl_pool.xquery(QUERY, use_indexes=False), rounds=7)
    speedup = serial / pooled
    register_bench_note("replication.host_cpus", cpus)
    register_bench_note("replication.speedup_vs_serial",
                        round(speedup, 2))
    if cpus >= 2:
        register_bench_note(
            "replication.note",
            f"{PROCESSES}-process pool vs serial on {cpus} CPUs: "
            f"{speedup:.2f}x (gate: >= 2x)")
        assert speedup >= 2.0, (
            f"process pool must be >= 2x serial on a {cpus}-CPU host, "
            f"measured {speedup:.2f}x")
    else:
        register_bench_note(
            "replication.note",
            f"single-core host: {speedup:.2f}x — process fan-out "
            f"cannot beat serial without a second CPU; the number "
            f"records IPC+serialization overhead, not a win. The "
            f">= 2x gate applies only on multi-core hosts.")
        # Sanity floor: even paying full IPC overhead on one core,
        # the pool must stay within an order of magnitude of serial.
        assert speedup > 0.1, (
            f"pool overhead pathological: {speedup:.3f}x of serial")
