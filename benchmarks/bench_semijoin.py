"""Semi-join exploitation for pure-XQuery joins (Query 4).

The paper's Query 4 makes both double indexes eligible via casts; here
the engine exploits them with a two-pass semi-join prefilter.  The gap
vs. the nested-loop scan grows with the non-joining fraction.
"""

import pytest

from repro import Database

QUERY4 = ('for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
          'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
          "where $i/custid/xs:double(.) = $j/id/xs:double(.) "
          "return $i")


@pytest.fixture(scope="module")
def sparse_join_db() -> Database:
    """200 orders, only 10 % of which reference an existing customer."""
    database = Database()
    database.create_table("orders", [("orddoc", "XML")])
    database.create_table("customer", [("cdoc", "XML")])
    for index in range(200):
        custid = index if index % 10 == 0 else 10_000 + index
        database.insert("orders", {
            "orddoc": f"<order><custid>{custid}</custid>"
                      f"<lineitem price='{index % 97}'/></order>"})
    for cid in range(0, 200, 10):
        database.insert("customer", {
            "cdoc": f"<customer><id>{cid}</id><name>c{cid}</name>"
                    f"</customer>"})
    database.create_xml_index("o_custid", "orders", "orddoc",
                              "//custid", "DOUBLE")
    database.create_xml_index("c_id", "customer", "cdoc",
                              "/customer/id", "DOUBLE")
    return database


def test_query4_with_semijoin(benchmark, sparse_join_db):
    result = benchmark(lambda: sparse_join_db.xquery(QUERY4))
    assert set(result.stats.indexes_used) == {"o_custid", "c_id"}
    assert len(result) == 20


def test_query4_nested_loop_scan(benchmark, sparse_join_db):
    result = benchmark(
        lambda: sparse_join_db.xquery(QUERY4, use_indexes=False))
    assert result.stats.indexes_used == []
    assert len(result) == 20


def test_semijoin_agrees_with_scan(sparse_join_db):
    fast = sparse_join_db.xquery(QUERY4)
    slow = sparse_join_db.xquery(QUERY4, use_indexes=False)
    assert fast.serialize() == slow.serialize()
