"""What the autopilot buys: cold-scan latency vs post-autopilot probes.

A cold database (no indexes) pays the §3.1 full-scan cliff on every
eligible predicate.  The autopilot watches that workload, derives the
same DDL a DBA would write, and builds it online.  This suite measures
both sides of that loop at benchmark scale:

* ``test_cold_eligible_scan`` — the eligible price predicate on the
  cold database: every document is scanned.
* ``test_autopilot_indexed_probe`` — the same query after the
  autopilot observed one pass and applied its advice; the plan must
  probe an auto-built index.
* ``test_convergence_speedup`` — the headline number, recorded in
  BENCH_results.json under ``notes``: the measured median speedup of
  the eligible query after autopilot DDL, plus byte-identity against a
  manually-indexed oracle.  An honest caveat is recorded if the host
  prevents the expected >=2x margin.
"""

from __future__ import annotations

import statistics
import time

import pytest

from conftest import PRICE_BOUND, SCALE, register_bench_note

from repro import Database
from repro.workload import OrderProfile, populate_paper_schema
from repro.xmlio.serializer import serialize

#: Index-eligible price predicate (~5% selectivity at PRICE_BOUND).
ELIGIBLE = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            f"//order[lineitem/@price>{PRICE_BOUND}] return $i")

#: A second eligible shape so the autopilot sees a small mix, not a
#: single statement.
POINT = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
         "//order[custid=17] return $i")


def build_cold_db(orders: int = SCALE, seed: int = 1) -> Database:
    """Same documents as conftest.build_db, but with no indexes —
    the state the autopilot is supposed to repair."""
    database = Database()
    profile = OrderProfile(max_lineitems=4, price_low=1, price_high=200,
                           string_price_fraction=0.05)
    populate_paper_schema(database, orders=orders,
                          customers=max(10, orders // 10), products=20,
                          profile=profile, seed=seed, with_indexes=False)
    return database


@pytest.fixture(scope="module")
def cold_db() -> Database:
    return build_cold_db()


@pytest.fixture(scope="module")
def piloted_db() -> Database:
    """Cold database after one observed pass and ``pilot.apply()``."""
    database = build_cold_db()
    pilot = database.autopilot()
    for query in (ELIGIBLE, POINT):
        database.xquery(query)
    built = pilot.apply()
    assert built, "autopilot built nothing from the observed workload"
    return database


def _median_of(database, query, repeats: int = 9) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        database.xquery(query)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_cold_eligible_scan(benchmark, cold_db):
    result = benchmark(lambda: cold_db.xquery(ELIGIBLE))
    assert len(result) > 0
    assert not result.stats.indexes_used


def test_autopilot_indexed_probe(benchmark, piloted_db):
    result = benchmark(lambda: piloted_db.xquery(ELIGIBLE))
    assert len(result) > 0
    assert result.stats.indexes_used, \
        "eligible query ignored the auto-built index"


def test_convergence_speedup(cold_db, piloted_db):
    """Headline: autopilot DDL makes the eligible query >=2x faster
    while answering byte-identically to a manually-indexed oracle."""
    oracle = build_cold_db()
    oracle.create_xml_index("li_price", "orders", "orddoc",
                            "//lineitem/@price", "DOUBLE")
    assert [serialize(item)
            for item in piloted_db.xquery(ELIGIBLE).items] == \
        [serialize(item) for item in oracle.xquery(ELIGIBLE).items]

    cold = _median_of(cold_db, ELIGIBLE)
    piloted = _median_of(piloted_db, ELIGIBLE)
    speedup = cold / piloted
    register_bench_note("autopilot.eligible_query_speedup",
                        round(speedup, 2))
    register_bench_note(
        "autopilot.speedup_note",
        f"median over 9 runs at {SCALE} orders; cold full scan vs "
        "post-autopilot index probe on the same in-process database"
        + ("" if speedup >= 2.0 else
           "; below the expected 2x on this host — single-core CI "
           "noise dominates at this scale, the probe still scans "
           "fewer documents (see metrics_snapshot)"))
    # The honest floor: the index must win, even on a noisy host.
    assert speedup > 1.0, \
        f"autopilot DDL did not speed up the eligible query ({speedup:.2f}x)"
