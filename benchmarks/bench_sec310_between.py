"""§3.10 — between predicates (Query 30).

Paper claim: a singleton-guaranteed pair collapses to one index range
scan; an existential pair needs two scans ANDed; both beat a full scan.
"""

SINGLE = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
          "//order[lineitem[@price>150 and @price<160]] return $i")
EXISTENTIAL = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
               "//lineitem[price > 150 and price < 160]")
SELF_AXIS = ("db2-fn:xmlcolumn('ORDERS.ORDDOC')"
             "//lineitem[price/data()[. > 150 and . < 160]]")


def test_attribute_between_single_scan(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.xquery(SINGLE))
    assert result.stats.index_scans == 1
    assert result.stats.indexes_used == ["li_price"]


def test_attribute_between_full_scan(benchmark, paper_bench_db):
    result = benchmark(
        lambda: paper_bench_db.xquery(SINGLE, use_indexes=False))
    assert result.stats.index_scans == 0


def test_existential_pair_two_scans(benchmark, element_price_db):
    result = benchmark(lambda: element_price_db.xquery(EXISTENTIAL))
    assert result.stats.index_scans == 2
    baseline = element_price_db.xquery(EXISTENTIAL, use_indexes=False)
    assert result.serialize() == baseline.serialize()


def test_self_axis_between_single_scan(benchmark, element_price_db):
    result = benchmark(lambda: element_price_db.xquery(SELF_AXIS))
    assert result.stats.index_scans == 1
    baseline = element_price_db.xquery(SELF_AXIS, use_indexes=False)
    assert result.serialize() == baseline.serialize()
