"""Collection-size scaling: why document prefiltering is "the main way
to improve performance on the workloads we observed" (§2.1).

Index-assisted cost tracks the number of *matching* documents; full
scans track the collection size.
"""

import pytest

from conftest import build_db

QUERY = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
         "//order[lineitem/@price > 198] return $i")

_DBS = {}


def _db(scale: int):
    if scale not in _DBS:
        _DBS[scale] = build_db(orders=scale, seed=scale)
    return _DBS[scale]


@pytest.mark.parametrize("scale", [100, 400, 1600])
def test_indexed_query_scaling(benchmark, scale):
    database = _db(scale)
    result = benchmark(lambda: database.xquery(QUERY))
    assert result.stats.indexes_used == ["li_price"]
    assert result.stats.docs_scanned < scale / 4


@pytest.mark.parametrize("scale", [100, 400, 1600])
def test_full_scan_scaling(benchmark, scale):
    database = _db(scale)
    result = benchmark(lambda: database.xquery(QUERY,
                                               use_indexes=False))
    assert result.stats.docs_scanned == scale
