"""The network front door's toll: socket round-trips vs in-process calls.

``repro serve`` adds framing, JSON encode/decode, an admission queue,
and a thread-pool hop to every query.  This suite measures what that
costs against the same database called directly:

* ``test_inprocess_point_query`` / ``test_server_point_query`` — a
  cheap indexed point query, where the protocol overhead is the
  dominant term.  The gap between these two medians IS the per-query
  toll of the front door.
* ``test_server_prepared_point_query`` — the same query through a
  prepared handle; preparation pins the compiled plan, so this must
  not be slower than the ad-hoc socket path.
* ``test_server_scan_query`` — a descendant scan where evaluation
  dominates; the socket toll should shrink into the noise here.
* ``test_overhead_ratio`` — the headline numbers, recorded in
  BENCH_results.json under ``notes``: round-trip overhead in
  milliseconds and the ratio on cheap vs expensive queries.

The server runs in-process via ``ServerThread`` (own event loop, real
TCP socket on loopback) so the suite needs no subprocess management
and the numbers are pure protocol + dispatch cost, not process boot.
"""

from __future__ import annotations

import statistics
import time

import pytest

from conftest import build_db, register_bench_note

from repro.server import ServerClient, ServerThread

#: Cheap, index-eligible point query: protocol cost dominates.
POINT_QUERY = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
               "//order[lineitem/@price>190] return $i/custid")

#: Descendant scan over every document: evaluation dominates.
SCAN_QUERY = ("count(for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
              "//order, $l in $o//lineitem return $l)")


@pytest.fixture(scope="module")
def server_db():
    return build_db(orders=120)


@pytest.fixture(scope="module")
def served(server_db):
    with ServerThread(server_db, port=0) as (host, port):
        with ServerClient(host, port) as client:
            client.query(POINT_QUERY)  # warm plan cache + connection
            yield server_db, client


def test_inprocess_point_query(benchmark, server_db):
    result = benchmark(lambda: server_db.xquery(POINT_QUERY))
    assert len(result) > 0


def test_server_point_query(benchmark, served):
    _db, client = served
    payload = benchmark(lambda: client.query(POINT_QUERY))
    assert payload["ok"] and payload["items"]


def test_server_prepared_point_query(benchmark, served):
    _db, client = served
    handle = client.prepare(POINT_QUERY)
    try:
        payload = benchmark(lambda: client.execute(handle))
        assert payload["ok"] and payload["items"]
    finally:
        client.deallocate(handle)


def test_server_scan_query(benchmark, served):
    _db, client = served
    payload = benchmark(lambda: client.query(SCAN_QUERY))
    assert payload["ok"]


def _median(callable_, rounds: int) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_overhead_ratio(served):
    """Record the front door's toll; gate only on sanity, not speed —
    absolute socket latency is host-dependent, but the *structure*
    (overhead constant, so its share shrinks as queries grow) is not."""
    database, client = served
    rounds = 15
    direct_point = _median(lambda: database.xquery(POINT_QUERY), rounds)
    socket_point = _median(lambda: client.query(POINT_QUERY), rounds)
    direct_scan = _median(lambda: database.xquery(SCAN_QUERY), rounds)
    socket_scan = _median(lambda: client.query(SCAN_QUERY), rounds)

    toll_ms = (socket_point - direct_point) * 1000.0
    point_ratio = socket_point / direct_point
    scan_ratio = socket_scan / direct_scan
    register_bench_note("server.round_trip_toll_ms", round(toll_ms, 3))
    register_bench_note("server.point_query_ratio",
                        round(point_ratio, 2))
    register_bench_note("server.scan_query_ratio",
                        round(scan_ratio, 2))
    register_bench_note(
        "server.note",
        f"socket vs in-process: point query {point_ratio:.2f}x "
        f"({toll_ms:.2f}ms toll), scan query {scan_ratio:.2f}x — the "
        f"toll is per-round-trip, so its share shrinks as evaluation "
        f"grows")

    # The toll must be roughly constant: an expensive query cannot pay
    # proportionally more for the socket than a cheap one does.
    assert scan_ratio <= point_ratio * 1.5 + 0.5, (
        f"socket overhead scaled with query cost: point {point_ratio:.2f}x "
        f"vs scan {scan_ratio:.2f}x — the front door is doing "
        f"per-item work it shouldn't")
    # Sanity ceiling on the cheap path: framing + JSON + thread hop on
    # loopback must stay within 20x of a direct call.
    assert point_ratio < 20.0, (
        f"pathological socket overhead: {point_ratio:.2f}x in-process")
