"""§3.3 — joining XML values (Queries 13–16).

Paper claims: an XQuery-side join can use XML indexes (13, 16); an
SQL-side join can use relational indexes (14); SQL comparisons over
two XMLCASTs use nothing (15).
"""

Q13 = ("SELECT p.name FROM products p, orders o "
       "WHERE XMLExists('$order//lineitem/product[id eq $pid]' "
       'passing o.orddoc as "order", p.id as "pid")')
Q15 = ("SELECT c.cid FROM orders o, customer c, "
       "WHERE XMLCast(XMLQuery('$order/order/custid' "
       'passing o.orddoc as "order") as DOUBLE) = '
       "XMLCast(XMLQuery('$cust/customer/id' "
       'passing c.cdoc as "cust") as DOUBLE)')
Q16 = ("SELECT c.cid FROM customer c, orders o "
       "WHERE XMLExists('$order/order[custid/xs:double(.) = "
       "$cust/customer/id/xs:double(.)]' "
       'passing o.orddoc as "order", c.cdoc as "cust")')


def test_query13_xquery_join_with_xml_index(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.sql(Q13))
    assert result.stats.indexes_used == ["li_prod_id"]


def test_query13_without_index(benchmark, paper_bench_db):
    result = benchmark(
        lambda: paper_bench_db.sql(Q13, use_indexes=False))
    assert result.stats.indexes_used == []


def test_query15_sql_comparison_no_index(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.sql(Q15))
    assert result.stats.indexes_used == []


def test_query16_xml_join_with_o_custid(benchmark, paper_bench_db):
    result = benchmark(lambda: paper_bench_db.sql(Q16))
    assert result.stats.indexes_used == ["o_custid"]


def test_query15_16_agree(paper_bench_db):
    q15 = paper_bench_db.sql(Q15)
    q16 = paper_bench_db.sql(Q16)
    assert sorted(q15.rows) == sorted(q16.rows)
